"""Calibration transparency: what is fitted, what is predicted.

The performance model pins a small set of *anchors* to the paper's
reported numbers; everything else the model outputs is then a structural
prediction.  This module states the anchors explicitly, recomputes the
model's value for each, and renders the comparison — so a reader can
audit exactly how much freedom the model had.

Anchors (all single-PE / single-point quantities):

1. X5650 double-precision loop: 32M summands in ~47 ms (Fig. 5 level).
2. X5650 HP(6,3)/double ratio: 37-38x (stated in Sec. IV.B).
3. X5650 Hallberg(10,38) slightly above HP (Fig. 5 curves).
4. K20m plateau level for double (~0.09 s) and the ≤5.6x HP band.
5. Phi single-thread double ~1.4 s (vectorized) and the >10x HP gap.

Everything in Figs. 4-8 that is *not* in this list — crossover
locations, efficiency collapses, plateau onsets, convergence to the
transfer floor — emerges from the model structure.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.perfmodel.machines import TESLA_K20M, XEON_PHI_5110P, XEON_X5650
from repro.perfmodel.scaling import cuda_time, openmp_time, phi_time, standard_specs
from repro.util.tables import render_table

__all__ = [
    "Anchor",
    "MeasuredAnchor",
    "MEASURED_SCHEMA",
    "calibration_anchors",
    "measured_anchors",
    "render_calibration",
    "render_measured",
]

N = 1 << 25

#: Schema tag of the cost file ``repro profile --calibrate`` emits.
MEASURED_SCHEMA = "repro.profile.calibration/1"


@dataclass(frozen=True)
class Anchor:
    """One calibration target and the model's value for it."""

    name: str
    paper_low: float
    paper_high: float
    model_value: float

    @property
    def within_band(self) -> bool:
        return self.paper_low <= self.model_value <= self.paper_high


def calibration_anchors() -> list[Anchor]:
    """Recompute every anchor from the current machine descriptions."""
    specs = {s.name: s for s in standard_specs()}
    anchors = []
    t_dbl = openmp_time(N, 1, specs["double"])
    anchors.append(Anchor("X5650 double, 32M, 1 thread (s)",
                          0.04, 0.06, t_dbl))
    t_hp = openmp_time(N, 1, specs["hp"])
    anchors.append(Anchor("X5650 HP(6,3)/double ratio", 37.0, 38.0,
                          t_hp / t_dbl))
    t_hb = openmp_time(N, 1, specs["hallberg"])
    anchors.append(Anchor("X5650 Hallberg(10,38)/HP ratio", 1.0, 1.3,
                          t_hb / t_hp))
    plateau_dbl = cuda_time(N, 32768, specs["double"])
    anchors.append(Anchor("K20m double plateau (s)", 0.05, 0.15,
                          plateau_dbl))
    ratio_256 = cuda_time(N, 256, specs["hp"]) / cuda_time(
        N, 256, specs["double"]
    )
    anchors.append(Anchor("K20m HP/double at 256 threads", 4.3, 5.6,
                          ratio_256))
    phi_dbl = phi_time(N, 1, specs["double"])
    anchors.append(Anchor("Phi double, 32M, 1 thread (s)", 1.0, 2.0,
                          phi_dbl))
    phi_gap = phi_time(N, 1, specs["hp"]) / phi_dbl
    anchors.append(Anchor("Phi HP/double at 1 thread", 10.0, 20.0, phi_gap))
    return anchors


@dataclass(frozen=True)
class MeasuredAnchor:
    """One quantity pinned twice: by the model and by this machine.

    Unlike :class:`Anchor`, whose reference is a band read off the
    paper's figures, the reference here is a wall-clock measurement from
    ``repro profile --calibrate`` on the host running the model — so the
    residual says how far the X5650-anchored structural model is from
    *this* hardware, which is exactly the correction a measured-cost
    refit would absorb.
    """

    name: str
    model_value: float
    measured_value: float

    @property
    def residual(self) -> float:
        """measured / model — 1.0 means the model nailed it here."""
        if self.model_value == 0.0:
            return float("inf")
        return self.measured_value / self.model_value


def measured_anchors(measured: Mapping[str, float],
                     n: int = N) -> list[MeasuredAnchor]:
    """Pair machine measurements with the model's single-thread values.

    ``measured`` maps engine keys to best-of wall seconds for an
    ``n``-summand batch sum, as emitted by ``repro profile --calibrate``:
    ``double`` (naive ``np.sum``), ``hp-superacc``
    (:func:`~repro.core.vectorized.batch_sum_doubles`) and ``hallberg``
    (:func:`~repro.hallberg.vectorized.hb_batch_sum_doubles`).  Ratio
    anchors are preferred over absolute ones where possible — they
    cancel the host's absolute clock rate, isolating the *structural*
    per-method cost the model actually predicts.
    """
    specs = {s.name: s for s in standard_specs()}
    t_dbl = openmp_time(n, 1, specs["double"])
    t_hp = openmp_time(n, 1, specs["hp"])
    t_hb = openmp_time(n, 1, specs["hallberg"])
    out: list[MeasuredAnchor] = []
    if "double" in measured:
        out.append(MeasuredAnchor(
            f"double, {n} summands, 1 thread (s)",
            t_dbl, measured["double"],
        ))
    if "double" in measured and "hp-superacc" in measured:
        out.append(MeasuredAnchor(
            "HP(6,3) superacc / double ratio",
            t_hp / t_dbl, measured["hp-superacc"] / measured["double"],
        ))
    if "hp-superacc" in measured and "hallberg" in measured:
        out.append(MeasuredAnchor(
            "Hallberg(10,38) / HP superacc ratio",
            t_hb / t_hp, measured["hallberg"] / measured["hp-superacc"],
        ))
    return out


def render_measured(measured: Mapping[str, float], n: int = N) -> str:
    """The residual table: anchor, model, this machine, measured/model."""
    anchors = measured_anchors(measured, n)
    if not anchors:
        return "no measured anchors (need double/hp-superacc/hallberg keys)"
    rows = [
        (a.name, a.model_value, a.measured_value, a.residual)
        for a in anchors
    ]
    header = (
        f"paper anchors: {XEON_X5650.name}; measured: this machine, "
        f"n={n}\n"
    )
    return header + render_table(
        ["anchor", "model", "measured", "measured/model"], rows,
        precision=3,
    )


def render_calibration() -> str:
    """The audit table: anchor, paper band, model value, verdict."""
    rows = [
        (a.name, f"[{a.paper_low:g}, {a.paper_high:g}]", a.model_value,
         "ok" if a.within_band else "OUT OF BAND")
        for a in calibration_anchors()
    ]
    header = (
        f"machines: {XEON_X5650.name} | {TESLA_K20M.name} | "
        f"{XEON_PHI_5110P.name}\n"
    )
    return header + render_table(
        ["anchor", "paper band", "model", "status"], rows, precision=3
    )
