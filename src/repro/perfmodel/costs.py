"""Per-summand operation counts (paper Sec. IV.A).

The paper compares the methods by raw operation counts before showing why
those counts alone mispredict performance.  These are the counts it
states:

* Hallberg: ``2N`` FP multiplications + ``N`` FP additions to convert,
  ``N`` integer additions to accumulate.
* HP: ``N`` FP multiplications + ``N`` FP additions to convert (one
  multiply factored out of the Listing 1 loop), plus ``3N`` ALU ops in
  the worst (negative) case, and ``4(N-1)`` ALU ops to accumulate
  (Listing 2).
* double: one FP addition.

Memory traffic per accumulate (the Fig. 7 GPU analysis): a method whose
partial occupies ``W`` words reads ``1 + W`` words (summand + partial)
and writes ``W``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.core.params import HPParams
from repro.hallberg.params import HallbergParams

__all__ = ["OpCounts", "MemTraffic", "hp_ops", "hallberg_ops", "double_ops",
           "hp_mem", "hallberg_mem", "double_mem",
           "PLANNER_UNIT_COSTS", "planner_unit_costs"]


@dataclass(frozen=True)
class OpCounts:
    """Arithmetic operations to convert and accumulate one summand."""

    fp_mul: int
    fp_add: int
    alu: int

    def __add__(self, other: "OpCounts") -> "OpCounts":
        return OpCounts(
            self.fp_mul + other.fp_mul,
            self.fp_add + other.fp_add,
            self.alu + other.alu,
        )


@dataclass(frozen=True)
class MemTraffic:
    """64-bit global-memory words touched per accumulate."""

    reads: int
    writes: int

    @property
    def total(self) -> int:
        return self.reads + self.writes


def hp_ops(params: HPParams) -> OpCounts:
    """HP per-summand ops: convert (N mul + N add + 3N ALU worst case)
    plus accumulate (4(N-1) ALU)."""
    n = params.n
    return OpCounts(fp_mul=n, fp_add=n, alu=3 * n + 4 * (n - 1))


def hallberg_ops(params: HallbergParams) -> OpCounts:
    """Hallberg per-summand ops: convert (2N mul + N add) plus
    accumulate (N integer adds)."""
    n = params.n
    return OpCounts(fp_mul=2 * n, fp_add=n, alu=n)


def double_ops() -> OpCounts:
    """Plain double accumulation: one FP add."""
    return OpCounts(fp_mul=0, fp_add=1, alu=0)


def hp_mem(params: HPParams) -> MemTraffic:
    """E.g. N=6: 7 reads (summand + six partial words), 6 writes —
    the exact minimums quoted in Sec. IV.B."""
    return MemTraffic(reads=1 + params.n, writes=params.n)


def hallberg_mem(params: HallbergParams) -> MemTraffic:
    """E.g. N=10: 11 reads, 10 writes."""
    return MemTraffic(reads=1 + params.n, writes=params.n)


def double_mem() -> MemTraffic:
    """2 reads (summand + partial), 1 write."""
    return MemTraffic(reads=2, writes=1)


#: Per-summand engine costs in "double-add units" (a naive ``np.sum``
#: pass = 1.0), the static prior the accuracy planner ranks engines by.
#: The compensated tiers are structural estimates from their vector-op
#: counts (pairwise is one reduce pass; Kahan ~6 vector ops per lane
#: row; Neumaier ~9 with the dominance branch); the exact-engine entries
#: reflect the measured serial ratios in the BENCH_* trajectory on this
#: repo's pure/compiled backends.  :func:`planner_unit_costs` refits the
#: exact entries from a ``repro profile --calibrate`` measurement when
#: one is supplied.
PLANNER_UNIT_COSTS: Mapping[str, float] = {
    "comp-pairwise": 1.0,
    "comp-kahan": 7.0,
    "comp-neumaier": 10.0,
    "small": 45.0,
    "superacc": 70.0,
    "words": 260.0,
}


def planner_unit_costs(
    measured: Mapping[str, float] | None = None,
) -> dict[str, float]:
    """The planner's per-summand cost table, optionally refit.

    ``measured`` is the mapping a ``repro profile --calibrate`` document
    carries (engine key -> best-of wall seconds; see
    :data:`repro.perfmodel.calibration.MEASURED_SCHEMA`).  When it holds
    both ``double`` and ``hp-superacc``, the measured ratio re-anchors
    the exact-engine entries — the correction PR 6's measured-anchor
    residuals exist to absorb — while the compensated tiers stay pinned
    to the double pass they are structurally multiples of.
    """
    costs = dict(PLANNER_UNIT_COSTS)
    if not measured:
        return costs
    t_dbl = measured.get("double")
    t_sup = measured.get("hp-superacc")
    if not t_dbl or not t_sup or t_dbl <= 0 or t_sup <= 0:
        return costs
    scale = (t_sup / t_dbl) / PLANNER_UNIT_COSTS["superacc"]
    for name in ("small", "superacc", "words"):
        costs[name] = PLANNER_UNIT_COSTS[name] * scale
    return costs
