"""Machine descriptions for the paper's three testbeds.

The paper's closing observation (Sec. IV.B) is that performance depends
on compiler and architecture, not just operation counts.  These machine
models encode exactly the architectural features its analysis invokes:

* per-word compute cost of each fixed-point method on a core (the X5650
  discussion: FP-multiply latency vs. ALU concurrency [14]);
* SIMD vectorization of the native double loop (the Xeon Phi
  discussion);
* shared memory bandwidth across sockets (why double-precision OpenMP
  efficiency collapses while HP's stays near 1 in Fig. 5);
* interconnect round latency (Fig. 6), GPU residency ceiling and
  atomic/memory step costs (Fig. 7), PCIe transfer rate (Fig. 8).

Calibration: the per-word cycle constants are *fitted* to the paper's
reported single-PE ratios (HP ~37-38x double on the X5650; Table-2
equivalents within a small factor), after which every scaling curve and
every crossover in Figs. 4-8 is a prediction of the model structure, not
a per-point fit.  EXPERIMENTS.md records model vs. paper for each figure.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["Machine", "GPU", "Coprocessor", "XEON_X5650", "TESLA_K20M",
           "XEON_PHI_5110P"]


@dataclass(frozen=True)
class Machine:
    """A CPU-like machine (used by the OpenMP and MPI models)."""

    name: str
    clock_ghz: float
    # Effective cycles per summand for the native double loop (includes
    # any SIMD the compiler applied; this is the absolute-scale anchor).
    double_cycles: float
    # Fitted effective cycles per 64-bit word, per summand, for the two
    # fixed-point methods (conversion + accumulate, incl. ILP effects).
    hp_word_cycles: float
    hb_word_cycles: float
    # Memory system: sockets sharing one memory bus each.
    sockets: int = 1
    cores_per_socket: int = 6
    socket_mem_bw_gbps: float = 11.0
    # MPI interconnect: per-reduction-round cost (latency + skew) and
    # per-byte cost.
    comm_round_latency_us: float = 150.0
    comm_ns_per_byte: float = 0.35
    # Fork/join overhead per OpenMP parallel region (per thread).
    fork_join_us: float = 5.0

    @property
    def ns_per_cycle(self) -> float:
        return 1.0 / self.clock_ghz


@dataclass(frozen=True)
class GPU:
    """A CUDA-like device (used by the Fig. 7 model)."""

    name: str
    max_concurrent_threads: int
    # Effective latency of one device step (memory transaction or atomic
    # commit) seen by a resident thread, at saturation (ns).
    step_ns: float
    # Extra serialization per atomic commit when more threads contend for
    # a cell than it has independent words (dimensionless slope).
    contention_slope: float = 0.05
    kernel_launch_us: float = 10.0


@dataclass(frozen=True)
class Coprocessor:
    """An offload coprocessor (used by the Fig. 8 model)."""

    name: str
    machine: Machine           # the device cores
    max_threads: int
    transfer_gbps: float       # host<->device practical bandwidth, GB/s
    offload_latency_ms: float  # per-offload fixed cost (runtime + pin + launch)


# Dual hex-core Intel Xeon X5650 (Westmere-EP), 2.67 GHz — the OpenMP and
# MPI testbed.  double_cycles anchors 32M summands at ~47 ms (Fig. 5);
# hp_word_cycles reproduces the paper's 37-38x single-PE ratio at N=6;
# hb_word_cycles reproduces Hallberg(10,38) slightly above HP and the
# Fig. 4 crossover sequence (see repro.perfmodel.model).
XEON_X5650 = Machine(
    name="Intel Xeon X5650 2.67 GHz",
    clock_ghz=2.67,
    double_cycles=3.75,
    hp_word_cycles=23.4,
    hb_word_cycles=15.4,
    sockets=2,
    cores_per_socket=6,
    socket_mem_bw_gbps=11.0,
)

# Nvidia Tesla K20m — the CUDA testbed.  The paper: at most 2496
# concurrent threads (the Fig. 7 plateau); kernels bounded by memory
# operations and atomics.
TESLA_K20M = GPU(
    name="Nvidia Tesla K20m",
    max_concurrent_threads=2496,
    step_ns=1950.0,
    contention_slope=0.02,
)

# Xeon Phi 5110P (Knights Corner): 60 in-order cores @ 1.053 GHz, 240
# offload threads, PCIe gen2 (~6 GB/s practical).  The Intel compiler
# vectorizes the native double loop (8-wide), which is why the
# single-thread fixed-point/double gap is far larger than on the host
# CPU (Fig. 8); the in-order core also raises per-word costs.
_PHI_CORE = Machine(
    name="Xeon Phi 5110P core",
    clock_ghz=1.053,
    double_cycles=39.0,     # vectorized double loop, effective per summand
    hp_word_cycles=110.0,   # scalar in-order pipeline, no ILP
    hb_word_cycles=72.0,
    sockets=1,
    cores_per_socket=60,
    socket_mem_bw_gbps=140.0,  # GDDR5: bandwidth is not the Phi bottleneck
    fork_join_us=20.0,
)

XEON_PHI_5110P = Coprocessor(
    name="Xeon Phi B1PRQ-5110P/5120D",
    machine=_PHI_CORE,
    max_threads=240,
    transfer_gbps=6.0,
    offload_latency_ms=120.0,
)
