"""Analytic runtime model: eqs. (3)-(6) and per-summand costs.

The paper's Sec. IV.A analysis abstracts both fixed-point methods to a
cost per 64-bit block: ``T_p = c_p * n * ceil((b+1)/64)`` for HP and
``T_b = c_b * n * ceil(b/M)`` for Hallberg (eq. (3)), giving the speedup
(eq. (4)) and, for ``b > 64``, the lower bound ``S >= (c_b/c_p) * 32/M``
(eq. (6)).  Those equations are implemented verbatim here, with the block
costs taken from the fitted machine description.

The key structural prediction: at fixed precision, growing the summand
count forces Hallberg to shrink ``M`` (more carry headroom), which grows
its block count while HP's stays fixed — so HP overtakes beyond ~1M
summands (Fig. 4).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.params import HPParams
from repro.hallberg.params import HallbergParams, equivalent_hallberg
from repro.perfmodel.machines import Machine, XEON_X5650

__all__ = [
    "hp_blocks",
    "hallberg_blocks",
    "per_summand_seconds",
    "hp_time",
    "hallberg_time",
    "speedup_eq4",
    "speedup_bound_eq5",
    "speedup_bound_eq6",
    "Fig4Point",
    "fig4_model_sweep",
]


def hp_blocks(precision_bits: int) -> int:
    """``N_p = ceil((b + 1) / 64)`` — value bits plus the sign bit
    (eq. (3), left)."""
    if precision_bits < 1:
        raise ValueError(f"precision must be >= 1 bit, got {precision_bits}")
    return math.ceil((precision_bits + 1) / 64)


def hallberg_blocks(precision_bits: int, m: int) -> int:
    """``N_b = ceil(b / M)`` (eq. (3), right)."""
    if not 1 <= m <= 62:
        raise ValueError(f"M must be in [1, 62], got {m}")
    return math.ceil(precision_bits / m)


def per_summand_seconds(method: str, n_words: int, machine: Machine) -> float:
    """Modeled time to convert-and-accumulate one summand on one core.

    ``method`` is ``"double"``, ``"hp"`` or ``"hallberg"``; ``n_words``
    is ignored for ``double``.
    """
    if method == "double":
        cycles = machine.double_cycles
    elif method == "hp":
        cycles = machine.hp_word_cycles * n_words
    elif method == "hallberg":
        cycles = machine.hb_word_cycles * n_words
    else:
        raise ValueError(f"unknown method {method!r}")
    return cycles * machine.ns_per_cycle * 1e-9


def hp_time(n: int, params: HPParams, machine: Machine = XEON_X5650) -> float:
    """Eq. (3): ``T_p = c_p * N_p * n`` for a serial sum of ``n`` values."""
    return n * per_summand_seconds("hp", params.n, machine)


def hallberg_time(
    n: int, params: HallbergParams, machine: Machine = XEON_X5650
) -> float:
    """Eq. (3): ``T_b = c_b * N_b * n``."""
    return n * per_summand_seconds("hallberg", params.n, machine)


def speedup_eq4(
    precision_bits: int,
    m: int,
    machine: Machine = XEON_X5650,
) -> float:
    """Eq. (4): ``S = (c_b * ceil(b/M)) / (c_p * ceil((b+1)/64))``."""
    cb = machine.hb_word_cycles
    cp = machine.hp_word_cycles
    return (cb * hallberg_blocks(precision_bits, m)) / (
        cp * hp_blocks(precision_bits)
    )


def speedup_bound_eq5(
    precision_bits: int, m: int, machine: Machine = XEON_X5650
) -> float:
    """Eq. (5): ``S >= (c_b/c_p) * (64/M) * b/(b+65)``."""
    cb = machine.hb_word_cycles
    cp = machine.hp_word_cycles
    b = precision_bits
    return (cb / cp) * (64.0 / m) * (b / (b + 65.0))


def speedup_bound_eq6(m: int, machine: Machine = XEON_X5650) -> float:
    """Eq. (6): for ``b > 64``, ``S >= (c_b/c_p) * 32/M`` — the bound
    that grows as M shrinks to admit more summands."""
    cb = machine.hb_word_cycles
    cp = machine.hp_word_cycles
    return (cb / cp) * 32.0 / m


@dataclass(frozen=True)
class Fig4Point:
    """One modeled point of the Fig. 4 sweep."""

    n: int
    hallberg_params: HallbergParams
    hp_seconds: float
    hallberg_seconds: float

    @property
    def speedup(self) -> float:
        """Hallberg/HP runtime ratio (>1 means HP wins), the right panel."""
        return self.hallberg_seconds / self.hp_seconds


def fig4_model_sweep(
    ns: list[int],
    hp_params: HPParams = HPParams(8, 4),
    precision_bits: int = 512,
    machine: Machine = XEON_X5650,
) -> list[Fig4Point]:
    """Model the Fig. 4 experiment: HP(8,4) vs. the precision-equivalent
    Hallberg configuration *chosen per summand count* (Table 2).

    The modeled crossover must land where the paper's does: Hallberg
    ahead below ~1M summands (M=52/43 keep N_b near 10-12), HP ahead
    beyond (M=37 forces N_b=14).
    """
    points = []
    for n in ns:
        hb = equivalent_hallberg(precision_bits, n)
        points.append(
            Fig4Point(
                n=n,
                hallberg_params=hb,
                hp_seconds=hp_time(n, hp_params, machine),
                hallberg_seconds=hallberg_time(n, hb, machine),
            )
        )
    return points
