"""Strong-scaling models for the four parallel environments (Figs. 5-8).

Each model returns wall-clock seconds for a global sum of ``n`` summands
on ``p`` PEs with one of the three methods.  The structural terms encode
the explanation the paper gives for each figure:

* **OpenMP** (Fig. 5): compute scales with threads, but the double loop
  is memory-bandwidth-bound across sockets, so its efficiency collapses
  while the compute-bound fixed-point methods stay near perfect — "this
  increased cost is amortized effectively".
* **MPI** (Fig. 6): same cores, plus ``log2(p)`` reduction rounds of
  interconnect latency; again only the cheap method notices.
* **CUDA** (Fig. 7): per-thread step costs shrink with resident threads
  until the K20m's 2496-thread ceiling, then plateau; ratios follow the
  memory-op counts (>= 4.3x for HP), softened/hardened by contention on
  the 256 shared partials (an HP partial admits N concurrent lockers).
* **Xeon Phi** (Fig. 8): a fixed offload latency plus PCIe transfer
  dominates at high thread counts; the vectorized native-double loop
  makes the single-thread gap huge.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.params import HPParams
from repro.hallberg.params import HallbergParams
from repro.perfmodel.costs import MemTraffic, double_mem, hallberg_mem, hp_mem
from repro.perfmodel.machines import (
    GPU,
    Coprocessor,
    Machine,
    TESLA_K20M,
    XEON_PHI_5110P,
    XEON_X5650,
)
from repro.perfmodel.model import per_summand_seconds

__all__ = [
    "MethodSpec",
    "standard_specs",
    "openmp_time",
    "mpi_time",
    "cuda_time",
    "phi_time",
    "efficiency",
    "scaling_series",
]


@dataclass(frozen=True)
class MethodSpec:
    """What the scaling models need to know about a method."""

    name: str            # "double" | "hp" | "hallberg"
    words: int           # words per partial (1 for double)
    traffic: MemTraffic  # GPU memory ops per accumulate

    @classmethod
    def double(cls) -> "MethodSpec":
        return cls("double", 1, double_mem())

    @classmethod
    def hp(cls, params: HPParams) -> "MethodSpec":
        return cls("hp", params.n, hp_mem(params))

    @classmethod
    def hallberg(cls, params: HallbergParams) -> "MethodSpec":
        return cls("hallberg", params.n, hallberg_mem(params))


def standard_specs(
    hp_params: HPParams | None = None,
    hb_params: HallbergParams | None = None,
) -> list[MethodSpec]:
    """The Fig. 5-8 trio: double, HP(6,3), Hallberg(10,38)."""
    return [
        MethodSpec.double(),
        MethodSpec.hp(hp_params or HPParams(6, 3)),
        MethodSpec.hallberg(hb_params or HallbergParams(10, 38)),
    ]


def _compute_time(n: int, p: int, spec: MethodSpec, machine: Machine) -> float:
    return (n / p) * per_summand_seconds(spec.name, spec.words, machine)


def _bandwidth_time(n: int, p: int, spec: MethodSpec, machine: Machine) -> float:
    """Streaming-bandwidth floor for the summand array, shared per socket.

    Only the double loop ever hits this floor: the fixed-point methods do
    enough arithmetic per 8-byte summand to stay compute-bound.
    """
    threads_per_socket = machine.cores_per_socket
    sockets_used = min(machine.sockets, math.ceil(p / threads_per_socket))
    bw = machine.socket_mem_bw_gbps * 1e9 * sockets_used
    return (n * 8) / bw


def openmp_time(
    n: int,
    p: int,
    spec: MethodSpec,
    machine: Machine = XEON_X5650,
) -> float:
    """Fig. 5 model: max(compute, bandwidth floor) + fork/join + master
    reduction of ``p`` partials."""
    if p <= 0:
        raise ValueError(f"need >= 1 thread, got {p}")
    compute = _compute_time(n, p, spec, machine)
    floor = _bandwidth_time(n, p, spec, machine)
    fork = p * machine.fork_join_us * 1e-6
    merge = p * per_summand_seconds(spec.name, spec.words, machine)
    return max(compute, floor) + fork + merge


def mpi_time(
    n: int,
    p: int,
    spec: MethodSpec,
    machine: Machine = XEON_X5650,
) -> float:
    """Fig. 6 model: per-rank compute + binomial-tree rounds.

    Ranks land on distinct nodes as p grows, so no bandwidth sharing;
    instead each of the ``ceil(log2 p)`` rounds pays interconnect
    latency plus the (tiny) partial payload.
    """
    if p <= 0:
        raise ValueError(f"need >= 1 process, got {p}")
    compute = _compute_time(n, p, spec, machine)
    # Within a node (up to 12 cores on the dual X5650) the double loop
    # still shares the memory bus.
    if p <= machine.sockets * machine.cores_per_socket:
        compute = max(compute, _bandwidth_time(n, p, spec, machine))
    rounds = math.ceil(math.log2(p)) if p > 1 else 0
    payload = spec.words * 8
    per_round = (
        machine.comm_round_latency_us * 1e-6
        + payload * machine.comm_ns_per_byte * 1e-9
    )
    combine = rounds * per_summand_seconds(spec.name, spec.words, machine)
    return compute + rounds * per_round + combine


def cuda_time(
    n: int,
    t: int,
    spec: MethodSpec,
    gpu: GPU = TESLA_K20M,
    num_partials: int = 256,
) -> float:
    """Fig. 7 model: per-thread serial steps with a residency ceiling.

    Each accumulate costs ``conversion + traffic.total`` device steps; a
    thread's steps serialize, threads parallelize up to
    ``max_concurrent_threads`` (the plateau).  Contention on the shared
    partials adds a penalty growing with resident threads per cell —
    divided by ``words`` because an HP partial's N word cells admit N
    concurrent writers (the paper's observed relief).
    """
    if t <= 0:
        raise ValueError(f"need >= 1 thread, got {t}")
    t_eff = min(t, gpu.max_concurrent_threads)
    # Conversion happens in registers and partially overlaps the memory
    # ops; about half a step per word survives as exposed latency.
    conversion_steps = 0 if spec.name == "double" else math.ceil(spec.words / 2)
    steps_per_add = conversion_steps + spec.traffic.total
    waiters = t_eff / (num_partials * spec.words)
    contention = 1.0 + gpu.contention_slope * max(0.0, waiters - 1.0)
    per_add = steps_per_add * gpu.step_ns * 1e-9 * contention
    return gpu.kernel_launch_us * 1e-6 + (n / t_eff) * per_add


def phi_time(
    n: int,
    t: int,
    spec: MethodSpec,
    phi: Coprocessor = XEON_PHI_5110P,
) -> float:
    """Fig. 8 model: offload latency + PCIe transfer + device compute."""
    if not 1 <= t <= phi.max_threads:
        raise ValueError(f"thread count {t} outside [1, {phi.max_threads}]")
    transfer = (n * 8) / (phi.transfer_gbps * 1e9)
    compute = _compute_time(n, t, spec, phi.machine)
    merge = t * per_summand_seconds(spec.name, spec.words, phi.machine)
    return phi.offload_latency_ms * 1e-3 + transfer + compute + merge


def efficiency(times: list[float], pes: list[int]) -> list[float]:
    """Strong-scaling efficiency ``E(p) = T(1) / (p * T(p))`` relative to
    the first entry (the paper's right-hand panels)."""
    if len(times) != len(pes) or not times:
        raise ValueError("times and pes must be equal-length, non-empty")
    t1, p1 = times[0], pes[0]
    return [(t1 * p1) / (p * tp) for tp, p in zip(times, pes)]


def scaling_series(
    model,
    n: int,
    pes: list[int],
    specs: list[MethodSpec],
    **kwargs,
) -> dict[str, tuple[list[float], list[float]]]:
    """Run one figure's sweep: ``{method: (times, efficiencies)}``."""
    out = {}
    for spec in specs:
        times = [model(n, p, spec, **kwargs) for p in pes]
        out[spec.name] = (times, efficiency(times, pes))
    return out
