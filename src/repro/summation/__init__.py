"""Floating-point summation baselines and error measurement.

One function per method class surveyed in the paper's Sec. I:
ordered (naive/pairwise/sorted), compensated (Kahan/Neumaier/Klein),
and exact references (fsum / rational) — plus the residual-statistics
machinery behind the Fig. 1/2 rounding-error experiment.
"""

from repro.summation.compensated import (
    fast_two_sum,
    kahan_sum,
    klein_sum,
    neumaier_sum,
    two_sum,
)
from repro.summation.exact import (
    exact_sum_scaled,
    fraction_sum,
    fsum,
    is_exactly_representable,
)
from repro.summation.doubledouble import DoubleDouble, dd_sum
from repro.summation.naive import naive_sum, pairwise_sum, reverse_sum, sorted_sum
from repro.summation.theory import (
    UNIT_ROUNDOFF,
    compensated_error_bound,
    condition_number,
    expected_stdev_fixed_sum,
    expected_stdev_random_walk,
    expected_stdev_zero_sum,
    pairwise_error_bound,
    recursive_error_bound,
)
from repro.summation.stats import (
    ResidualStats,
    residual_stats,
    shuffled_trials,
    ulp_distance,
)

__all__ = [
    "naive_sum",
    "DoubleDouble",
    "dd_sum",
    "reverse_sum",
    "sorted_sum",
    "pairwise_sum",
    "two_sum",
    "fast_two_sum",
    "kahan_sum",
    "neumaier_sum",
    "klein_sum",
    "fsum",
    "fraction_sum",
    "exact_sum_scaled",
    "is_exactly_representable",
    "ResidualStats",
    "residual_stats",
    "shuffled_trials",
    "ulp_distance",
    "UNIT_ROUNDOFF",
    "condition_number",
    "expected_stdev_zero_sum",
    "expected_stdev_random_walk",
    "expected_stdev_fixed_sum",
    "recursive_error_bound",
    "pairwise_error_bound",
    "compensated_error_bound",
]
