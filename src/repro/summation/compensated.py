"""Compensated (error-free transformation) summation baselines.

The paper's Sec. I places these in the "error compensation" class
([6-8, 13, 15, 16, 19, 21]): they track the rounding error of each add
with an exact transformation and fold it back, greatly reducing — but
not in general eliminating — the error, and remaining order-*sensitive*.
Included so the accuracy experiments can show where each class of method
sits between naive doubles and the exact fixed-point formats.
"""

from __future__ import annotations

from typing import Sequence

__all__ = ["two_sum", "fast_two_sum", "kahan_sum", "neumaier_sum", "klein_sum"]


def two_sum(a: float, b: float) -> tuple[float, float]:
    """Knuth's branch-free error-free transformation:
    returns ``(s, err)`` with ``s = fl(a+b)`` and ``a + b = s + err``
    exactly."""
    s = a + b
    bv = s - a
    err = (a - (s - bv)) + (b - bv)
    return s, err


def fast_two_sum(a: float, b: float) -> tuple[float, float]:
    """Dekker's variant, valid when ``|a| >= |b|``."""
    s = a + b
    err = b - (s - a)
    return s, err


def kahan_sum(xs: Sequence[float]) -> float:
    """Kahan (1965) compensated summation: one running compensation term.

    Error is O(u) per element independent of n — but large cancelling
    intermediate sums can still defeat it (Neumaier's counterexample).
    """
    total = 0.0
    comp = 0.0
    for x in xs:
        y = x - comp
        t = total + y
        comp = (t - total) - y
        total = t
    return total


def neumaier_sum(xs: Sequence[float]) -> float:
    """Neumaier's improved Kahan: branches on which operand dominates so
    compensation survives ``total`` being smaller than ``x``."""
    total = 0.0
    comp = 0.0
    for x in xs:
        t = total + x
        if abs(total) >= abs(x):
            comp += (total - t) + x
        else:
            comp += (x - t) + total
        total = t
    return total + comp


def klein_sum(xs: Sequence[float]) -> float:
    """Klein's second-order compensated sum (two compensation levels),
    accurate to ~2 ulp for very ill-conditioned inputs."""
    total = 0.0
    cs = 0.0
    ccs = 0.0
    for x in xs:
        t = total + x
        if abs(total) >= abs(x):
            c = (total - t) + x
        else:
            c = (x - t) + total
        total = t
        t2 = cs + c
        if abs(cs) >= abs(c):
            cc = (cs - t2) + c
        else:
            cc = (c - t2) + cs
        cs = t2
        ccs += cc
    return total + cs + ccs
