"""Double-double (binary64x2) summation — the He & Ding baseline.

The paper's survey cites He & Ding [12] ("Using accurate arithmetics to
improve numerical reproducibility and stability in parallel
applications"), whose tool is double-double arithmetic: an unevaluated
sum of two doubles ``hi + lo`` giving ~106 significand bits.  It is the
classic *software* high-precision intermediate sum — far more accurate
than double, far cheaper than arbitrary precision — but unlike the
fixed-point formats it still rounds, so it reduces rather than
eliminates order sensitivity.  Implemented here to complete the paper's
survey taxonomy in the accuracy-ladder ablation.
"""

from __future__ import annotations

from typing import Iterable

from repro.summation.compensated import two_sum

__all__ = ["DoubleDouble", "dd_sum", "dd_add", "dd_add_double"]


class DoubleDouble:
    """An unevaluated ``hi + lo`` pair with ``|lo| <= ulp(hi)/2``.

    Normalized on construction; supports addition with doubles and other
    double-doubles via error-free transformations.

    >>> x = DoubleDouble.from_double(0.1) + 0.2
    >>> x.hi == 0.1 + 0.2 or abs(x.lo) > 0  # the error is retained
    True
    """

    __slots__ = ("hi", "lo")

    def __init__(self, hi: float, lo: float = 0.0) -> None:
        s, e = two_sum(hi, lo)
        self.hi = s
        self.lo = e

    @classmethod
    def from_double(cls, x: float) -> "DoubleDouble":
        return cls(x, 0.0)

    @classmethod
    def zero(cls) -> "DoubleDouble":
        return cls(0.0, 0.0)

    def __add__(self, other: "DoubleDouble | float") -> "DoubleDouble":
        if isinstance(other, DoubleDouble):
            return dd_add(self, other)
        if isinstance(other, (int, float)):
            return dd_add_double(self, float(other))
        return NotImplemented

    __radd__ = __add__

    def __neg__(self) -> "DoubleDouble":
        return DoubleDouble(-self.hi, -self.lo)

    def __sub__(self, other: "DoubleDouble | float") -> "DoubleDouble":
        if isinstance(other, DoubleDouble):
            return self + (-other)
        if isinstance(other, (int, float)):
            return self + (-float(other))
        return NotImplemented

    def to_double(self) -> float:
        return self.hi + self.lo

    def to_fraction(self):
        from fractions import Fraction

        return Fraction(self.hi) + Fraction(self.lo)

    def __repr__(self) -> str:
        return f"DoubleDouble({self.hi!r}, {self.lo!r})"


def dd_add_double(a: DoubleDouble, b: float) -> DoubleDouble:
    """Add a double to a double-double (one two_sum + renormalize)."""
    s, e = two_sum(a.hi, b)
    return DoubleDouble(s, e + a.lo)


def dd_add(a: DoubleDouble, b: DoubleDouble) -> DoubleDouble:
    """Full double-double addition (Knuth/Dekker style)."""
    s, e = two_sum(a.hi, b.hi)
    return DoubleDouble(s, e + a.lo + b.lo)


def dd_sum(xs: Iterable[float]) -> float:
    """Sum doubles through a double-double accumulator (He-Ding style).

    Roughly 106-bit intermediate precision: error ~2**-106 relative per
    add, typically indistinguishable from exact for moderate n — but
    still order-*sensitive* in principle.
    """
    acc = DoubleDouble.zero()
    for x in xs:
        acc = dd_add_double(acc, float(x))
    return acc.to_double()
