"""Exact reference summation (the ground truth for every experiment).

``math.fsum`` gives the correctly-rounded double of the exact sum;
:func:`fraction_sum` gives the exact rational itself.  All accuracy
claims in tests and experiments are measured against these.
"""

from __future__ import annotations

import math
from fractions import Fraction
from typing import Iterable, Sequence

__all__ = ["fsum", "fraction_sum", "exact_sum_scaled", "is_exactly_representable"]


def fsum(xs: Iterable[float]) -> float:
    """Correctly-rounded double sum (Shewchuk's algorithm via math.fsum)."""
    return math.fsum(xs)


def fraction_sum(xs: Iterable[float]) -> Fraction:
    """The exact rational sum — every IEEE double is a dyadic rational,
    so the sum of any finite set is exactly computable."""
    total = Fraction(0)
    for x in xs:
        total += Fraction(x)
    return total


def exact_sum_scaled(xs: Iterable[float], frac_bits: int) -> int:
    """Exact sum as an integer in units of ``2**-frac_bits``, truncating
    each summand toward zero first — i.e. the sum an ideal fixed-point
    accumulator with that resolution produces.
    """
    total = 0
    shift = 1 << frac_bits
    for x in xs:
        num, den = x.as_integer_ratio()
        scaled, _ = divmod(abs(num) * shift, den)
        total += -scaled if num < 0 else scaled
    return total


def is_exactly_representable(xs: Sequence[float], frac_bits: int) -> bool:
    """True if every summand is a multiple of ``2**-frac_bits`` (no
    truncation loss in a fixed-point format with that resolution)."""
    shift = 1 << frac_bits
    for x in xs:
        num, den = x.as_integer_ratio()
        if (abs(num) * shift) % den:
            return False
    return True
