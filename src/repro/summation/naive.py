"""Ordered floating-point summation baselines.

These are the conventional methods the paper's Sec. II surveys: plain
recursive (left-to-right) summation — whose rounding error the Fig. 1/2
experiment quantifies — and pairwise summation, the classic
error-reducing reordering that is "prohibitive at large scales" because
it constrains the summation order across processors.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

__all__ = ["naive_sum", "reverse_sum", "sorted_sum", "pairwise_sum"]


def naive_sum(xs: Sequence[float]) -> float:
    """Left-to-right recursive summation: ``((x0 + x1) + x2) + ...``.

    This is the semantics of a serial C loop; its rounding error grows
    like O(n·u) in the worst case and is the double-precision reference
    the paper benchmarks against.  (``numpy.sum`` is *not* equivalent —
    it summs pairwise — so the loop is explicit.)
    """
    total = 0.0
    for x in xs:
        total = total + x
    return total


def reverse_sum(xs: Sequence[float]) -> float:
    """Right-to-left summation; differs from :func:`naive_sum` by
    rounding only, demonstrating order sensitivity."""
    total = 0.0
    for x in reversed(xs):
        total = total + x
    return total


def sorted_sum(xs: Sequence[float]) -> float:
    """Sum by increasing magnitude — a classic accuracy heuristic that
    still cannot give exactness or order invariance."""
    arr = np.asarray(xs, dtype=np.float64)
    order = np.argsort(np.abs(arr), kind="stable")
    return naive_sum(arr[order])


def pairwise_sum(xs: Sequence[float], block: int = 8) -> float:
    """Pairwise (cascade) summation with an O(log n) error bound.

    Recursively halves the input; runs of ``block`` or fewer elements sum
    naively, matching how production implementations (including NumPy's)
    amortize recursion overhead.
    """
    arr = np.asarray(xs, dtype=np.float64)
    if block < 1:
        raise ValueError(f"block must be >= 1, got {block}")

    def rec(lo: int, hi: int) -> float:
        if hi - lo <= block:
            total = 0.0
            for i in range(lo, hi):
                total += float(arr[i])
            return total
        mid = (lo + hi) // 2
        return rec(lo, mid) + rec(mid, hi)

    if arr.size == 0:
        return 0.0
    return rec(0, arr.size)
