"""Error statistics for summation experiments.

The Fig. 1/2 experiment sums zero-sum sets in many random orders and
reports the distribution of residuals.  Because "the statistics
calculation itself is subject to round-off error" (paper Sec. II.A), the
moments here are computed with exact reference summation of the residual
arrays.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

__all__ = ["ResidualStats", "residual_stats", "shuffled_trials", "ulp_distance"]


@dataclass(frozen=True)
class ResidualStats:
    """Moments of a residual-sum distribution (one Fig. 1 data point)."""

    n_trials: int
    mean: float
    stdev: float
    min: float
    max: float
    n_exact_zero: int

    @property
    def all_exact(self) -> bool:
        """True when every trial returned exactly the true sum — what the
        HP method achieves in Fig. 1."""
        return self.n_exact_zero == self.n_trials


def residual_stats(residuals: Sequence[float]) -> ResidualStats:
    """Summarize residuals with exact (fsum-based) moment computation."""
    n = len(residuals)
    if n == 0:
        raise ValueError("no residuals")
    mean = math.fsum(residuals) / n
    var = math.fsum((r - mean) ** 2 for r in residuals) / n
    return ResidualStats(
        n_trials=n,
        mean=mean,
        stdev=math.sqrt(var),
        min=min(residuals),
        max=max(residuals),
        n_exact_zero=sum(1 for r in residuals if r == 0.0),
    )


def shuffled_trials(
    values: np.ndarray,
    summer: Callable[[np.ndarray], float],
    n_trials: int,
    rng: np.random.Generator,
) -> list[float]:
    """Run ``summer`` on ``n_trials`` random permutations of ``values``
    (the paper's 16384-trial protocol, Sec. II.A)."""
    if n_trials <= 0:
        raise ValueError(f"n_trials must be positive, got {n_trials}")
    out = []
    work = np.array(values, dtype=np.float64, copy=True)
    for _ in range(n_trials):
        rng.shuffle(work)
        out.append(summer(work))
    return out


def ulp_distance(a: float, b: float) -> int:
    """Distance in units-in-the-last-place between two doubles (same
    sign-ordered integer lattice as IEEE 754)."""

    def key(x: float) -> int:
        i = int(np.float64(x).view(np.int64))
        return i if i >= 0 else (-(1 << 63)) - i  # order negatives below zero

    if math.isnan(a) or math.isnan(b):
        raise ValueError("ulp distance undefined for NaN")
    return abs(key(a) - key(b))
