"""Probabilistic and worst-case models of FP summation error.

The paper observes (Sec. II.A) that the residual stdev of its zero-sum
experiment grows *linearly* in ``n``, and remarks that uncorrelated
summands would suggest ``sqrt(n)``; it attributes the difference to the
negation pairing biasing "the accumulated error towards the worst case".
This module makes those statements quantitative:

* Each addition ``s + x`` rounds with an error ~uniform in
  ``±ulp(s')/2``, i.e. std ``u*|s'|/sqrt(3)`` with ``u = 2**-53``.
* For the paper's zero-sum sets the partial-sum trajectory is a
  **Brownian bridge** (it must return to zero), so
  ``E[s_i^2] = (a^2/3) * i(n-i)/n`` for values ±uniform[0, a] — summing
  the per-step variances gives a *linear-in-n* residual stdev.
* An unconstrained random walk gives the same linear order (partial
  sums grow like ``sqrt(i)``); only the fixed-partial-sum model yields
  ``sqrt(n)`` — which is the mental model the paper says is wrong here.

Also provided: Higham-style deterministic bounds for recursive, pairwise
and compensated summation, and the classical condition number — useful
for judging when the exact methods are *needed* rather than merely nice.
"""

from __future__ import annotations

import math
from typing import Sequence

__all__ = [
    "UNIT_ROUNDOFF",
    "expected_stdev_zero_sum",
    "expected_stdev_random_walk",
    "expected_stdev_fixed_sum",
    "condition_number",
    "recursive_error_bound",
    "pairwise_error_bound",
    "compensated_error_bound",
]

#: Half the spacing of doubles at 1.0 (the rounding-error scale).
UNIT_ROUNDOFF = 2.0**-53


def _gamma(k: float) -> float:
    """Higham's gamma_k = k*u / (1 - k*u)."""
    ku = k * UNIT_ROUNDOFF
    if ku >= 1.0:
        raise ValueError(f"error bound diverges for k = {k}")
    return ku / (1.0 - ku)


def expected_stdev_zero_sum(n: int, magnitude: float) -> float:
    """Predicted residual stdev for the paper's Fig. 1 protocol.

    ``n`` values ±uniform[0, magnitude] constrained to sum to zero: the
    partial sums form a bridge with ``E[s_i^2] = (a^2/3) i(n-i)/n``;
    summing uniform-rounding variances ``u^2 E[s^2] / 3`` over the walk:

        ``sigma ~= u * a * sqrt(sum_i i(n-i)/n / 9)``
               ``~= u * a * n / (9/sqrt(...))`` — linear in n.
    """
    if n < 2:
        return 0.0
    var_x = magnitude**2 / 3.0
    bridge = sum(i * (n - i) / n for i in range(1, n))  # ~ n^2/6
    return UNIT_ROUNDOFF * math.sqrt(var_x * bridge / 3.0)


def expected_stdev_random_walk(n: int, magnitude: float) -> float:
    """Residual stdev for an *unconstrained* random-sign stream: partial
    sums grow like sqrt(i), so the error is again ~linear in n."""
    if n < 2:
        return 0.0
    var_x = magnitude**2 / 3.0
    walk = sum(range(1, n))  # E[s_i^2] = i * var_x
    return UNIT_ROUNDOFF * math.sqrt(var_x * walk / 3.0)


def expected_stdev_fixed_sum(n: int, typical_sum: float) -> float:
    """The sqrt(n) mental model: if every partial sum had fixed scale
    ``typical_sum``, per-step errors are iid and the residual stdev is
    ``u * |s| * sqrt(n/3)`` — included to contrast with the linear laws
    above (the paper's 'relative to sqrt(n)' remark)."""
    if n < 2:
        return 0.0
    return UNIT_ROUNDOFF * abs(typical_sum) * math.sqrt(n / 3.0)


def condition_number(xs: Sequence[float]) -> float:
    """``sum |x| / |sum x|`` — the amplification factor of summation.

    Infinite for exact cancellation (the paper's zero-sum sets are the
    hardest possible case for floating point).
    """
    total = math.fsum(xs)
    magnitude = math.fsum(abs(x) for x in xs)
    if magnitude == 0.0:
        return 1.0
    if total == 0.0:
        return math.inf
    return magnitude / abs(total)


def recursive_error_bound(xs: Sequence[float]) -> float:
    """Higham's deterministic bound for left-to-right summation:
    ``|err| <= gamma_{n-1} * sum |x|``."""
    n = len(xs)
    if n < 2:
        return 0.0
    return _gamma(n - 1) * math.fsum(abs(x) for x in xs)


def pairwise_error_bound(xs: Sequence[float]) -> float:
    """Pairwise summation: ``|err| <= gamma_{ceil(log2 n)} * sum |x|``."""
    n = len(xs)
    if n < 2:
        return 0.0
    return _gamma(math.ceil(math.log2(n))) * math.fsum(abs(x) for x in xs)


def compensated_error_bound(xs: Sequence[float]) -> float:
    """Kahan summation: ``|err| <= (2u + O(n u^2)) * sum |x|``."""
    n = len(xs)
    if n < 2:
        return 0.0
    magnitude = math.fsum(abs(x) for x in xs)
    return (2 * UNIT_ROUNDOFF + n * UNIT_ROUNDOFF**2 * 3) * magnitude
