"""Shared low-level utilities: 64-bit integer helpers, seeded RNG wrappers,
timing harnesses and ASCII table rendering used by the benchmark drivers."""

from repro.util.bits import (
    MASK64,
    WORD_BITS,
    mask64,
    twos_complement_words,
    words_to_signed_int,
    signed_int_to_words,
    sign_bit,
    split32,
    join32,
)
from repro.util.rng import default_rng, spawn_rngs
from repro.util.tables import render_table
from repro.util.timing import Timer, repeat_timeit

__all__ = [
    "MASK64",
    "WORD_BITS",
    "mask64",
    "twos_complement_words",
    "words_to_signed_int",
    "signed_int_to_words",
    "sign_bit",
    "split32",
    "join32",
    "default_rng",
    "spawn_rngs",
    "render_table",
    "Timer",
    "repeat_timeit",
]
