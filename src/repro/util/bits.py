"""64-bit word arithmetic helpers.

The HP format stores a real number as ``N`` unsigned 64-bit words holding a
two's-complement integer over the concatenated ``64*N``-bit field (paper
eq. (2)).  Python integers are unbounded, so these helpers provide the
explicit wrap-around semantics of C ``uint64_t`` that Listings 1 and 2 of
the paper rely on.

Conventions used throughout the library:

* word 0 is the **most significant** word (it carries the sign bit),
  matching the paper's indexing where the carry ripples from word
  ``N-1`` up to word 0;
* word vectors are plain tuples of Python ints in ``[0, 2**64)`` for the
  scalar reference path, and ``numpy.uint64`` arrays for the batch path.
"""

from __future__ import annotations

from typing import Sequence

WORD_BITS = 64
MASK64 = (1 << 64) - 1
#: Word modulus ``2**64``: the value every word computation wraps at.
#: Hoisted here so call sites never spell ``2**64`` / ``1 << 64`` inline
#: (the consistency rule HP001 expects masking against these names).
WORD_MOD = 1 << 64
MASK32 = (1 << 32) - 1

__all__ = [
    "WORD_BITS",
    "MASK64",
    "WORD_MOD",
    "MASK32",
    "mask64",
    "sign_bit",
    "twos_complement_words",
    "words_to_signed_int",
    "words_to_unsigned_int",
    "signed_int_to_words",
    "unsigned_int_to_words",
    "split32",
    "join32",
]


def mask64(x: int) -> int:
    """Wrap an integer to unsigned 64-bit, like C ``uint64_t`` assignment."""
    return x & MASK64


def sign_bit(word0: int) -> int:
    """Return the sign bit (bit 63) of the most significant word."""
    return (word0 >> 63) & 1


def twos_complement_words(words: Sequence[int]) -> tuple[int, ...]:
    """Negate a word vector in two's complement over the full field.

    Flips every bit, adds one at the least significant word, and ripples
    the carry toward word 0 (paper Sec. III.A).  ``-0`` maps to ``0`` and
    the most negative value maps to itself, exactly as in hardware.
    """
    out = [(~w) & MASK64 for w in words]
    for i in range(len(out) - 1, -1, -1):
        out[i] = (out[i] + 1) & MASK64
        if out[i] != 0:  # no carry out of this word; done propagating
            break
    return tuple(out)


def words_to_unsigned_int(words: Sequence[int]) -> int:
    """Concatenate words (word 0 most significant) into one unsigned int."""
    value = 0
    for w in words:
        if w != w & MASK64:
            raise ValueError(f"word out of uint64 range: {w:#x}")
        value = (value << WORD_BITS) | w
    return value


def words_to_signed_int(words: Sequence[int]) -> int:
    """Interpret a word vector as a signed two's-complement integer."""
    n = len(words)
    value = words_to_unsigned_int(words)
    if sign_bit(words[0]):
        value -= 1 << (WORD_BITS * n)
    return value


def unsigned_int_to_words(value: int, n: int) -> tuple[int, ...]:
    """Split an unsigned integer into ``n`` words, word 0 most significant."""
    if value < 0 or value >= (1 << (WORD_BITS * n)):
        raise ValueError(f"value does not fit in {n} words: {value}")
    return tuple((value >> (WORD_BITS * (n - 1 - i))) & MASK64 for i in range(n))


def signed_int_to_words(value: int, n: int) -> tuple[int, ...]:
    """Encode a signed integer into ``n`` words of two's complement."""
    half = 1 << (WORD_BITS * n - 1)
    if not -half <= value < half:
        raise ValueError(f"value does not fit signed in {n} words: {value}")
    return unsigned_int_to_words(value & ((1 << (WORD_BITS * n)) - 1), n)


def split32(word: int) -> tuple[int, int]:
    """Split a uint64 word into (high, low) 32-bit halves.

    The batch summation path sums 32-bit halves in 64-bit columns so that
    up to ``2**32`` summands can be added before any column can overflow
    (see :mod:`repro.core.vectorized`).
    """
    return (word >> 32) & MASK32, word & MASK32


def join32(hi: int, lo: int) -> int:
    """Inverse of :func:`split32` (assumes already-normalized halves)."""
    return ((hi & MASK32) << 32) | (lo & MASK32)
