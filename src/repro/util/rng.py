"""Seeded random number generation.

Every experiment driver takes a seed so figures and tables are exactly
re-generable.  ``spawn_rngs`` hands independent child streams to simulated
processing elements so per-PE data is reproducible regardless of the
number of PEs actually used to generate it.
"""

from __future__ import annotations

import numpy as np

__all__ = ["default_rng", "spawn_rngs", "DEFAULT_SEED"]

DEFAULT_SEED = 20160523  # IPDPS 2016 conference start date


def default_rng(seed: int | None = None) -> np.random.Generator:
    """Return a PCG64 generator seeded deterministically.

    ``None`` selects the library-wide default seed (not OS entropy): the
    whole point of this library is reproducibility, so unseeded
    nondeterminism must be requested explicitly by passing a
    ``numpy.random.Generator`` of your own.
    """
    return np.random.default_rng(DEFAULT_SEED if seed is None else seed)


def spawn_rngs(n: int, seed: int | None = None) -> list[np.random.Generator]:
    """Create ``n`` statistically independent child generators."""
    if n <= 0:
        raise ValueError(f"need at least one stream, got {n}")
    ss = np.random.SeedSequence(DEFAULT_SEED if seed is None else seed)
    return [np.random.default_rng(child) for child in ss.spawn(n)]
