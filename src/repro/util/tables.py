"""Plain-text table rendering for experiment reports.

The benchmark harness prints each reproduced table/figure as rows of text
mirroring the paper's layout (EXPERIMENTS.md records the output), so the
renderer favours alignment and stable formatting over styling.
"""

from __future__ import annotations

from typing import Iterable, Sequence

__all__ = ["render_table", "format_cell"]


def format_cell(value: object, precision: int = 6) -> str:
    """Render one cell: floats in compact scientific/positional form."""
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, float):
        if value == 0.0:
            return "0"
        magnitude = abs(value)
        if 1e-3 <= magnitude < 1e7:
            return f"{value:.{precision}g}"
        return f"{value:.{precision}e}"
    return str(value)


def render_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: str | None = None,
    precision: int = 6,
) -> str:
    """Render an ASCII table with a header rule, e.g.::

        Table 1
        N  k  Bits  Max Range      Smallest
        -  -  ----  -------------  -------------
        2  1  128   9.223372e+18   5.421011e-20
    """
    str_rows = [[format_cell(c, precision) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells, expected {len(headers)}: {row}"
            )
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)).rstrip())
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)).rstrip())
    return "\n".join(lines)
