"""Timing helpers for the benchmark harness.

``pytest-benchmark`` drives the per-figure benches; these helpers serve the
standalone experiment drivers (``repro.experiments``) which print the same
series the paper plots, averaging over trials the same way the paper does
("averaged over 10 trials", Sec. IV.B).

Since the observability subsystem landed, both helpers are thin wrappers
over :mod:`repro.observability.tracing`: a :class:`Timer` *is* a span, so
when tracing is enabled every timed region shows up in the exported
trace (named ``util.timer`` unless the caller picks a name), and when it
is disabled only the span's own clock reads remain — no registry or
tracer work happens.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass, field
from typing import Callable, TypeVar

from repro.observability import tracing

T = TypeVar("T")

__all__ = ["Timer", "TimingResult", "repeat_timeit"]


class Timer:
    """Context-manager wall-clock timer (span-backed).

    >>> with Timer() as t:
    ...     sum(range(1000))
    499500
    >>> t.elapsed >= 0.0
    True
    """

    def __init__(self, name: str = "util.timer", **attrs: object) -> None:
        self.elapsed = 0.0
        self._name = name
        self._attrs = attrs
        self._cm: tracing._SpanContext | None = None
        self.span: tracing.Span | None = None

    def __enter__(self) -> "Timer":
        self._cm = tracing.TRACER.span(self._name, **self._attrs)
        self.span = self._cm.__enter__()
        return self

    def __exit__(self, *exc) -> None:
        assert self._cm is not None
        self._cm.__exit__(*exc)
        self.elapsed = self.span.duration_s


@dataclass
class TimingResult:
    """Aggregate of repeated timings of one callable."""

    times: list[float] = field(default_factory=list)

    @property
    def mean(self) -> float:
        return statistics.fmean(self.times)

    @property
    def best(self) -> float:
        return min(self.times)

    @property
    def stdev(self) -> float:
        return statistics.stdev(self.times) if len(self.times) > 1 else 0.0


def repeat_timeit(
    fn: Callable[[], T],
    trials: int = 10,
    warmup: int = 1,
    name: str = "util.repeat_timeit",
) -> TimingResult:
    """Time ``fn`` ``trials`` times after ``warmup`` discarded calls.

    Each trial is one span named ``{name}.trial`` nested under a ``name``
    parent, so an enabled trace shows the full per-trial series, not just
    the aggregate this function returns.
    """
    if trials <= 0:
        raise ValueError(f"trials must be positive, got {trials}")
    result = TimingResult()
    with tracing.span(name, trials=trials, warmup=warmup):
        for _ in range(warmup):
            fn()
        for _ in range(trials):
            with Timer(f"{name}.trial") as t:
                fn()
            result.times.append(t.elapsed)
    return result
