"""Timing helpers for the benchmark harness.

``pytest-benchmark`` drives the per-figure benches; these helpers serve the
standalone experiment drivers (``repro.experiments``) which print the same
series the paper plots, averaging over trials the same way the paper does
("averaged over 10 trials", Sec. IV.B).
"""

from __future__ import annotations

import statistics
import time
from dataclasses import dataclass, field
from typing import Callable, TypeVar

T = TypeVar("T")

__all__ = ["Timer", "TimingResult", "repeat_timeit"]


class Timer:
    """Context-manager wall-clock timer.

    >>> with Timer() as t:
    ...     sum(range(1000))
    499500
    >>> t.elapsed >= 0.0
    True
    """

    def __init__(self) -> None:
        self.elapsed = 0.0
        self._start = 0.0

    def __enter__(self) -> "Timer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        self.elapsed = time.perf_counter() - self._start


@dataclass
class TimingResult:
    """Aggregate of repeated timings of one callable."""

    times: list[float] = field(default_factory=list)

    @property
    def mean(self) -> float:
        return statistics.fmean(self.times)

    @property
    def best(self) -> float:
        return min(self.times)

    @property
    def stdev(self) -> float:
        return statistics.stdev(self.times) if len(self.times) > 1 else 0.0


def repeat_timeit(fn: Callable[[], T], trials: int = 10, warmup: int = 1) -> TimingResult:
    """Time ``fn`` ``trials`` times after ``warmup`` discarded calls."""
    if trials <= 0:
        raise ValueError(f"trials must be positive, got {trials}")
    for _ in range(warmup):
        fn()
    result = TimingResult()
    for _ in range(trials):
        start = time.perf_counter()
        fn()
        result.times.append(time.perf_counter() - start)
    return result
