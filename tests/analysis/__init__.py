"""Tests for the static lint engine and the runtime sanitizer."""
