"""Baseline ratchet semantics and SARIF 2.1.0 export validity."""

from __future__ import annotations

import json

import pytest

from repro.analysis.baseline import (
    Baseline,
    BaselineError,
    apply_baseline,
    fingerprint,
    fingerprints,
    load_baseline,
    write_baseline,
)
from repro.analysis.lint import Finding
from repro.analysis.sarif import to_sarif, validate_sarif


def F(rule="HP001", path="src/a.py", line=3, message="bad store"):
    return Finding(rule=rule, path=path, line=line, col=1, message=message)


class TestFingerprints:
    def test_stable_and_line_free(self):
        a = F(line=3)
        b = F(line=99)  # same finding after unrelated edits moved it
        assert fingerprint(a) == fingerprint(b)

    def test_occurrence_index_distinguishes_duplicates(self):
        pairs = fingerprints([F(), F()])
        assert pairs[0][1] != pairs[1][1]

    def test_different_findings_differ(self):
        assert fingerprint(F()) != fingerprint(F(message="other"))


class TestRatchet:
    def test_new_finding_fails(self, tmp_path):
        bl = write_baseline(tmp_path / "b.json", [F()],
                            default_justification="accepted: legacy")
        result = apply_baseline([F(), F(message="fresh")], bl)
        assert not result.ok
        assert [f.message for f in result.new] == ["fresh"]
        assert [f.message for f in result.suppressed] == ["bad store"]

    def test_removed_finding_shrinks_baseline(self, tmp_path):
        path = tmp_path / "b.json"
        bl = write_baseline(path, [F(), F(message="gone")],
                            default_justification="accepted: legacy")
        assert len(bl) == 2
        # The "gone" finding was fixed: the run passes and reports it
        # stale; rewriting drops it.
        result = apply_baseline([F()], bl)
        assert result.ok and len(result.stale) == 1
        rewritten = write_baseline(path, [F()], previous=bl)
        assert len(rewritten) == 1
        doc = json.loads(path.read_text())
        assert [e["message"] for e in doc["entries"]] == ["bad store"]

    def test_rewrite_preserves_justifications(self, tmp_path):
        path = tmp_path / "b.json"
        bl = write_baseline(path, [F()],
                            default_justification="accepted: legacy")
        rewritten = write_baseline(path, [F()], previous=bl)
        (entry,) = rewritten.entries.values()
        assert entry["justification"] == "accepted: legacy"

    def test_empty_baseline_everything_is_new(self):
        result = apply_baseline([F()], Baseline())
        assert not result.ok and len(result.new) == 1


class TestJustificationEnforcement:
    def test_missing_justification_rejected(self, tmp_path):
        path = tmp_path / "b.json"
        write_baseline(path, [F()])  # default justification is TODO
        with pytest.raises(BaselineError, match="justification"):
            load_baseline(path)

    def test_justified_entry_loads(self, tmp_path):
        path = tmp_path / "b.json"
        write_baseline(path, [F()],
                       default_justification="integer bins; associative")
        bl = load_baseline(path)
        assert len(bl) == 1

    def test_missing_file_is_empty_baseline(self, tmp_path):
        bl = load_baseline(tmp_path / "absent.json")
        assert len(bl) == 0

    def test_malformed_json_rejected(self, tmp_path):
        path = tmp_path / "b.json"
        path.write_text("{nope")
        with pytest.raises(BaselineError, match="JSON"):
            load_baseline(path)

    def test_wrong_kind_rejected(self, tmp_path):
        path = tmp_path / "b.json"
        path.write_text(json.dumps({"kind": "other", "schema_version": 1}))
        with pytest.raises(BaselineError, match="kind"):
            load_baseline(path)


class TestSarif:
    def test_document_validates(self):
        doc = to_sarif([F(), F(rule="HP009", message="inversion")])
        assert validate_sarif(doc) == []
        assert doc["version"] == "2.1.0"
        assert "sarif-schema-2.1.0" in doc["$schema"]

    def test_empty_findings_still_valid(self):
        assert validate_sarif(to_sarif([])) == []

    def test_rules_catalog_embedded(self):
        doc = to_sarif([])
        rules = doc["runs"][0]["tool"]["driver"]["rules"]
        ids = [r["id"] for r in rules]
        assert ids == sorted(ids)
        assert {"HP001", "HP008", "HP009", "HP010", "HP011"} <= set(ids)

    def test_result_links_rule_by_index(self):
        doc = to_sarif([F(rule="HP009", message="x")])
        (result,) = doc["runs"][0]["results"]
        rules = doc["runs"][0]["tool"]["driver"]["rules"]
        assert rules[result["ruleIndex"]]["id"] == "HP009"
        assert result["level"] == "error"  # deadlock family is error

    def test_fingerprint_matches_baseline(self):
        f = F()
        doc = to_sarif([f])
        (result,) = doc["runs"][0]["results"]
        assert result["partialFingerprints"]["hpFingerprint/v1"] == (
            fingerprint(f, 0)
        )

    def test_location_is_one_based(self):
        doc = to_sarif([F(line=3)])
        region = doc["runs"][0]["results"][0]["locations"][0][
            "physicalLocation"]["region"]
        assert region["startLine"] == 3
        assert region["startColumn"] >= 1

    def test_validator_flags_broken_documents(self):
        assert validate_sarif({"version": "2.0.0", "runs": []})
        doc = to_sarif([F()])
        doc["runs"][0]["results"][0]["ruleIndex"] = 999
        assert any("out of range" in e for e in validate_sarif(doc))

    def test_jsonschema_path_exercised_when_available(self):
        jsonschema = pytest.importorskip("jsonschema")
        assert jsonschema is not None
        doc = to_sarif([F()])
        del doc["runs"][0]["results"][0]["message"]
        errors = validate_sarif(doc)
        assert any("message" in e for e in errors)
