"""Whole-program index: call graph, summaries, and the incremental cache."""

from __future__ import annotations

import json

from repro.analysis.callgraph import (
    ANALYSIS_CACHE_SCHEMA,
    analysis_signature,
    analyze_paths,
    build_project,
    build_project_from_sources,
    module_name_for,
)


def _write(tmp_path, name, text):
    p = tmp_path / name
    p.parent.mkdir(parents=True, exist_ok=True)
    p.write_text(text, encoding="utf-8")
    return p


CALLER = (
    "from pkg.callee import helper\n"
    "\n"
    "def outer():\n"
    "    return helper()\n"
)
CALLEE = (
    "def helper():\n"
    "    return 1\n"
)


class TestModuleNames:
    def test_src_anchored(self):
        assert module_name_for("src/repro/core/scalar.py") == (
            "repro.core.scalar"
        )

    def test_package_init(self):
        assert module_name_for("src/repro/core/__init__.py") == "repro.core"

    def test_no_src_anchor(self):
        assert module_name_for("benchmarks/bench_x.py") == (
            "benchmarks.bench_x"
        )


class TestCallGraph:
    def test_cross_module_call_resolves(self):
        project = build_project_from_sources({
            "src/pkg/caller.py": CALLER,
            "src/pkg/callee.py": CALLEE,
        })
        assert project.callees("pkg.caller.outer") == ["pkg.callee.helper"]
        assert project.callers("pkg.callee.helper") == ["pkg.caller.outer"]

    def test_method_suffix_resolution(self):
        project = build_project_from_sources({
            "src/pkg/a.py": (
                "class Acc:\n"
                "    def total(self):\n"
                "        return 0\n"
            ),
            "src/pkg/b.py": (
                "def use(acc):\n"
                "    return acc.total()\n"
            ),
        })
        # obj.method() resolves through the unique Class.method suffix.
        assert project.callees("pkg.b.use") == ["pkg.a.Acc.total"]

    def test_reachability(self):
        project = build_project_from_sources({
            "src/pkg/caller.py": CALLER,
            "src/pkg/callee.py": CALLEE,
        })
        assert project.reachable(["pkg.caller.outer"]) == {
            "pkg.caller.outer", "pkg.callee.helper",
        }


class TestCache:
    BAD = "def f(a, b, out):\n    out[0] = a[0] + b[0]\n"

    def test_cold_then_warm_same_findings(self, tmp_path):
        src_dir = tmp_path / "src" / "repro" / "core"
        _write(tmp_path, "src/repro/core/mod.py", self.BAD)
        cache = tmp_path / "cache.json"

        cold = analyze_paths([src_dir], cache_path=cache)
        assert cold.files_parsed == 1 and cold.cache_hits == 0
        warm = analyze_paths([src_dir], cache_path=cache)
        assert warm.files_parsed == 0 and warm.cache_hits == 1
        assert [f.to_dict() for f in warm.findings] == [
            f.to_dict() for f in cold.findings
        ]
        assert [f.rule for f in cold.findings] == ["HP001"]

    def test_warm_run_reparses_only_edited_files(self, tmp_path):
        src_dir = tmp_path / "src" / "repro" / "core"
        _write(tmp_path, "src/repro/core/a.py", "x = 1\n")
        edited = _write(tmp_path, "src/repro/core/b.py", "y = 2\n")
        cache = tmp_path / "cache.json"

        analyze_paths([src_dir], cache_path=cache)
        edited.write_text("y = 3\n", encoding="utf-8")
        warm = analyze_paths([src_dir], cache_path=cache)
        # Content-hash invalidation: exactly the edited file re-parses.
        assert warm.files_parsed == 1
        assert warm.cache_hits == 1

    def test_analyzer_signature_invalidates_cache(self, tmp_path):
        src_dir = tmp_path / "src" / "repro" / "core"
        _write(tmp_path, "src/repro/core/a.py", "x = 1\n")
        cache = tmp_path / "cache.json"
        analyze_paths([src_dir], cache_path=cache)

        doc = json.loads(cache.read_text())
        assert doc["kind"] == "analysis_cache"
        assert doc["schema_version"] == ANALYSIS_CACHE_SCHEMA
        assert doc["signature"] == analysis_signature()
        # Simulate an analyzer-source edit: stamp a different signature.
        doc["signature"] = "0" * 64
        cache.write_text(json.dumps(doc), encoding="utf-8")

        rerun = analyze_paths([src_dir], cache_path=cache)
        assert rerun.files_parsed == 1 and rerun.cache_hits == 0

    def test_corrupt_cache_is_ignored(self, tmp_path):
        src_dir = tmp_path / "src" / "repro" / "core"
        _write(tmp_path, "src/repro/core/a.py", "x = 1\n")
        cache = tmp_path / "cache.json"
        cache.write_text("{not json", encoding="utf-8")
        res = analyze_paths([src_dir], cache_path=cache)
        assert res.files_parsed == 1

    def test_parse_error_surfaces_and_caches(self, tmp_path):
        src_dir = tmp_path / "src" / "repro" / "core"
        _write(tmp_path, "src/repro/core/bad.py", "def f(:\n")
        cache = tmp_path / "cache.json"
        cold = analyze_paths([src_dir], cache_path=cache)
        assert [f.rule for f in cold.findings] == ["HP000"]
        warm = analyze_paths([src_dir], cache_path=cache)
        assert [f.rule for f in warm.findings] == ["HP000"]
        assert warm.cache_hits == 1


class TestProjectBuild:
    def test_build_project_counts(self, tmp_path):
        src_dir = tmp_path / "src" / "repro" / "core"
        _write(tmp_path, "src/repro/core/a.py", "x = 1\n")
        _write(tmp_path, "src/repro/core/b.py", "y = 2\n")
        project, parsed, hits = build_project([src_dir])
        assert len(project.files) == 2
        assert parsed == 2 and hits == 0
