"""Engine mechanics: registry, scoping, suppressions, output formats.

Rule *content* is covered in ``test_rules.py``; here we exercise the
machinery those rules plug into, using HP001 as a convenient probe.
"""

from __future__ import annotations

import json

import pytest

from repro.analysis import lint
from repro.analysis.lint import (
    Finding,
    LintRule,
    ModuleSource,
    PARSE_ERROR_RULE,
    RULES,
    lint_source,
    rule,
)

#: Minimal HP001 violation used to probe engine behaviour.
BAD = "def f(a, b, out):\n    out[0] = a[0] + b[0]\n"
CORE = "src/repro/core/_fixture.py"


class TestRegistry:
    def test_all_rules_registered(self):
        catalog = lint.rule_catalog()
        assert [r.id for r in catalog] == [
            "HP001", "HP002", "HP003", "HP004", "HP005", "HP006",
            "HP007", "HP008", "HP009", "HP010", "HP011", "HP012",
            "HP013", "HP014",
        ]
        for r in catalog:
            assert r.summary and r.paper_ref and callable(r.check)
            assert r.scope in ("file", "project")
        # The whole-program passes are project-scoped; the classics are
        # per-file.
        scopes = {r.id: r.scope for r in catalog}
        assert scopes["HP001"] == "file"
        for rid in ("HP008", "HP009", "HP010", "HP011"):
            assert scopes[rid] == "project"

    def test_duplicate_id_rejected(self):
        lint.rule_catalog()  # force registration of HP001
        with pytest.raises(ValueError, match="duplicate"):
            rule("HP001", "dup", "dup", "nowhere")(lambda m: [])

    def test_package_scoping(self):
        scoped = LintRule(
            id="X", name="x", summary="", paper_ref="",
            packages=("core", "parallel"), check=lambda m: [],
        )
        assert scoped.applies_to("src/repro/core/scalar.py")
        assert scoped.applies_to("src/repro/parallel/threads.py")
        assert not scoped.applies_to("src/repro/hallberg/scalar.py")
        assert not scoped.applies_to("src/repro/analysis/lint.py")
        # Fixture fallback: no "repro" anchor, any segment matches.
        assert scoped.applies_to("fixtures/core/bad.py")
        assert not scoped.applies_to("fixtures/other/bad.py")

    def test_unscoped_rule_applies_everywhere(self):
        everywhere = LintRule(
            id="Y", name="y", summary="", paper_ref="",
            packages=None, check=lambda m: [],
        )
        assert everywhere.applies_to("anything/at/all.py")


class TestModuleSource:
    def test_parent_links_and_ancestors(self):
        module = ModuleSource.parse("def f():\n    return 1 + 2\n", "<t>")
        import ast

        binop = next(
            n for n in ast.walk(module.tree) if isinstance(n, ast.BinOp)
        )
        chain = list(module.ancestors(binop))
        kinds = [type(n).__name__ for n in chain]
        assert kinds == ["Return", "FunctionDef", "Module"]
        assert module.parent(module.tree) is None

    def test_finding_coordinates(self):
        module = ModuleSource.parse("x = 1\n", "p.py")
        f = module.finding("HP999", module.tree.body[0], "msg")
        assert (f.path, f.line, f.col) == ("p.py", 1, 1)
        assert f.format() == "p.py:1:1: HP999 msg"


class TestSuppressions:
    def test_unsuppressed_probe_fires(self):
        assert [f.rule for f in lint_source(BAD, CORE)] == ["HP001"]

    def test_bare_noqa_silences_all(self):
        src = BAD.replace("+ b[0]", "+ b[0]  # hp: noqa")
        assert lint_source(src, CORE) == []

    def test_listed_noqa_silences_named_rule(self):
        src = BAD.replace("+ b[0]", "+ b[0]  # hp: noqa[HP001]")
        assert lint_source(src, CORE) == []

    def test_listed_noqa_keeps_other_rules(self):
        src = BAD.replace("+ b[0]", "+ b[0]  # hp: noqa[HP002]")
        assert [f.rule for f in lint_source(src, CORE)] == ["HP001"]

    def test_noqa_on_other_line_does_not_apply(self):
        src = "# hp: noqa[HP001]\n" + BAD
        assert [f.rule for f in lint_source(src, CORE)] == ["HP001"]

    def test_noqa_file_silences_whole_module(self):
        src = "# hp: noqa-file[HP001]\n" + BAD + BAD.replace("def f", "def g")
        assert lint_source(src, CORE) == []

    def test_noqa_is_case_insensitive_in_rule_ids(self):
        src = BAD.replace("+ b[0]", "+ b[0]  # hp: noqa[hp001]")
        assert lint_source(src, CORE) == []

    # -- multi-line statement span (regression: suppressions used to
    # anchor only to the node's first line) ------------------------------

    MULTILINE = (
        "def f(a, b, out):\n"
        "    out[0] = (\n"
        "        a[0]\n"
        "        + b[0]\n"
        "    )\n"
    )

    def test_multiline_statement_fires_without_noqa(self):
        (finding,) = lint_source(self.MULTILINE, CORE)
        assert finding.rule == "HP001"
        # The finding records the statement's full span.
        assert finding.line == 2
        assert finding.end_line == 5
        assert list(finding.line_span) == [2, 3, 4, 5]

    def test_noqa_on_any_line_of_multiline_statement_suppresses(self):
        for lineno in (2, 3, 4, 5):
            lines = self.MULTILINE.splitlines()
            lines[lineno - 1] += "  # hp: noqa[HP001]"
            src = "\n".join(lines) + "\n"
            assert lint_source(src, CORE) == [], f"line {lineno}"

    def test_noqa_outside_statement_span_does_not_suppress(self):
        src = self.MULTILINE + "x = 1  # hp: noqa[HP001]\n"
        assert [f.rule for f in lint_source(src, CORE)] == ["HP001"]


class TestSelectAndErrors:
    def test_select_restricts_rules(self):
        assert lint_source(BAD, CORE, select=["HP002"]) == []
        assert len(lint_source(BAD, CORE, select=["hp001"])) == 1

    def test_syntax_error_becomes_hp000(self):
        findings = lint_source("def f(:\n", CORE)
        assert len(findings) == 1
        assert findings[0].rule == PARSE_ERROR_RULE
        assert "syntax error" in findings[0].message

    def test_findings_sorted_deterministically(self):
        src = BAD + "def g(a, b, out):\n    out[1] = a[1] - b[1]\n"
        findings = lint_source(src, CORE)
        assert [f.line for f in findings] == sorted(f.line for f in findings)


class TestFileWalking:
    def test_dirs_expand_files_dedupe(self, tmp_path):
        pkg = tmp_path / "core"
        pkg.mkdir()
        (pkg / "a.py").write_text("x = 1\n")
        (pkg / "b.py").write_text("y = 2\n")
        (pkg / "notes.txt").write_text("not python\n")
        files = lint.iter_python_files([tmp_path, pkg / "a.py"])
        assert [f.name for f in files] == ["a.py", "b.py"]

    def test_missing_path_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            lint.iter_python_files([tmp_path / "nope"])

    def test_lint_paths_reads_files(self, tmp_path):
        pkg = tmp_path / "core"
        pkg.mkdir()
        (pkg / "bad.py").write_text(BAD)
        findings = lint.lint_paths([tmp_path])
        assert [f.rule for f in findings] == ["HP001"]
        assert findings[0].path.endswith("bad.py")


class TestOutputFormats:
    def test_format_text(self):
        findings = lint_source(BAD, CORE)
        text = lint.format_text(findings, checked_files=1)
        assert f"{CORE}:2:" in text
        assert text.endswith("1 finding in 1 file")
        assert lint.format_text([], 3).endswith("0 findings in 3 files")

    def test_format_json_schema(self):
        findings = lint_source(BAD, CORE)
        doc = json.loads(lint.format_json(findings, checked_files=1))
        assert doc["kind"] == "lint"
        assert doc["schema_version"] == lint.LINT_SCHEMA_VERSION
        assert doc["checked_files"] == 1
        assert doc["counts"] == {"HP001": 1}
        (entry,) = doc["findings"]
        assert entry == findings[0].to_dict()
        assert set(entry) == {
            "rule", "path", "line", "col", "message", "end_line",
        }

    def test_finding_roundtrip(self):
        f = Finding(rule="HP001", path="p", line=3, col=7, message="m",
                    end_line=5)
        assert Finding.from_dict(f.to_dict()) == f
