"""The whole-program passes HP008-HP011 on synthetic projects."""

from __future__ import annotations

from repro.analysis.callgraph import build_project_from_sources
from repro.analysis.callgraph import run_project_rules


def findings_for(sources: dict, select=None):
    project = build_project_from_sources(sources)
    return run_project_rules(project, select=select)


class TestHP008Taint:
    def test_direct_np_sum_in_exact_function(self):
        out = findings_for({
            "src/pkg/m.py": (
                "import numpy as np\n"
                "def exact_total(xs):\n"
                "    t = np.sum(xs)\n"
                "    return float(t)\n"
            ),
        }, select=["HP008"])
        assert len(out) == 1
        assert "np.sum" in out[0].message
        assert out[0].path == "src/pkg/m.py"

    def test_interprocedural_taint_via_helper(self):
        out = findings_for({
            "src/pkg/helper.py": (
                "import numpy as np\n"
                "def noisy(xs):\n"
                "    return np.sum(xs)\n"
            ),
            "src/pkg/m.py": (
                "from pkg.helper import noisy\n"
                "def exact_total(xs):\n"
                "    return noisy(xs)\n"
            ),
        }, select=["HP008"])
        # Both the exact claimer and nothing else: the helper makes no
        # exactness claim so only the caller is reported, naming the
        # function the taint arrived through.
        assert [f.path for f in out] == ["src/pkg/m.py"]
        assert "via pkg.helper.noisy()" in out[0].message

    def test_docstring_exactness_claim_counts(self):
        out = findings_for({
            "src/pkg/m.py": (
                "import numpy as np\n"
                "def total(xs):\n"
                '    """Order-invariant total of xs."""\n'
                "    return np.sum(xs)\n"
            ),
        }, select=["HP008"])
        assert len(out) == 1

    def test_non_exact_function_not_reported(self):
        out = findings_for({
            "src/pkg/m.py": (
                "import numpy as np\n"
                "def fast_total(xs):\n"
                "    return np.sum(xs)\n"
            ),
        }, select=["HP008"])
        assert out == []

    def test_integer_dtype_reduction_exempt(self):
        out = findings_for({
            "src/pkg/m.py": (
                "import numpy as np\n"
                "def exact_count(xs):\n"
                "    return int(np.sum(xs, dtype=np.uint64))\n"
            ),
        }, select=["HP008"])
        assert out == []

    def test_integer_container_name_exempt(self):
        out = findings_for({
            "src/pkg/m.py": (
                "import numpy as np\n"
                "def exact_total(bins):\n"
                "    return int(np.sum(bins))\n"
            ),
        }, select=["HP008"])
        assert out == []

    def test_wall_clock_taint(self):
        out = findings_for({
            "src/pkg/m.py": (
                "import time\n"
                "def exact_stamp():\n"
                "    t = time.time()\n"
                "    return t\n"
            ),
        }, select=["HP008"])
        assert len(out) == 1
        assert "wall-clock" in out[0].message

    def test_unseeded_rng_taint_and_seeded_ok(self):
        bad = findings_for({
            "src/pkg/m.py": (
                "from numpy.random import default_rng\n"
                "def exact_noise(n):\n"
                "    return default_rng().uniform(0, 1, n)\n"
            ),
        }, select=["HP008"])
        good = findings_for({
            "src/pkg/m.py": (
                "from numpy.random import default_rng\n"
                "def exact_noise(n):\n"
                "    return default_rng(42).uniform(0, 1, n)\n"
            ),
        }, select=["HP008"])
        assert len(bad) == 1 and good == []

    def test_sorted_launders_order_dependence(self):
        out = findings_for({
            "src/pkg/m.py": (
                "def exact_keys(d):\n"
                "    return sorted(set(d))\n"
            ),
        }, select=["HP008"])
        assert out == []

    def test_noqa_suppresses_project_finding(self):
        out = findings_for({
            "src/pkg/m.py": (
                "import numpy as np\n"
                "def exact_total(xs):  # hp: noqa[HP008]\n"
                "    return float(np.sum(xs))\n"
            ),
        }, select=["HP008"])
        assert out == []


class TestHP009LockGraph:
    AB = (
        "import threading\n"
        "class Pair:\n"
        "    def __init__(self):\n"
        "        self._a = threading.Lock()\n"
        "        self._b = threading.Lock()\n"
        "    def ab(self):\n"
        "        with self._a:\n"
        "            with self._b:\n"
        "                pass\n"
    )

    def test_direct_inversion_cycle(self):
        out = findings_for({
            "src/pkg/m.py": self.AB + (
                "    def ba(self):\n"
                "        with self._b:\n"
                "            with self._a:\n"
                "                pass\n"
            ),
        }, select=["HP009"])
        assert len(out) == 2  # one finding per edge site in the cycle
        assert all("lock-order inversion" in f.message for f in out)
        assert "pkg.m.Pair._a" in out[0].message

    def test_consistent_order_is_clean(self):
        out = findings_for({"src/pkg/m.py": self.AB}, select=["HP009"])
        assert out == []

    def test_interprocedural_inversion(self):
        out = findings_for({
            "src/pkg/m.py": (
                "import threading\n"
                "class Pair:\n"
                "    def __init__(self):\n"
                "        self._a = threading.Lock()\n"
                "        self._b = threading.Lock()\n"
                "    def take_a(self):\n"
                "        with self._a:\n"
                "            pass\n"
                "    def ab(self):\n"
                "        with self._a:\n"
                "            with self._b:\n"
                "                pass\n"
                "    def ba(self):\n"
                "        with self._b:\n"
                "            self.take_a()\n"
            ),
        }, select=["HP009"])
        assert len(out) >= 1
        assert any("via pkg.m.Pair.take_a()" in f.message for f in out)

    def test_process_spawn_under_lock(self):
        out = findings_for({
            "src/pkg/m.py": (
                "import threading\n"
                "from multiprocessing import Pool\n"
                "class Spawner:\n"
                "    def __init__(self):\n"
                "        self._lock = threading.Lock()\n"
                "    def go(self):\n"
                "        with self._lock:\n"
                "            return Pool(2)\n"
            ),
        }, select=["HP009"])
        assert len(out) == 1
        assert "inherits the locked mutex" in out[0].message

    def test_spawn_outside_lock_is_clean(self):
        out = findings_for({
            "src/pkg/m.py": (
                "import threading\n"
                "from multiprocessing import Pool\n"
                "class Spawner:\n"
                "    def __init__(self):\n"
                "        self._lock = threading.Lock()\n"
                "    def go(self):\n"
                "        with self._lock:\n"
                "            n = 2\n"
                "        return Pool(n)\n"
            ),
        }, select=["HP009"])
        assert out == []


class TestHP010Merge:
    def test_subtraction_between_partials(self):
        out = findings_for({
            "src/pkg/m.py": (
                "class M:\n"
                "    def combine(self, a, b):\n"
                "        return a - b\n"
            ),
        }, select=["HP010"])
        assert len(out) == 1
        assert "non-commutative '-'" in out[0].message

    def test_division_between_partials(self):
        out = findings_for({
            "src/pkg/m.py": (
                "class M:\n"
                "    def merge(self, left, right):\n"
                "        return left / right\n"
            ),
        }, select=["HP010"])
        assert len(out) == 1

    def test_elementwise_addition_is_clean(self):
        out = findings_for({
            "src/pkg/m.py": (
                "class M:\n"
                "    def combine(self, a, b):\n"
                "        return tuple(x + y for x, y in zip(a, b))\n"
            ),
        }, select=["HP010"])
        assert out == []

    def test_subtracting_a_constant_is_clean(self):
        # Only partial-vs-partial subtraction is order-dependent.
        out = findings_for({
            "src/pkg/m.py": (
                "class M:\n"
                "    def combine(self, a, b):\n"
                "        return (a + b) - 1\n"
            ),
        }, select=["HP010"])
        assert out == []


class TestHP011Scheduling:
    def test_imap_unordered(self):
        out = findings_for({
            "src/pkg/m.py": (
                "def run(pool, tasks):\n"
                "    return list(pool.imap_unordered(str, tasks))\n"
            ),
        }, select=["HP011"])
        assert len(out) == 1
        assert "imap_unordered" in out[0].message

    def test_map_over_set_literal(self):
        out = findings_for({
            "src/pkg/m.py": (
                "def run(pool):\n"
                "    return pool.map(str, {1, 2, 3})\n"
            ),
        }, select=["HP011"])
        assert len(out) == 1

    def test_submit_loop_over_glob(self):
        out = findings_for({
            "src/pkg/m.py": (
                "import glob\n"
                "def run(pool):\n"
                "    for p in glob.glob('*.npy'):\n"
                "        pool.submit(str, p)\n"
            ),
        }, select=["HP011"])
        assert len(out) == 1

    def test_sorted_glob_is_clean(self):
        out = findings_for({
            "src/pkg/m.py": (
                "import glob\n"
                "def run(pool):\n"
                "    for p in sorted(glob.glob('*.npy')):\n"
                "        pool.submit(str, p)\n"
            ),
        }, select=["HP011"])
        assert out == []

    def test_map_over_list_is_clean(self):
        out = findings_for({
            "src/pkg/m.py": (
                "def run(pool, tasks):\n"
                "    return pool.map(str, tasks)\n"
            ),
        }, select=["HP011"])
        assert out == []


class TestSelfHost:
    def test_repo_self_hosts_clean(self):
        from repro.analysis.callgraph import analyze_paths

        res = analyze_paths(["src", "benchmarks"], cache_path=None)
        assert res.findings == [], [f.format() for f in res.findings]
        assert res.files_indexed > 100
