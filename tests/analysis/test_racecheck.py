"""Happens-before race detector: vector clocks, detector semantics, and
the fault-injection / clean smoke workloads."""

from __future__ import annotations

import threading

from repro.analysis.racecheck import (
    RaceDetector,
    VectorClock,
    active,
    detect_races,
    race_smoke,
    racy_read,
    racy_store,
)


class TestVectorClock:
    def test_join_is_pointwise_max(self):
        a = VectorClock({"t1": 3, "t2": 1})
        a.join({"t1": 2, "t3": 5})
        assert a == {"t1": 3, "t2": 1, "t3": 5}

    def test_le(self):
        assert VectorClock({"t1": 1}).le({"t1": 2})
        assert VectorClock({"t1": 1}).le({"t1": 1})
        assert not VectorClock({"t1": 2}).le({"t1": 1})
        assert not VectorClock({"t1": 1, "t2": 1}).le({"t1": 5})
        assert VectorClock().le({})


def _run_in_thread(fn, name):
    t = threading.Thread(target=fn, name=name)
    t.start()
    t.join()


class TestDetectorSemantics:
    def test_unordered_write_write_races(self):
        det = RaceDetector()
        det.write("x", site="main-site")
        _run_in_thread(lambda: det.write("x", site="other-site"), "other")
        (race,) = det.races
        assert race.var == "x"
        assert {race.first_site, race.second_site} == {
            "main-site", "other-site",
        }

    def test_read_write_races_but_read_read_does_not(self):
        det = RaceDetector()
        det.read("x", site="r1")
        _run_in_thread(lambda: det.read("x", site="r2"), "reader")
        assert det.races == []
        _run_in_thread(lambda: det.write("x", site="w"), "writer")
        assert len(det.races) == 2  # vs both unordered reads

    def test_lock_synchronization_orders_accesses(self):
        det = RaceDetector()

        def locked_write(site):
            det.acquire("L")
            det.write("x", site=site)
            det.release("L")

        locked_write("first")
        _run_in_thread(lambda: locked_write("second"), "other")
        assert det.races == []

    def test_sync_shorthand_matches_explicit_lock(self):
        det = RaceDetector()
        det.write("x", site="a", sync="L")
        _run_in_thread(
            lambda: det.write("x", site="b", sync="L"), "other"
        )
        assert det.races == []

    def test_different_locks_do_not_order(self):
        det = RaceDetector()
        det.write("x", site="a", sync="L1")
        _run_in_thread(
            lambda: det.write("x", site="b", sync="L2"), "other"
        )
        assert len(det.races) == 1

    def test_fork_join_edges(self):
        det = RaceDetector()
        det.write("x", site="before-fork")
        det.task_created("t")

        def body():
            det.task_begun("t")
            det.write("x", site="in-task")  # ordered after the fork
            det.task_done("t")

        _run_in_thread(body, "worker")
        det.task_joined("t")
        det.write("x", site="after-join")  # ordered after the join
        assert det.races == []

    def test_missing_fork_edge_is_a_race(self):
        det = RaceDetector()
        det.write("x", site="master")
        _run_in_thread(lambda: det.write("x", site="rogue"), "rogue")
        assert len(det.races) == 1

    def test_races_deduplicate_by_site_pair(self):
        det = RaceDetector()
        det.write("x", site="a")

        def body():
            det.write("x", site="b")
            det.write("x", site="b")

        _run_in_thread(body, "other")
        assert len(det.races) == 1

    def test_report_shape(self):
        det = RaceDetector()
        det.write("x", site="a")
        rep = det.report()
        assert rep["race_count"] == 0
        assert rep["accesses"] == 1
        assert rep["vars"] == 1


class TestInstallation:
    def test_hooks_are_noops_when_inactive(self):
        assert active() is None

        class FakeWord:
            _value = 7
            _lock = threading.Lock()

        # No detector installed: raw access, nothing recorded.
        assert racy_read(FakeWord) == 7
        racy_store(FakeWord, 9)
        assert FakeWord._value == 9

    def test_detect_races_installs_and_restores(self):
        assert active() is None
        with detect_races() as det:
            assert active() is det
        assert active() is None

    def test_racy_accessors_report(self):
        class FakeWord:
            _value = 7
            _lock = threading.Lock()

        with detect_races() as det:
            racy_store(FakeWord, 1, site="w")
            _run_in_thread(
                lambda: racy_read(FakeWord, site="r"), "reader"
            )
            assert len(det.races) == 1


class TestSanitizedWordHooks:
    def test_cas_accesses_are_lock_ordered(self):
        from repro.analysis.sanitizer import SanitizedWord

        with detect_races() as det:
            word = SanitizedWord(0)
            word.cas(0, 5)
            _run_in_thread(lambda: word.cas(5, 6), "other")
            assert det.races == []
            assert word.load() == 6

    def test_racy_store_races_with_cas(self):
        from repro.analysis.sanitizer import SanitizedWord

        with detect_races() as det:
            word = SanitizedWord(0)
            word.cas(0, 5)
            _run_in_thread(
                lambda: racy_store(word, 9, site="rogue"), "rogue"
            )
            assert len(det.races) >= 1
            assert any(r.second_site == "rogue" for r in det.races)


class TestSmokeWorkloads:
    def test_clean_workloads_report_zero_races(self):
        report = race_smoke(seed_race=False, pes=3, n=512,
                            include_procs=True)
        assert report["ok"]
        assert report["race_count"] == 0
        assert report["accesses"] > 0
        names = [w["name"] for w in report["workloads"]]
        assert names == ["shared-cell", "threads-native", "procpool"]
        # The two HP reductions agree (exactness is preserved under
        # instrumentation).
        values = {w["name"]: w["value"] for w in report["workloads"]}
        assert values["threads-native"] == values["procpool"]

    def test_seeded_fault_injection_is_caught(self):
        report = race_smoke(seed_race=True, pes=3, n=512,
                            include_procs=False)
        assert report["ok"]
        assert report["race_count"] >= 1
        # The report names the offending unsynchronized access pair.
        assert any("smoke.rogue" in r for r in report["races"])
        assert any("unordered with" in r for r in report["races"])
