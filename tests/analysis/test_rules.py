"""Good/bad fixtures for every per-file domain rule (HP001-HP007,
HP012, HP013).

Each bad fixture is a distilled real bug shape; each good fixture is a
pattern the codebase legitimately uses and the rule must *not* flag —
including the false positives found while self-hosting the linter
(NumPy ``.astype`` shifts, Hallberg signed-digit loops, attribute-based
subscripts), which are pinned here so they never regress into noise.
"""

from __future__ import annotations

import textwrap

from repro.analysis.lint import lint_source

CORE = "src/repro/core/_fixture.py"
PARALLEL = "src/repro/parallel/_fixture.py"
HALLBERG = "src/repro/hallberg/_fixture.py"


def rules_in(src: str, path: str = CORE) -> list[str]:
    return [f.rule for f in lint_source(textwrap.dedent(src), path)]


class TestHP001UnmaskedWordStore:
    def test_bad_unmasked_add(self):
        assert "HP001" in rules_in("""
            def f(a, b, out):
                out[0] = a[0] + b[0]
        """)

    def test_bad_unmasked_sub_and_shift_and_invert(self):
        src = """
            def f(a, w, out):
                out[0] = a[0] - 1
                out[1] = w[1] << 3
                out[2] = ~w[2]
        """
        assert rules_in(src).count("HP001") == 3

    def test_bad_inplace_update(self):
        assert "HP001" in rules_in("""
            def f(words, carry):
                words[0] += carry
        """)

    def test_good_masked_stores(self):
        src = """
            def f(a, b, out, MASK64, WORD_MOD, mask64):
                out[0] = (a[0] + b[0]) & MASK64
                out[1] = (a[1] + b[1] + 1) % WORD_MOD
                out[2] = mask64(a[2] + b[2])
                out[3] = (a[3] - b[3]) & 0xFFFFFFFFFFFFFFFF
        """
        assert rules_in(src) == []

    def test_good_numpy_astype_shift(self):
        # False positive found self-hosting: repro/core/vectorized.py's
        # uint64-dtype shift, where the dtype wraps in hardware.
        assert rules_in("""
            def f(out, mant, shift, left, np):
                out[left] = mant[left] << shift[left].astype(np.uint64)
        """) == []

    def test_good_hallberg_signed_digit_loops(self):
        # False positive found self-hosting: Hallberg digits are
        # unbounded signed ints by design; names must not match.
        assert rules_in("""
            def f(digits, total, d):
                digits[0] += d
                total[1] += d
        """) == []

    def test_good_attribute_based_subscript(self):
        # Only plain-Name bases are word containers; self.words[...]
        # style stores go through richer protocols the rule cannot see.
        assert rules_in("""
            class C:
                def f(self, i, d):
                    self.words[i] = self.words[i] + d
        """) == []

    def test_scoped_to_kernel_packages(self):
        bad = """
            def f(a, b, out):
                out[0] = a[0] + b[0]
        """
        assert "HP001" in rules_in(bad, PARALLEL)
        assert rules_in(bad, HALLBERG) == []


class TestHP002FloatIntermediate:
    def test_bad_true_division(self):
        assert "HP002" in rules_in("""
            def f(words):
                return words[0] / 2
        """)

    def test_bad_float_call(self):
        assert "HP002" in rules_in("""
            def f(acc):
                return float(acc[0])
        """)

    def test_good_floor_division_and_nonword_floats(self):
        assert rules_in("""
            def f(words, n):
                half = words[0] // 2
                ratio = n / 2
                return half, ratio, float(n)
        """) == []


class TestHP003LockDiscipline:
    def test_bad_unlocked_access(self):
        findings = lint_source(textwrap.dedent("""
            import threading

            class Cell:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._count = 0

                def bump(self):
                    self._count += 1
        """), "src/repro/anywhere/_fixture.py")
        assert [f.rule for f in findings] == ["HP003"]
        assert "_count" in findings[0].message
        assert "_lock" in findings[0].message

    def test_good_locked_access(self):
        assert rules_in("""
            import threading

            class Cell:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._count = 0

                def bump(self):
                    with self._lock:
                        self._count += 1
        """) == []

    def test_good_thread_local_state_is_exempt(self):
        assert rules_in("""
            import threading

            class Cell:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._tls = threading.local()
                    self._n = 0

                def f(self):
                    self._tls.x = 1
                    with self._lock:
                        self._n += 1
        """) == []

    def test_good_lockless_class_unconstrained(self):
        assert rules_in("""
            class Plain:
                def __init__(self):
                    self._data = []

                def push(self, x):
                    self._data.append(x)
        """) == []

    def test_init_itself_is_exempt(self):
        assert rules_in("""
            import threading

            class Cell:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._count = 0
                    self._count += 1
        """) == []


class TestHP004KernelNondeterminism:
    def test_bad_wall_clock(self):
        assert "HP004" in rules_in("""
            import time

            def f():
                return time.time()
        """)

    def test_bad_global_rng(self):
        assert "HP004" in rules_in("""
            import random

            def f():
                return random.random()
        """)

    def test_bad_unseeded_default_rng(self):
        assert "HP004" in rules_in("""
            from numpy.random import default_rng

            def f():
                return default_rng()
        """)

    def test_bad_as_completed(self):
        assert "HP004" in rules_in("""
            from concurrent.futures import as_completed

            def f(futs):
                return [g.result() for g in as_completed(futs)]
        """)

    def test_bad_arrival_order_dict_iteration(self):
        assert "HP004" in rules_in("""
            def f(results):
                return [v for rank, v in results.items()]
        """)

    def test_good_seeded_and_rank_ordered(self):
        assert rules_in("""
            from numpy.random import default_rng

            def f(futures, seed, config):
                rng = default_rng(seed)
                values = [fut.result() for fut in futures]
                settings = dict(config.items())
                return rng, values, settings
        """) == []

    def test_scoped_out_of_util(self):
        # Timing helpers legitimately live outside the kernels.
        assert rules_in("""
            import time

            def f():
                return time.time()
        """, "src/repro/util/_fixture.py") == []


class TestHP005Uint64Promotion:
    def test_bad_literal_mix(self):
        src = """
            def f(np, x):
                a = np.uint64(x) + 1
                b = 3 * np.uint64(x)
                c = np.uint64(x) >> 2
                return a, b, c
        """
        assert rules_in(src).count("HP005") == 3

    def test_good_wrapped_or_symbolic_operands(self):
        assert rules_in("""
            def f(np, x, offset):
                a = np.uint64(x) + np.uint64(1)
                b = np.uint64(x) + offset
                return a, b
        """) == []


class TestHP006HardcodedCarryBound:
    def test_bad_literal_word_count(self):
        assert "HP006" in rules_in("""
            def f(out):
                for i in range(8):
                    out[i] = 0
        """)

    def test_bad_literal_start(self):
        assert "HP006" in rules_in("""
            def f(w, MASK64):
                for i in range(2, 16):
                    w[i] = w[i] & MASK64
        """)

    def test_good_format_derived_bounds(self):
        assert rules_in("""
            def f(out, words, params, x, MASK64):
                for i in range(params.n):
                    out[i] = 0
                for i in range(len(words) - 1, -1, -1):
                    out[i] = x & MASK64
                for i in range(1):
                    out[i] = 0
        """) == []

    def test_good_loop_without_word_stores(self):
        assert rules_in("""
            def f():
                total = 0
                for i in range(8):
                    total += i
                return total
        """) == []


class TestHP007TimingUnderLock:
    def test_bad_phase_inside_lock(self):
        findings = lint_source(textwrap.dedent("""
            import threading
            from repro.observability.profile import phase

            class Acc:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._bins = None

                def merge(self, other):
                    with self._lock:
                        with phase("merge"):
                            self._bins = other
        """), "src/repro/core/_fixture.py")
        rules = [f.rule for f in findings]
        assert "HP007" in rules
        hp007 = next(f for f in findings if f.rule == "HP007")
        assert "Acc.merge" in hp007.message
        assert "_lock" in hp007.message

    def test_bad_same_statement_lock_then_span(self):
        src = """
            import threading

            class Acc:
                def __init__(self):
                    self._lock = threading.Lock()

                def merge(self, tracer, other):
                    with self._lock, tracer.span("merge"):
                        pass
        """
        assert "HP007" in rules_in(src)

    def test_bad_aliased_phase_and_timer(self):
        # Conventional underscore import aliases must still match.
        src = """
            import threading
            from repro.observability.profile import phase as _phase
            from repro.util.timing import Timer

            class Acc:
                def __init__(self):
                    self._lock = threading.Lock()

                def a(self):
                    with self._lock:
                        with _phase("fold"):
                            pass

                def b(self):
                    with self._lock:
                        with Timer("fold"):
                            pass
        """
        assert rules_in(src).count("HP007") == 2

    def test_good_lock_inside_timing_region(self):
        # The recommended hoist: the span surrounds the acquisition, so
        # its exit handler runs after the lock is released.
        src = """
            import threading
            from repro.observability.profile import phase

            class Acc:
                def __init__(self):
                    self._lock = threading.Lock()

                def merge(self, other):
                    with phase("merge"):
                        with self._lock:
                            pass
        """
        assert "HP007" not in rules_in(src)

    def test_good_lockless_class_unconstrained(self):
        src = """
            from repro.observability.profile import phase

            class Plain:
                def merge(self, other):
                    with phase("merge"):
                        pass
        """
        assert rules_in(src) == []

    def test_good_non_timing_context_under_lock(self):
        src = """
            import threading

            class Acc:
                def __init__(self):
                    self._lock = threading.Lock()

                def f(self, path):
                    with self._lock:
                        with open(path) as fh:
                            return fh.read()
        """
        assert "HP007" not in rules_in(src)

    def test_self_host_no_false_positives(self):
        # The repo's own sources must stay clean under HP007 — the
        # profiler was deliberately wired with every phase marker
        # outside the accumulator locks.
        from repro.analysis.lint import lint_paths

        assert lint_paths(["src"], select=["HP007"]) == []


class TestHP012EngineRegistryBypass:
    def test_bad_direct_import(self):
        assert "HP012" in rules_in("""
            from repro.core.superacc import superacc_total
        """, "src/repro/apps/_fixture.py")

    def test_bad_each_engine_function(self):
        src = """
            from repro.core.superacc import superacc_total
            from repro.core.smallacc import smallacc_total
            from repro.core.vectorized import words_scaled_total
        """
        assert rules_in(src, "src/repro/bench/_fixture.py").count(
            "HP012"
        ) == 3

    def test_bad_dotted_call(self):
        assert "HP012" in rules_in("""
            from repro.core import superacc

            def f(xs, params):
                return superacc.superacc_total(xs, params)
        """, "src/repro/apps/_fixture.py")

    def test_good_registry_dispatch(self):
        assert rules_in("""
            from repro.core import engines

            def f(xs, params, chunk):
                return engines.scaled_total(xs, params, chunk, "small")
        """, "src/repro/apps/_fixture.py") == []

    def test_good_engine_class_imports_unflagged(self):
        # Only the batch total functions are registry-gated; the engine
        # classes remain importable for streaming/merge use.
        assert rules_in("""
            from repro.core.smallacc import SmallAccumulator
            from repro.core.superacc import SuperAccumulator
        """, "src/repro/parallel/_fixture.py") == []

    def test_hosts_are_exempt(self):
        src = """
            from repro.core.superacc import superacc_total
        """
        for host in (
            "src/repro/core/engines.py",
            "src/repro/core/superacc.py",
            "src/repro/core/smallacc.py",
            "src/repro/core/vectorized.py",
            "src/repro/core/__init__.py",
            "src/repro/__init__.py",
        ):
            assert rules_in(src, host) == [], host

    def test_self_host_no_findings(self):
        # The registry refactor must leave no bypasses in the tree.
        from repro.analysis.lint import lint_paths

        assert lint_paths(["src"], select=["HP012"]) == []


class TestHP013UnboundedFloatReduction:
    def test_bad_np_sum(self):
        assert "HP013" in rules_in("""
            def f(xs, np):
                return float(np.sum(xs))
        """)

    def test_bad_add_reduce_and_numpy_spelling(self):
        src = """
            def f(xs, np, numpy):
                a = np.add.reduce(xs)
                b = numpy.sum(xs)
                return a + b
        """
        assert rules_in(src).count("HP013") == 2

    def test_bad_builtin_sum_over_sequence(self):
        assert "HP013" in rules_in("""
            def f(values):
                return sum(values)
        """)

    def test_good_integer_dtype_is_exact(self):
        # The vectorized word-column sums: an integer dtype= makes the
        # reduction exact, no rounding to bound.
        assert rules_in("""
            def f(cols, np):
                return np.sum(cols, dtype=np.uint64)
        """) == []
        assert rules_in("""
            def f(cols, np):
                return np.sum(cols, dtype="uint64")
        """) == []

    def test_good_axis_reduction_is_geometry(self):
        # Per-element reductions (particle distances in apps/nbody.py)
        # never feed a global result.
        assert rules_in("""
            def f(dx, np):
                return np.sum(dx * dx, axis=1)
        """) == []

    def test_good_builtin_sum_over_generator(self):
        # Count/length aggregation over a comprehension is the Python
        # idiom for metadata, not a float result path.
        assert rules_in("""
            def f(chunks):
                n = sum(len(c) for c in chunks)
                m = sum([c.nbytes for c in chunks])
                return n + m
        """) == []

    def test_good_compensated_host_exempt(self):
        # The compensated tiers ARE the sanctioned bounded wrapper over
        # these primitives.
        assert rules_in("""
            def f(xs, np):
                return np.sum(xs)
        """, "src/repro/core/compensated.py") == []

    def test_package_scoping(self):
        # Only core/parallel/apps are result-producing; bench harness
        # timing code is out of scope.
        src = """
            def f(xs, np):
                return np.sum(xs)
        """
        assert rules_in(src, "src/repro/bench/_fixture.py") == []
        assert "HP013" in rules_in(src, "src/repro/apps/_fixture.py")
        assert "HP013" in rules_in(src, PARALLEL)

    def test_noqa_suppression(self):
        assert rules_in("""
            def f(xs, np):
                return np.sum(xs)  # hp: noqa[HP013]
        """) == []

    def test_self_host_single_justified_suppression(self):
        # The only raw reduction in the tree is DoubleMethod's baseline
        # (the non-reproducibility under study), suppressed at the site.
        from repro.analysis.lint import lint_paths

        assert lint_paths(["src"], select=["HP013"]) == []


class TestHP014PrintInLibrary:
    def test_bad_bare_print(self):
        assert "HP014" in rules_in("""
            def local_reduce(self, xs):
                print(f"reducing {len(xs)} summands")
                return xs
        """)

    def test_bad_stderr_write(self):
        src = """
            import sys

            def f(msg):
                sys.stderr.write(msg + "\\n")
                sys.stdout.write("done\\n")
        """
        assert rules_in(src).count("HP014") == 2

    def test_bad_stderr_print_kwarg_is_still_print(self):
        assert "HP014" in rules_in("""
            import sys

            def f(msg):
                print(msg, file=sys.stderr)
        """)

    def test_good_main_guard_script_block(self):
        # A module runnable as a script may print in its entry block.
        assert rules_in("""
            def compute():
                return 42

            if __name__ == "__main__":
                print(compute())
        """) == []

    def test_good_cli_module_is_an_output_host(self):
        src = """
            def _cmd_sum(args):
                print("3.14")
        """
        assert rules_in(src, "src/repro/cli.py") == []
        assert rules_in(src, "src/repro/__main__.py") == []
        assert rules_in(src, "src/repro/observability/top.py") == []

    def test_good_journal_emit(self):
        assert rules_in("""
            from repro.observability import journal as _journal

            def local_reduce(self, xs):
                _journal.emit("worker.task", n=len(xs))
                return xs
        """) == []

    def test_good_noqa_suppression(self):
        assert rules_in("""
            def f(msg):
                print(msg)  # hp: noqa[HP014]
        """) == []

    def test_good_other_attribute_writes(self):
        # Only the process streams are diagnostics; file handles and
        # arbitrary .write() calls are data paths.
        assert rules_in("""
            def f(fh, payload):
                fh.write(payload)
                fh.stdout.write(payload)
        """) == []

    def test_self_host_library_is_clean(self):
        from pathlib import Path

        from repro.analysis import lint

        repo = Path(__file__).resolve().parents[2]
        findings = lint.lint_paths(
            [repo / "src", repo / "benchmarks"], select=["HP014"]
        )
        assert findings == [], lint.format_text(findings, 0)
