"""Runtime sanitizer: fault injection and the disabled-path contract.

Every detector is proven twice: a clean run stays silent, and a
deliberately injected fault (an unlocked store, a concurrent write
mid-snapshot, corrupted accumulator words, silent wrap-around, a lost
message) is caught and classified.  The disabled path is held to bit
identity: attaching the harness never changes results, and leaving the
block restores the library exactly.
"""

from __future__ import annotations

import pytest

from repro.analysis.sanitizer import (
    SanitizedWord,
    SanitizerContext,
    SanitizerViolation,
    sanitize,
)
from repro.core import atomic as atomic_mod
from repro.core.accumulator import HPAccumulator
from repro.core.params import HPParams
from repro.util.bits import MASK64

P = HPParams(2, 1)
DATA = [0.5, -0.25, 1.0 / 3.0, 7.25, -3.125, 0.1]


def kinds(ctx: SanitizerContext) -> list[str]:
    return [v.kind for v in ctx.violations]


class FakeCell:
    """Test double standing in for AtomicHPCell: just a words list."""

    def __init__(self, ctx: SanitizerContext, n: int = 2) -> None:
        self.words = [SanitizedWord(0, ctx=ctx) for _ in range(n)]


class TestInstallation:
    def test_atomic_word_patched_inside_and_restored_after(self):
        original = atomic_mod.AtomicWord
        with sanitize():
            assert atomic_mod.AtomicWord is not original
            assert issubclass(atomic_mod.AtomicWord, SanitizedWord)
            cell = atomic_mod.AtomicHPCell(P)
            assert all(isinstance(w, SanitizedWord) for w in cell.words)
        assert atomic_mod.AtomicWord is original
        plain = atomic_mod.AtomicHPCell(P)
        assert not any(isinstance(w, SanitizedWord) for w in plain.words)

    def test_restored_even_when_strict_raises(self):
        original = atomic_mod.AtomicWord
        with pytest.raises(SanitizerViolation):
            with sanitize() as ctx:
                cell = atomic_mod.AtomicHPCell(P)
                ctx.consistent_snapshot(cell)
                cell.words[0]._value = 0xDEAD
        assert atomic_mod.AtomicWord is original

    def test_wrap_cell_adopts_existing_cell_preserving_values(self):
        cell = atomic_mod.AtomicHPCell(P)
        for x in DATA:
            cell.atomic_add_double(x)
        before = cell.snapshot_words()
        with sanitize() as ctx:
            ctx.wrap_cell(cell)
            assert all(isinstance(w, SanitizedWord) for w in cell.words)
            assert ctx.consistent_snapshot(cell) == before

    def test_clean_run_is_silent(self):
        with sanitize() as ctx:
            cell = atomic_mod.AtomicHPCell(P)
            for x in DATA:
                cell.atomic_add_double(x)
            snap = ctx.consistent_snapshot(cell)
        assert ctx.violations == []
        acc = HPAccumulator(P)
        acc.extend(DATA)
        assert snap == acc.words  # sanitized arithmetic is the arithmetic


class TestDisabledPathBitIdentity:
    def test_sanitized_words_bit_identical_to_plain(self):
        plain = atomic_mod.AtomicHPCell(P)
        for x in DATA:
            plain.atomic_add_double(x)
        with sanitize() as ctx:
            watched = atomic_mod.AtomicHPCell(P)
            for x in DATA:
                watched.atomic_add_double(x)
            snap = ctx.consistent_snapshot(watched)
        assert snap == plain.snapshot_words()

    def test_outside_block_library_state_untouched(self):
        with sanitize():
            pass
        cell = atomic_mod.AtomicHPCell(P)
        cell.atomic_add_double(1.5)
        assert type(cell.words[0]) is atomic_mod.AtomicWord
        assert not hasattr(cell.words[0], "_ctx")  # __slots__ intact


class TestUnlockedWriteDetection:
    def test_injected_store_into_test_double(self):
        ctx = SanitizerContext(strict=False)
        fake = FakeCell(ctx)
        fake.words[0].cas(0, 41)
        fake.words[1]._value = 7  # the injected non-CAS store
        ctx.finalize()
        assert kinds(ctx) == ["unlocked-write"]
        assert ctx.report()["unlocked_writes"] == 1
        assert "bypassed" in ctx.violations[0].detail

    def test_detected_at_next_cas_and_reported_once(self):
        ctx = SanitizerContext(strict=False)
        word = SanitizedWord(0, ctx=ctx)
        word.cas(0, 5)
        word._value = 9  # rogue store between sanctioned CASes
        assert word.cas(9, 10)  # proceeds from observed memory state
        ctx.finalize()
        assert kinds(ctx) == ["unlocked-write"]  # resync => one report

    def test_strict_mode_raises_on_exit(self):
        with pytest.raises(SanitizerViolation, match="unlocked-write"):
            with sanitize():
                cell = atomic_mod.AtomicHPCell(P)
                cell.atomic_add_double(2.0)
                cell.words[0]._value ^= 1

    def test_verify_returns_false_then_true(self):
        ctx = SanitizerContext(strict=False)
        word = SanitizedWord(3, ctx=ctx)
        assert word.verify()
        word._value = 4
        assert not word.verify()
        assert word.verify()  # resynced


class TestTornReadDetection:
    def test_concurrent_writer_mid_snapshot_exhausts_retries(self):
        ctx = SanitizerContext(strict=False, snapshot_retries=3)
        fake = FakeCell(ctx)

        def racing_write():
            w = fake.words[0]
            cur = w.load()
            assert w.cas(cur, (cur + 1) & MASK64)

        ctx.snapshot_hook = racing_write
        ctx.consistent_snapshot(fake)
        report = ctx.report()
        assert report["torn_reads"] == 1
        assert report["snapshot_retries"] == 3
        assert kinds(ctx) == ["torn-read"]

    def test_transient_race_retries_and_succeeds(self):
        ctx = SanitizerContext(strict=False, snapshot_retries=8)
        fake = FakeCell(ctx)
        fake.words[1].cas(0, 17)
        fired = []

        def write_once():
            if not fired:
                fired.append(True)
                assert fake.words[0].cas(0, 99)

        ctx.snapshot_hook = write_once
        snap = ctx.consistent_snapshot(fake)
        assert snap == (99, 17)  # retry observed the committed value
        report = ctx.report()
        assert report["torn_reads"] == 0
        assert report["snapshot_retries"] == 1
        ctx.finalize()  # clean

    def test_snapshot_requires_sanitized_words(self):
        ctx = SanitizerContext()
        plain = atomic_mod.AtomicHPCell(P)
        with pytest.raises(TypeError, match="sanitized"):
            ctx.consistent_snapshot(plain)


class TestShadowAccumulator:
    def test_clean_tracking_and_exact_value(self):
        from fractions import Fraction

        ctx = SanitizerContext(strict=False)
        shadow = ctx.shadow(HPAccumulator(P))
        shadow.add(0.5)
        shadow.add(0.25)
        assert shadow.exact_value == Fraction(3, 4)
        assert shadow.to_double() == 0.75
        ctx.finalize()
        assert ctx.violations == []

    def test_corrupted_words_diverge_from_shadow(self):
        ctx = SanitizerContext(strict=False)
        shadow = ctx.shadow(HPAccumulator(P))
        shadow.extend(DATA)
        shadow.acc._words[1] ^= 1  # flip one bit: a dropped carry
        ctx.finalize()
        assert "shadow-divergence" in kinds(ctx)
        assert f"summand {len(DATA)}" in ctx.violations[0].detail

    def test_silent_overflow_wrap_flagged(self):
        # HP(1,0) holds signed 64-bit; three 2**62 addends wrap silently
        # when the sign-rule check is off.
        p1 = HPParams(1, 0)
        ctx = SanitizerContext(strict=False)
        shadow = ctx.shadow(HPAccumulator(p1, check_overflow=False))
        for _ in range(3):
            shadow.add(float(2**62))
        assert "overflow-wrap" in kinds(ctx)
        # The wrap itself is consistent two's-complement arithmetic, so
        # no divergence is (wrongly) reported on top.
        assert "shadow-divergence" not in kinds(ctx)

    def test_merge_tracks_exactly(self):
        ctx = SanitizerContext(strict=False)
        left = ctx.shadow(HPAccumulator(P))
        right = ctx.shadow(HPAccumulator(P))
        left.extend(DATA[:3])
        right.extend(DATA[3:])
        left.merge(right)
        whole = HPAccumulator(P)
        whole.extend(DATA)
        assert left.acc.words == whole.words
        ctx.finalize()
        assert ctx.violations == []


class TestCommWatch:
    def test_undelivered_message_is_a_violation(self):
        from repro.parallel.simmpi.comm import SimComm

        ctx = SanitizerContext(strict=False)
        comm = SimComm(2)
        ctx.watch_comm(comm)
        comm.send(0, 1, b"\x00" * 8)
        ctx.finalize()
        assert kinds(ctx) == ["undelivered-messages"]

    def test_quiescent_comm_is_clean(self):
        from repro.parallel.simmpi.comm import SimComm

        ctx = SanitizerContext(strict=False)
        comm = SimComm(2)
        ctx.watch_comm(comm)
        comm.send(0, 1, b"\x00" * 8)
        comm.recv(1, 0)
        ctx.finalize()
        assert ctx.violations == []


class TestObservabilityIntegration:
    def test_violations_feed_metrics_registry(self):
        from repro.observability import metrics

        metrics.disable()
        metrics.REGISTRY.clear()
        metrics.enable()
        try:
            ctx = SanitizerContext(strict=False)
            word = SanitizedWord(0, ctx=ctx)
            word._value = 1
            word.verify()
            counter = metrics.REGISTRY.get("sanitizer.unlocked_writes")
            assert counter is not None and counter.value == 1
        finally:
            metrics.disable()
            metrics.REGISTRY.clear()
