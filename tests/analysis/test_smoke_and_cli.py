"""The smoke workload, the ``repro lint`` CLI, and self-hosting.

Self-hosting is the tentpole acceptance criterion: the linter runs
clean over the repository's own sources, so any finding that appears in
CI is a real regression, never ambient noise.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.analysis import lint
from repro.analysis.smoke import run_smoke
from repro.cli import main

REPO = Path(__file__).resolve().parents[2]

BAD = "def f(a, b, out):\n    out[0] = a[0] + b[0]\n"
GOOD = "def f(a, b, out, MASK64):\n    out[0] = (a[0] + b[0]) & MASK64\n"


def run_cli(capsys, *argv: str) -> tuple[int, str, str]:
    code = main(list(argv))
    captured = capsys.readouterr()
    return code, captured.out, captured.err


@pytest.fixture
def fixture_tree(tmp_path):
    """A throwaway package layout the kernel-scoped rules apply to."""
    pkg = tmp_path / "core"
    pkg.mkdir()
    (pkg / "bad.py").write_text(BAD)
    (pkg / "good.py").write_text(GOOD)
    return pkg


class TestSelfHost:
    def test_linter_runs_clean_on_repo_sources(self):
        paths = [REPO / "src", REPO / "benchmarks"]
        files = lint.iter_python_files(paths)
        assert len(files) > 80  # sanity: we really walked the tree
        findings = lint.lint_paths(paths)
        assert findings == [], lint.format_text(findings, len(files))


class TestSmoke:
    def test_clean_smoke_run(self):
        report = run_smoke(n=2000, pes=2, seed=7)
        assert report["ok"]
        assert report["cross_check_mismatches"] == []
        assert report["sanitizer"]["violations"] == []
        assert report["sanitizer"]["words_watched"] == 3  # HP(3,2) cell
        assert report["atomic"]["cas_attempts"] >= 2000
        # Order invariance: all three paths produced the same double.
        assert report["atomic"]["value"] == report["accumulator"]["value"]
        assert report["atomic"]["value"] == report["simmpi"]["value"]

    def test_smoke_is_deterministic(self):
        a = run_smoke(n=500, pes=2, seed=3)
        b = run_smoke(n=500, pes=2, seed=3)
        assert a["atomic"]["value"] == b["atomic"]["value"]
        assert a["accumulator"]["exact"] == b["accumulator"]["exact"]


class TestLintCli:
    def test_findings_fail_with_exit_1(self, fixture_tree, capsys):
        code, out, _ = run_cli(capsys, "lint", str(fixture_tree))
        assert code == 1
        assert "HP001" in out and "bad.py" in out
        assert "1 finding in 2 files" in out

    def test_clean_tree_exits_0(self, fixture_tree, capsys):
        code, out, _ = run_cli(capsys, "lint", str(fixture_tree / "good.py"))
        assert code == 0
        assert "0 findings in 1 file" in out

    def test_json_format(self, fixture_tree, capsys):
        code, out, _ = run_cli(
            capsys, "lint", "--format", "json", str(fixture_tree)
        )
        assert code == 1
        doc = json.loads(out)
        assert doc["kind"] == "lint"
        assert doc["schema_version"] == lint.LINT_SCHEMA_VERSION
        assert doc["counts"] == {"HP001": 1}
        assert doc["findings"][0]["rule"] == "HP001"

    def test_select_narrows_rules(self, fixture_tree, capsys):
        code, out, _ = run_cli(
            capsys, "lint", "--select", "HP002", str(fixture_tree)
        )
        assert code == 0 and "0 findings" in out

    def test_list_rules_prints_catalog(self, capsys):
        code, out, _ = run_cli(capsys, "lint", "--list-rules")
        assert code == 0
        for rule_id in ("HP001", "HP002", "HP003", "HP004", "HP005", "HP006"):
            assert rule_id in out
        assert "rationale:" in out

    def test_missing_path_is_clean_error(self, capsys):
        code, _, err = run_cli(capsys, "lint", "/no/such/dir")
        assert code == 1 and "error:" in err

    def test_sanitize_smoke_text(self, fixture_tree, capsys):
        code, out, _ = run_cli(
            capsys, "lint", "--sanitize-smoke", "--smoke-n", "400",
            "--smoke-pes", "2", str(fixture_tree / "good.py"),
        )
        assert code == 0
        assert "sanitizer smoke (400 summands, 2 threads): ok" in out

    def test_sanitize_smoke_json(self, fixture_tree, capsys):
        code, out, _ = run_cli(
            capsys, "lint", "--format", "json", "--sanitize-smoke",
            "--smoke-n", "400", "--smoke-pes", "2",
            str(fixture_tree / "good.py"),
        )
        assert code == 0
        doc = json.loads(out)
        assert doc["sanitizer_smoke"]["ok"]
        assert doc["sanitizer_smoke"]["sanitizer"]["violations"] == []


class TestExplainFlag:
    def test_explain_prints_doc_and_examples(self, capsys):
        code, out, _ = run_cli(capsys, "lint", "--explain", "HP008")
        assert code == 0
        assert "HP008 nondeterminism-reaches-exact-result" in out
        assert "bad:" in out and "good:" in out

    def test_explain_is_case_insensitive(self, capsys):
        code, out, _ = run_cli(capsys, "lint", "--explain", "hp001")
        assert code == 0 and "HP001" in out

    def test_explain_unknown_rule_exits_2(self, capsys):
        code, out, _ = run_cli(capsys, "lint", "--explain", "HP999")
        assert code == 2
        assert "unknown rule" in out and "HP008" in out

    def test_help_epilog_lists_every_rule(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["lint", "--help"])
        assert exc.value.code == 0
        out = capsys.readouterr().out
        for r in lint.rule_catalog():
            assert r.id in out
        assert "HP000" in out  # the parse-error pseudo-rule too

    def test_list_rules_marks_whole_program_scope(self, capsys):
        code, out, _ = run_cli(capsys, "lint", "--list-rules")
        assert code == 0
        for rule_id in ("HP008", "HP009", "HP010", "HP011"):
            assert rule_id in out
        assert "whole-program" in out


class TestCallGraphFlag:
    def test_call_graph_reports_cache_stats(self, fixture_tree, capsys):
        cache = fixture_tree.parent / "cache.json"
        code, out, _ = run_cli(
            capsys, "lint", "--call-graph", "--cache", str(cache),
            str(fixture_tree),
        )
        assert code == 1  # bad.py still fires HP001
        assert "call graph: 2 files indexed, 2 parsed, 0 cache hits" in out

        code, out, _ = run_cli(
            capsys, "lint", "--call-graph", "--cache", str(cache),
            str(fixture_tree),
        )
        assert "call graph: 2 files indexed, 0 parsed, 2 cache hits" in out

    def test_no_cache_always_parses(self, fixture_tree, capsys):
        for _ in range(2):
            _, out, _ = run_cli(
                capsys, "lint", "--call-graph", "--no-cache",
                str(fixture_tree),
            )
            assert "2 parsed, 0 cache hits" in out

    def test_call_graph_json_embeds_stats(self, fixture_tree, capsys):
        code, out, _ = run_cli(
            capsys, "lint", "--format", "json", "--call-graph",
            "--no-cache", str(fixture_tree),
        )
        doc = json.loads(out)
        assert doc["analysis"]["files_indexed"] == 2


class TestBaselineFlag:
    def test_write_then_gate_roundtrip(self, fixture_tree, capsys, tmp_path):
        bl = tmp_path / "bl.json"
        code, out, _ = run_cli(
            capsys, "lint", "--baseline-path", str(bl), "--baseline-write",
            str(fixture_tree),
        )
        assert code == 0
        assert f"baseline: wrote 1 entry to {bl}" in out

        # The freshly written entry carries a TODO justification, which
        # the loader refuses: justifications are mandatory.
        code, out, _ = run_cli(
            capsys, "lint", "--baseline-path", str(bl), str(fixture_tree),
        )
        assert code == 2 and "baseline error" in out

        doc = json.loads(bl.read_text())
        doc["entries"][0]["justification"] = "legacy kernel; tracked"
        bl.write_text(json.dumps(doc))

        code, out, _ = run_cli(
            capsys, "lint", "--baseline-path", str(bl), str(fixture_tree),
        )
        assert code == 0
        assert f"baseline {bl}: 0 new, 1 suppressed, 0 stale" in out

    def test_new_finding_still_fails_under_baseline(
        self, fixture_tree, capsys, tmp_path
    ):
        bl = tmp_path / "bl.json"
        bl.write_text(json.dumps({
            "kind": "analysis_baseline", "schema_version": 1,
            "entries": [],
        }))
        code, out, _ = run_cli(
            capsys, "lint", "--baseline-path", str(bl), str(fixture_tree),
        )
        assert code == 1 and "1 new" in out


class TestSarifFlag:
    def test_sarif_file_written_and_valid(
        self, fixture_tree, capsys, tmp_path
    ):
        from repro.analysis.sarif import validate_sarif

        out_path = tmp_path / "lint.sarif"
        code, _, _ = run_cli(
            capsys, "lint", "--sarif", str(out_path), str(fixture_tree),
        )
        assert code == 1
        doc = json.loads(out_path.read_text())
        assert validate_sarif(doc) == []
        assert [r["ruleId"] for r in doc["runs"][0]["results"]] == ["HP001"]

    def test_sarif_respects_baseline_filter(
        self, fixture_tree, capsys, tmp_path
    ):
        bl = tmp_path / "bl.json"
        run_cli(capsys, "lint", "--baseline-path", str(bl), "--baseline-write",
                str(fixture_tree))
        doc = json.loads(bl.read_text())
        doc["entries"][0]["justification"] = "legacy kernel; tracked"
        bl.write_text(json.dumps(doc))

        out_path = tmp_path / "lint.sarif"
        code, _, _ = run_cli(
            capsys, "lint", "--baseline-path", str(bl), "--sarif",
            str(out_path), str(fixture_tree),
        )
        assert code == 0
        doc = json.loads(out_path.read_text())
        assert doc["runs"][0]["results"] == []  # suppressed, not exported


class TestConsoleScript:
    def test_repro_lint_entry_point_delegates(self, fixture_tree, capsys):
        code = lint.main([str(fixture_tree)])
        out = capsys.readouterr().out
        assert code == 1 and "HP001" in out
