"""Tests for the climate diagnostics application."""

from __future__ import annotations

import math
from fractions import Fraction

import numpy as np
import pytest

from repro.apps.climate import GlobalDiagnostics, LatLonGrid
from repro.util.rng import default_rng


@pytest.fixture(scope="module")
def grid() -> LatLonGrid:
    return LatLonGrid(12, 24)


@pytest.fixture(scope="module")
def diagnostics(grid) -> GlobalDiagnostics:
    return GlobalDiagnostics(grid)


@pytest.fixture(scope="module")
def field(grid) -> np.ndarray:
    return default_rng(131).uniform(-2.0, 30.0, grid.size)


class TestGrid:
    def test_latitudes_centred(self, grid):
        lats = grid.latitudes()
        assert len(lats) == 12
        assert lats[0] == -82.5 and lats[-1] == 82.5
        assert np.allclose(lats, -lats[::-1])  # symmetric about equator

    def test_weights_peak_at_equator(self, grid):
        w = grid.cell_weights().reshape(grid.shape)
        band_means = w.mean(axis=1)
        assert band_means.argmax() in (5, 6)
        assert (w > 0).all()

    def test_validation(self):
        with pytest.raises(ValueError):
            LatLonGrid(1, 8)


class TestGlobalDiagnostics:
    def test_mean_of_constant_field(self, diagnostics, grid):
        assert diagnostics.area_weighted_mean(np.full(grid.size, 7.25)) == 7.25

    def test_mean_exact_against_rationals(self, diagnostics, field):
        w = diagnostics.weights
        num = sum((Fraction(float(a)) * Fraction(float(b))
                   for a, b in zip(w, field)), Fraction(0))
        den = sum((Fraction(float(a)) for a in w), Fraction(0))
        exact = num / den
        assert diagnostics.area_weighted_mean(field) == (
            exact.numerator / exact.denominator
        )

    def test_decomposition_invariance(self, diagnostics, field):
        """The ocean-model requirement: any rank count, same bits."""
        reference = diagnostics.weighted_sum_words(field)
        for ranks in (1, 2, 5, 24, 97):
            assert diagnostics.decomposed_sum_words(field, ranks) == (
                reference
            ), ranks

    def test_field_shape_check(self, diagnostics):
        with pytest.raises(ValueError):
            diagnostics.area_weighted_mean(np.zeros(7))

    def test_2d_fields_accepted(self, diagnostics, grid, field):
        reshaped = field.reshape(grid.shape)
        assert diagnostics.weighted_sum_words(reshaped) == (
            diagnostics.weighted_sum_words(field)
        )


class TestZonalStatistics:
    def test_zonal_sums_exact(self, diagnostics, grid, field):
        sums = diagnostics.zonal_sums(field)
        w2d = diagnostics.weights.reshape(grid.shape)
        f2d = field.reshape(grid.shape)
        for i in range(grid.nlat):
            exact = sum(
                (Fraction(float(a)) * Fraction(float(b))
                 for a, b in zip(w2d[i], f2d[i])),
                Fraction(0),
            )
            assert sums[i] == exact.numerator / exact.denominator

    def test_zonal_means_of_constant(self, diagnostics, grid):
        means = diagnostics.zonal_means(np.full(grid.size, 3.5))
        assert np.array_equal(means, np.full(grid.nlat, 3.5))

    def test_zonal_means_order_invariant_within_band(self, diagnostics,
                                                     grid, field):
        f2d = field.reshape(grid.shape).copy()
        rng = default_rng(7)
        for i in range(grid.nlat):
            f2d[i] = f2d[i][rng.permutation(grid.nlon)]
        # Permuting cells *within* a band leaves every band mean's bits
        # unchanged (weights are constant within a band).
        assert np.array_equal(
            diagnostics.zonal_means(f2d.ravel()),
            diagnostics.zonal_means(field),
        )
