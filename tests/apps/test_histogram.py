"""Tests for the reproducible histogram application."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.apps.histogram import ReproducibleHistogram
from repro.core.params import HPParams
from repro.errors import MixedParameterError
from repro.util.rng import default_rng

EDGES = np.linspace(0.0, 1.0, 11)  # 10 bins


class TestBasics:
    def test_empty(self):
        h = ReproducibleHistogram(EDGES)
        assert h.values().tolist() == [0.0] * 10
        assert h.total() == 0.0

    def test_simple_fill(self):
        h = ReproducibleHistogram(np.array([0.0, 1.0, 2.0]))
        h.fill(np.array([0.5, 1.5, 0.7]), np.array([1.0, 2.0, 0.5]))
        assert h.values().tolist() == [1.5, 2.0]

    def test_unit_weights_default(self):
        h = ReproducibleHistogram(EDGES)
        h.fill(np.array([0.05, 0.15, 0.15]))
        assert h.values()[0] == 1.0 and h.values()[1] == 2.0

    def test_under_overflow_cells(self):
        h = ReproducibleHistogram(EDGES)
        h.fill(np.array([-0.5, 0.5, 2.0]), np.array([1.0, 2.0, 4.0]))
        assert h.underflow == 1.0
        assert h.overflow == 4.0
        assert h.total() == 7.0

    def test_edge_semantics(self):
        """Left edge inclusive, right edge exclusive (except into
        overflow)."""
        h = ReproducibleHistogram(np.array([0.0, 1.0, 2.0]))
        h.fill(np.array([0.0, 1.0, 2.0]))
        assert h.values().tolist() == [1.0, 1.0]
        assert h.overflow == 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            ReproducibleHistogram(np.array([1.0]))
        with pytest.raises(ValueError):
            ReproducibleHistogram(np.array([1.0, 0.5]))
        h = ReproducibleHistogram(EDGES)
        with pytest.raises(ValueError):
            h.fill(np.zeros(3), np.zeros(4))


class TestInvariance:
    def test_fill_order_invariant(self, rng):
        samples = rng.uniform(-0.2, 1.2, 5000)
        weights = rng.uniform(-1.0, 1.0, 5000)
        a = ReproducibleHistogram(EDGES, HPParams(3, 2))
        a.fill(samples, weights)
        order = rng.permutation(5000)
        b = ReproducibleHistogram(EDGES, HPParams(3, 2))
        b.fill(samples[order], weights[order])
        for i in range(10):
            assert a.bin_words(i) == b.bin_words(i)

    def test_sharding_invariant(self, rng):
        samples = rng.uniform(0.0, 1.0, 3000)
        weights = rng.uniform(-1.0, 1.0, 3000)
        whole = ReproducibleHistogram(EDGES, HPParams(3, 2))
        whole.fill(samples, weights)
        for num_shards in (2, 7):
            merged = ReproducibleHistogram(EDGES, HPParams(3, 2))
            for s in range(num_shards):
                shard = ReproducibleHistogram(EDGES, HPParams(3, 2))
                shard.fill(samples[s::num_shards], weights[s::num_shards])
                merged.merge(shard)
            for i in range(10):
                assert merged.bin_words(i) == whole.bin_words(i)

    def test_merge_rejects_different_binning(self):
        with pytest.raises(MixedParameterError):
            ReproducibleHistogram(EDGES).merge(
                ReproducibleHistogram(np.array([0.0, 1.0]))
            )

    def test_values_exact_vs_fsum(self, rng):
        samples = rng.uniform(0.0, 1.0, 2000)
        weights = rng.uniform(-1.0, 1.0, 2000)
        h = ReproducibleHistogram(EDGES)
        h.fill(samples, weights)
        bins = np.searchsorted(EDGES, samples, side="right") - 1
        for i in range(10):
            expected = math.fsum(weights[bins == i])
            assert h.values()[i] == expected


class TestRebinning:
    def test_rebin_exact(self, rng):
        samples = rng.uniform(0.0, 1.0, 2000)
        weights = rng.uniform(-1.0, 1.0, 2000)
        fine = ReproducibleHistogram(EDGES, HPParams(3, 2))
        fine.fill(samples, weights)
        coarse = fine.rebinned(2)
        direct = ReproducibleHistogram(EDGES[::2], HPParams(3, 2))
        direct.fill(samples, weights)
        for i in range(5):
            assert coarse.bin_words(i) == direct.bin_words(i)
        assert coarse.total() == fine.total()

    def test_rebin_factor_validation(self):
        h = ReproducibleHistogram(EDGES)
        with pytest.raises(ValueError):
            h.rebinned(3)  # 10 % 3 != 0

    def test_rebin_empty(self):
        coarse = ReproducibleHistogram(EDGES).rebinned(5)
        assert coarse.num_bins == 2


class TestDensityCumulative:
    def test_density_normalizes(self, rng):
        h = ReproducibleHistogram(EDGES, HPParams(3, 2))
        h.fill(rng.uniform(0.0, 1.0, 1000))
        density = h.density()
        # Sum(density * width) == 1 for fully-in-range unit weights.
        assert math.fsum(density * np.diff(EDGES)) == pytest.approx(1.0)

    def test_density_zero_total_guard(self):
        h = ReproducibleHistogram(EDGES, HPParams(3, 2))
        h.fill(np.array([0.5]), np.array([0.0]))
        with pytest.raises(ValueError):
            h.density()

    def test_cumulative_exact(self, rng):
        samples = rng.uniform(0.0, 1.0, 500)
        weights = rng.uniform(-1.0, 1.0, 500)
        h = ReproducibleHistogram(EDGES, HPParams(3, 2))
        h.fill(samples, weights)
        cumulative = h.cumulative()
        bins = np.searchsorted(EDGES, samples, side="right") - 1
        for i in (0, 4, 9):
            assert cumulative[i] == math.fsum(weights[bins <= i])

    def test_empty(self):
        h = ReproducibleHistogram(EDGES)
        assert h.cumulative().tolist() == [0.0] * 10
        assert h.density().tolist() == [0.0] * 10
