"""Tests for the reproducible N-body application."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.apps.nbody import NBodySystem, force_params_for, simulate
from repro.util.rng import default_rng


@pytest.fixture(scope="module")
def cluster() -> NBodySystem:
    return NBodySystem.random_cluster(20, default_rng(77))


class TestSystem:
    def test_random_cluster_zero_momentum(self, cluster):
        momentum = (cluster.masses[:, None] * cluster.velocities).sum(axis=0)
        assert np.abs(momentum).max() < 1e-12

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            NBodySystem(np.zeros((3, 2)), np.zeros((3, 3)), np.zeros(3))

    def test_copy_independent(self, cluster):
        c = cluster.copy()
        c.positions += 1.0
        assert not np.array_equal(c.positions, cluster.positions)


class TestReproducibility:
    def test_exact_trajectory_worker_invariant(self, cluster):
        """The headline: the whole trajectory is bit-identical for any
        partitioning of the force work."""
        digests = {
            simulate(cluster, steps=4, workers=w).state_digest()
            for w in (1, 2, 5, 20)
        }
        assert len(digests) == 1

    def test_float_trajectory_worker_dependent(self, cluster):
        digests = {
            simulate(cluster, steps=4, workers=w, exact=False).state_digest()
            for w in (1, 2, 5, 20)
        }
        assert len(digests) > 1

    def test_exact_and_float_agree_closely(self, cluster):
        exact = simulate(cluster, steps=3, workers=4)
        approx = simulate(cluster, steps=3, workers=4, exact=False)
        assert np.allclose(exact.positions, approx.positions, atol=1e-10)

    def test_deterministic_across_runs(self, cluster):
        a = simulate(cluster, steps=3, workers=3)
        b = simulate(cluster, steps=3, workers=3)
        assert a.state_digest() == b.state_digest()


class TestPhysics:
    def test_momentum_conserved_exactly_in_hp_forces(self, cluster):
        """Newton's third law through exact accumulation: the net
        acceleration weighted by mass is ~0 at force level."""
        from repro.apps.nbody import _accelerations

        params = force_params_for(cluster)
        acc = _accelerations(cluster, workers=3, params=params)
        net = (cluster.masses[:, None] * acc).sum(axis=0)
        # Pair terms are not bit-antisymmetric (inv_r3 is, the masses
        # multiply differently), so tiny residue remains — but bounded.
        assert np.abs(net).max() < 1e-9

    def test_zero_steps_is_identity(self, cluster):
        rec = simulate(cluster, steps=0)
        assert np.array_equal(rec.positions, cluster.positions)

    def test_negative_steps_rejected(self, cluster):
        with pytest.raises(ValueError):
            simulate(cluster, steps=-1)

    def test_particles_actually_move(self, cluster):
        rec = simulate(cluster, steps=5, dt=1e-2)
        assert not np.array_equal(rec.positions, cluster.positions)

    def test_force_params_cover_scale(self, cluster):
        params = force_params_for(cluster)
        from repro.apps.nbody import _pair_contributions

        contributions = _pair_contributions(cluster, 0, len(cluster.masses))
        assert params.in_range(float(np.abs(contributions).sum()))


class TestEnergies:
    def test_kinetic_nonnegative_and_exact(self, cluster):
        from fractions import Fraction

        from repro.apps.nbody import kinetic_energy

        ke = kinetic_energy(cluster)
        assert ke >= 0.0
        expected = Fraction(0)
        for m, v in zip(cluster.masses, cluster.velocities):
            for d in range(3):
                expected += (
                    Fraction(float(m)) * Fraction(float(v[d])) ** 2
                )
        expected /= 2
        assert ke == expected.numerator / expected.denominator

    def test_kinetic_order_invariant(self, cluster):
        from repro.apps.nbody import kinetic_energy

        perm = default_rng(9).permutation(len(cluster.masses))
        shuffled = NBodySystem(
            cluster.positions[perm],
            cluster.velocities[perm],
            cluster.masses[perm],
        )
        assert kinetic_energy(shuffled) == kinetic_energy(cluster)

    def test_potential_negative_and_order_invariant(self, cluster):
        from repro.apps.nbody import potential_energy

        pe = potential_energy(cluster)
        assert pe < 0.0
        perm = default_rng(10).permutation(len(cluster.masses))
        shuffled = NBodySystem(
            cluster.positions[perm],
            cluster.velocities[perm],
            cluster.masses[perm],
        )
        assert potential_energy(shuffled) == pe

    def test_total_energy_drift_bounded(self, cluster):
        """Velocity Verlet on a softened system: energy drifts by a
        bounded, small fraction over a short run."""
        from repro.apps.nbody import total_energy

        e0 = total_energy(cluster)
        rec = simulate(cluster, steps=10, dt=1e-4, workers=2)
        after = NBodySystem(rec.positions, rec.velocities, cluster.masses)
        e1 = total_energy(after)
        assert abs(e1 - e0) < 0.01 * abs(e0)
