"""Tests for the reproducible CG solver."""

from __future__ import annotations

import numpy as np
import pytest

from repro.apps.solver import CGResult, float_cg, reproducible_cg
from repro.core.matvec import CSRMatrix
from repro.util.rng import default_rng


def spd_matrix(n: int, rng: np.random.Generator, density: float = 0.4):
    """A random sparse symmetric positive-definite matrix."""
    a = rng.uniform(-1.0, 1.0, (n, n))
    a[rng.uniform(size=(n, n)) > density] = 0.0
    dense = a @ a.T + n * np.eye(n)
    return dense, CSRMatrix.from_dense(dense)


class TestReproducibleCG:
    @pytest.fixture(scope="class")
    def problem(self):
        rng = default_rng(101)
        dense, csr = spd_matrix(24, rng)
        b = rng.uniform(-1.0, 1.0, 24)
        return dense, csr, b

    def test_solves(self, problem):
        dense, csr, b = problem
        result = reproducible_cg(csr, b, tol=1e-12)
        assert result.converged
        assert np.allclose(dense @ result.x, b, atol=1e-8)

    def test_residuals_decrease_overall(self, problem):
        _, csr, b = problem
        result = reproducible_cg(csr, b, tol=1e-12)
        assert result.residual_norms[-1] < result.residual_norms[0] * 1e-10

    def test_storage_order_invariant(self, problem):
        """The headline: permuting stored nonzeros changes nothing —
        not one bit of any iterate or the iteration count."""
        _, csr, b = problem
        baseline = reproducible_cg(csr, b, tol=1e-12)
        for seed in (1, 2):
            shuffled = csr.permuted_nonzeros(default_rng(seed))
            other = reproducible_cg(shuffled, b, tol=1e-12)
            assert other.state_digest() == baseline.state_digest()
            assert other.iterations == baseline.iterations

    def test_float_cg_storage_order_sensitive(self, problem):
        """The contrast: the conventional solver's path depends on the
        nonzero storage order."""
        _, csr, b = problem
        baseline = float_cg(csr, b, tol=1e-12)
        digests = {baseline.state_digest()}
        for seed in range(6):
            shuffled = csr.permuted_nonzeros(default_rng(seed))
            digests.add(float_cg(shuffled, b, tol=1e-12).state_digest())
        assert len(digests) > 1

    def test_both_solvers_agree_numerically(self, problem):
        dense, csr, b = problem
        exact = reproducible_cg(csr, b, tol=1e-12)
        conventional = float_cg(csr, b, tol=1e-12)
        assert np.allclose(exact.x, conventional.x, atol=1e-6)

    def test_rejects_non_spd_direction(self):
        dense = np.array([[1.0, 0.0], [0.0, -1.0]])  # indefinite
        csr = CSRMatrix.from_dense(dense)
        with pytest.raises(ValueError):
            reproducible_cg(csr, np.array([0.0, 1.0]))

    def test_shape_validation(self):
        csr = CSRMatrix.from_dense(np.eye(3))
        with pytest.raises(ValueError):
            reproducible_cg(csr, np.zeros(4))

    def test_zero_rhs_converges_immediately(self):
        csr = CSRMatrix.from_dense(np.eye(4))
        result = reproducible_cg(csr, np.zeros(4))
        assert result.converged and result.iterations == 0

    def test_identity_solves_in_one_iteration(self):
        csr = CSRMatrix.from_dense(np.eye(5))
        b = np.arange(1.0, 6.0)
        result = reproducible_cg(csr, b, tol=1e-14)
        assert result.iterations == 1
        assert np.array_equal(result.x, b)
