"""Tests for the exact-moments statistics application."""

from __future__ import annotations

import math
from fractions import Fraction

import numpy as np
import pytest

from repro.apps.statistics import ExactMoments, exact_mean, exact_variance


class TestExactMoments:
    def test_known_values(self):
        m = ExactMoments()
        m.update(np.array([1.0, 2.0, 3.0, 4.0]))
        assert m.mean() == 2.5
        assert m.variance() == 1.25
        assert m.variance(ddof=1) == pytest.approx(5.0 / 3.0)

    def test_mean_correctly_rounded(self, rng):
        xs = rng.uniform(-1.0, 1.0, 999)
        exact = sum((Fraction(float(x)) for x in xs), Fraction(0)) / 999
        assert exact_mean(xs) == exact.numerator / exact.denominator

    def test_variance_exact_moments(self, rng):
        xs = rng.uniform(-1.0, 1.0, 500)
        sx = sum((Fraction(float(x)) for x in xs), Fraction(0))
        sxx = sum(
            (Fraction(float(x)) * Fraction(float(x)) for x in xs), Fraction(0)
        )
        expected = (sxx - sx * sx / 500) / 500
        assert exact_variance(xs) == (
            expected.numerator / expected.denominator
        )

    def test_cancellation_catastrophe_avoided(self):
        """The one-pass formula's classic failure: huge offset, tiny
        spread.  Naive E[x^2]-E[x]^2 in float64 returns garbage (even a
        negative); exact moments return the true variance."""
        base = 1e9
        xs = np.array([base - 1.0, base, base + 1.0])
        naive = float(np.mean(xs**2) - np.mean(xs) ** 2)
        exact = exact_variance(xs)
        assert exact == pytest.approx(2.0 / 3.0, rel=1e-12)
        assert abs(naive - 2.0 / 3.0) > 1e-3  # float one-pass is way off

    def test_order_and_shard_invariant(self, rng):
        xs = rng.uniform(-1.0, 1.0, 1000)
        whole = ExactMoments()
        whole.update(xs)
        sharded = ExactMoments()
        for s in range(7):
            shard = ExactMoments()
            shard.update(xs[s::7])
            sharded.merge(shard)
        assert sharded.sum_fraction() == whole.sum_fraction()
        assert sharded.mean() == whole.mean()
        assert sharded.variance() == whole.variance()

    def test_constant_data_zero_variance(self):
        xs = np.full(100, 3.7)
        assert exact_variance(xs) == 0.0

    def test_stdev(self):
        m = ExactMoments()
        m.update(np.array([0.0, 2.0]))
        assert m.stdev() == 1.0

    def test_empty_guards(self):
        m = ExactMoments()
        with pytest.raises(ValueError):
            m.mean()
        m.update(np.array([1.0]))
        with pytest.raises(ValueError):
            m.variance(ddof=1)

    def test_rejects_2d(self):
        with pytest.raises(ValueError):
            ExactMoments().update(np.zeros((2, 2)))


class TestHigherMoments:
    def test_symmetric_data_zero_skew(self):
        m = ExactMoments()
        m.update(np.array([-2.0, -1.0, 1.0, 2.0]))
        assert m.skewness() == 0.0

    def test_skew_sign(self):
        right = ExactMoments()
        right.update(np.array([0.0, 0.0, 0.0, 10.0]))
        assert right.skewness() > 0
        left = ExactMoments()
        left.update(np.array([0.0, 0.0, 0.0, -10.0]))
        assert left.skewness() == -right.skewness()

    def test_matches_scipy_formulas(self, rng):
        from scipy import stats as sps

        xs = rng.uniform(-1.0, 1.0, 500)
        m = ExactMoments()
        m.update(xs)
        assert m.skewness() == pytest.approx(float(sps.skew(xs)), abs=1e-10)
        assert m.kurtosis() == pytest.approx(
            float(sps.kurtosis(xs)), abs=1e-10
        )

    def test_offset_robustness(self, rng):
        """The float formulas fall apart with a 1e8 offset; the exact
        central moments do not: shifting data leaves skew unchanged."""
        base = rng.uniform(-1.0, 1.0, 300)
        m0 = ExactMoments()
        m0.update(base)
        m1 = ExactMoments()
        m1.update(base + 1e8)
        assert m1.skewness() == pytest.approx(m0.skewness(), abs=1e-6)
        assert m1.kurtosis() == pytest.approx(m0.kurtosis(), abs=1e-6)

    def test_kurtosis_normal_reference(self):
        m = ExactMoments()
        m.update(np.array([-1.0, 1.0, -1.0, 1.0]))
        assert m.kurtosis(excess=False) == 1.0  # two-point distribution

    def test_zero_variance_guards(self):
        m = ExactMoments()
        m.update(np.full(5, 2.0))
        with pytest.raises(ValueError):
            m.skewness()
        with pytest.raises(ValueError):
            m.kurtosis()

    def test_merge_preserves_higher_moments(self, rng):
        xs = rng.uniform(-1.0, 1.0, 400)
        whole = ExactMoments()
        whole.update(xs)
        merged = ExactMoments()
        for s in range(5):
            shard = ExactMoments()
            shard.update(xs[s::5])
            merged.merge(shard)
        assert merged.skewness() == whole.skewness()
        assert merged.kurtosis() == whole.kurtosis()

    def test_stdev_correctly_rounded(self, rng):
        from repro.core.norms import sqrt_correctly_rounded

        xs = rng.uniform(-1.0, 1.0, 100)
        m = ExactMoments()
        m.update(xs)
        assert m.stdev() == sqrt_correctly_rounded(m._variance_fraction(0))
