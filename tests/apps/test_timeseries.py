"""Tests for exact prefix/window sums and moving averages."""

from __future__ import annotations

import math
from fractions import Fraction

import numpy as np
import pytest

from repro.apps.timeseries import ExactPrefixSums, moving_average
from repro.core.params import HPParams


class TestExactPrefixSums:
    def test_window_is_exact_prefix_difference(self, rng):
        xs = rng.uniform(-1.0, 1.0, 500)
        ps = ExactPrefixSums(HPParams(3, 2))
        ps.extend(xs)
        for i, j in [(0, 500), (0, 1), (123, 456), (10, 10)]:
            assert ps.window_sum(i, j) == math.fsum(xs[i:j]), (i, j)

    def test_float_prefix_subtraction_fails_where_exact_does_not(self, rng):
        """The bug this class exists to fix: float prefix differences
        are not window sums."""
        xs = rng.uniform(-1.0, 1.0, 4000)
        float_prefix = np.concatenate([[0.0], np.cumsum(xs)])
        ps = ExactPrefixSums(HPParams(3, 2))
        ps.extend(xs)
        mismatches = 0
        for i, j in [(100, 110), (2000, 2010), (3900, 3910)]:
            float_window = float(float_prefix[j] - float_prefix[i])
            exact_window = ps.window_sum(i, j)
            assert exact_window == math.fsum(xs[i:j])
            if float_window != exact_window:
                mismatches += 1
        assert mismatches > 0

    def test_chunking_invariant(self, rng):
        xs = rng.uniform(-1.0, 1.0, 300)
        a = ExactPrefixSums(HPParams(3, 2))
        a.extend(xs)
        b = ExactPrefixSums(HPParams(3, 2))
        for chunk in np.array_split(xs, 7):
            b.extend(chunk)
        assert len(a) == len(b) == 300
        assert a.prefix_words(300) == b.prefix_words(300)
        assert a.window_words(50, 200) == b.window_words(50, 200)

    def test_auto_params(self, rng):
        ps = ExactPrefixSums()
        ps.extend(rng.uniform(-1.0, 1.0, 100))
        assert ps.params is not None
        assert ps.total() == ps.window_sum(0, 100)

    def test_bounds(self):
        ps = ExactPrefixSums(HPParams(2, 1))
        ps.append(1.0)
        with pytest.raises(IndexError):
            ps.prefix_words(2)
        with pytest.raises(ValueError):
            ps.window_words(1, 0)

    def test_empty(self):
        ps = ExactPrefixSums()
        assert len(ps) == 0
        assert ps.window_sum(0, 0) == 0.0


class TestMovingAverage:
    def test_each_output_correctly_rounded(self, rng):
        xs = rng.uniform(-1.0, 1.0, 200)
        window = 16
        out = moving_average(xs, window, HPParams(3, 2))
        assert len(out) == 200 - 16 + 1
        for i in (0, 57, len(out) - 1):
            exact = sum(
                (Fraction(float(v)) for v in xs[i:i + window]), Fraction(0)
            ) / window
            assert out[i] == exact.numerator / exact.denominator

    def test_window_one_is_identity(self, rng):
        xs = rng.uniform(-1.0, 1.0, 20)
        assert np.array_equal(moving_average(xs, 1, HPParams(3, 2)), xs)

    def test_full_window_is_mean(self, rng):
        xs = rng.uniform(-1.0, 1.0, 64)
        out = moving_average(xs, 64, HPParams(3, 2))
        exact = sum((Fraction(float(v)) for v in xs), Fraction(0)) / 64
        assert out.tolist() == [exact.numerator / exact.denominator]

    def test_window_validation(self, rng):
        with pytest.raises(ValueError):
            moving_average(rng.uniform(size=4), 0)
        with pytest.raises(ValueError):
            moving_average(rng.uniform(size=4), 5)
