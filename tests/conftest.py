"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.params import HPParams
from repro.hallberg.params import HallbergParams


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


@pytest.fixture(params=[(2, 1), (3, 2), (6, 3), (8, 4)], ids=lambda p: f"N{p[0]}k{p[1]}")
def hp_params(request) -> HPParams:
    """The paper's Table 1 configurations."""
    return HPParams(*request.param)


@pytest.fixture(params=[(10, 52), (12, 43), (14, 37), (10, 38)],
                ids=lambda p: f"N{p[0]}M{p[1]}")
def hb_params(request) -> HallbergParams:
    """The paper's Table 2 configurations plus the Figs. 5-8 one."""
    return HallbergParams(*request.param)
