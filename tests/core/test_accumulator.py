"""Unit tests for HPAccumulator (per-PE running sums)."""

from __future__ import annotations

import math

import pytest

from repro.core.accumulator import HPAccumulator
from repro.core.hpnum import HPNumber
from repro.core.params import HPParams
from repro.errors import AdditionOverflowError, MixedParameterError

P = HPParams(3, 2)


class TestBasics:
    def test_empty_is_zero(self):
        acc = HPAccumulator(P)
        assert acc.to_double() == 0.0
        assert acc.count == 0

    def test_accumulates_exactly(self):
        acc = HPAccumulator(P)
        acc.extend([0.1] * 10)
        assert acc.to_double() == math.fsum([0.1] * 10)
        assert acc.count == 10

    def test_cancellation_exact(self):
        acc = HPAccumulator(P)
        acc.extend([1e10, 1e-10, -1e10, -1e-10])
        assert acc.to_double() == 0.0

    def test_add_hp_value(self):
        acc = HPAccumulator(P)
        acc.add_hp(HPNumber.from_double(2.5, P))
        assert acc.to_double() == 2.5

    def test_add_hp_rejects_mixed_params(self):
        acc = HPAccumulator(P)
        with pytest.raises(MixedParameterError):
            acc.add_hp(HPNumber.from_double(1.0, HPParams(2, 1)))

    def test_add_words_rejects_mixed_width(self):
        acc = HPAccumulator(P)
        with pytest.raises(MixedParameterError):
            acc.add_words((0, 0))

    def test_listing1_path_equivalent(self):
        a = HPAccumulator(P)
        b = HPAccumulator(P)
        for x in (0.5, -0.25, 3.75, -1e-9):
            a.add(x)
            b.add_listing1(x)
        assert a.words == b.words

    def test_reset(self):
        acc = HPAccumulator(P)
        acc.add(1.0)
        acc.reset()
        assert acc.to_double() == 0.0 and acc.count == 0

    def test_snapshot_is_hpnumber(self):
        acc = HPAccumulator(P)
        acc.add(0.75)
        snap = acc.snapshot()
        assert isinstance(snap, HPNumber)
        acc.add(1.0)  # mutating the accumulator leaves the snapshot alone
        assert snap.to_double() == 0.75


class TestMerge:
    def test_merge_equals_concatenation(self, rng):
        data = rng.uniform(-1.0, 1.0, 200)
        whole = HPAccumulator(P)
        whole.extend(data.tolist())
        left, right = HPAccumulator(P), HPAccumulator(P)
        left.extend(data[:77].tolist())
        right.extend(data[77:].tolist())
        left.merge(right)
        assert left.words == whole.words
        assert left.count == whole.count

    def test_merge_rejects_mixed_params(self):
        acc = HPAccumulator(P)
        with pytest.raises(MixedParameterError):
            acc.merge(HPAccumulator(HPParams(2, 1)))


class TestOverflow:
    def test_detects_overflow(self):
        p = HPParams(2, 1)
        acc = HPAccumulator(p)
        acc.add(2.0**62)
        with pytest.raises(AdditionOverflowError):
            acc.add(2.0**62)

    def test_unchecked_mode_wraps(self):
        p = HPParams(2, 1)
        acc = HPAccumulator(p, check_overflow=False)
        acc.add(2.0**62)
        acc.add(2.0**62)  # silently wraps to the negative range
        assert acc.to_double() == -(2.0**63)

    def test_transient_wrap_recovers_when_unchecked(self):
        """Modular arithmetic: overflow that cancels later still yields
        the right final words (an order where it never surfaces exists)."""
        p = HPParams(2, 1)
        acc = HPAccumulator(p, check_overflow=False)
        acc.add(2.0**62)
        acc.add(2.0**62)   # wrapped here
        acc.add(-(2.0**62))
        assert acc.to_double() == 2.0**62
