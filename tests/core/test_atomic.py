"""Unit tests for the CAS-only atomic adder (paper Sec. III.B.2)."""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.core.accumulator import HPAccumulator
from repro.core.atomic import AtomicHPCell, AtomicWord
from repro.core.params import HPParams
from repro.errors import MixedParameterError

P = HPParams(3, 2)
MASK = (1 << 64) - 1


class TestAtomicWord:
    def test_cas_success(self):
        w = AtomicWord(5)
        assert w.cas(5, 9)
        assert w.load() == 9

    def test_cas_failure_leaves_value(self):
        w = AtomicWord(5)
        assert not w.cas(4, 9)
        assert w.load() == 5
        assert w.cas_failures == 1

    def test_atomic_add_returns_old_and_carry(self):
        w = AtomicWord(MASK)
        old, carry = w.atomic_add(1)
        assert old == MASK and carry == 1 and w.load() == 0

    def test_atomic_add_no_carry(self):
        w = AtomicWord(10)
        old, carry = w.atomic_add(5)
        assert (old, carry) == (10, 0) and w.load() == 15

    def test_wraps_modulo(self):
        w = AtomicWord(MASK)
        w.atomic_add(MASK)
        assert w.load() == MASK - 1


class TestAtomicHPCell:
    def test_matches_accumulator(self, rng):
        cell = AtomicHPCell(P)
        acc = HPAccumulator(P)
        for x in rng.uniform(-1.0, 1.0, 500):
            cell.atomic_add_double(float(x))
            acc.add(float(x))
        assert cell.snapshot_words() == acc.words

    def test_carry_through_all_ones_word(self):
        """The regression that once lost a carry: adding values whose
        high words are all ones (negative numbers) must ripple the carry
        through, not drop it when an addend wraps to zero."""
        cell = AtomicHPCell(P)
        cell.atomic_add_double(-(2.0**-128))  # words all 0xFF..F
        cell.atomic_add_double(2.0**-128)
        assert cell.to_double() == 0.0

    def test_carry_rides_through_wrapped_addend(self):
        """Two negatives: the second add's high words are 0xFF..F and the
        incoming carry wraps the addend to zero — the carry must ride
        through to the next word untouched."""
        cell = AtomicHPCell(P)
        cell.atomic_add_double(-(2.0**-128))
        cell.atomic_add_double(-(2.0**-128))
        assert cell.to_double() == -(2.0**-127)

    def test_width_check(self):
        cell = AtomicHPCell(P)
        with pytest.raises(MixedParameterError):
            cell.atomic_add_words((1, 2))

    def test_counters(self):
        cell = AtomicHPCell(P)
        cell.atomic_add_double(1.5)
        assert cell.total_cas_attempts >= 1
        assert cell.total_cas_failures == 0  # single-threaded: no retries

    def test_real_threads(self, rng):
        """Genuine concurrency: many threads fold values into one cell;
        the result must equal the sequential sum exactly."""
        values = rng.uniform(-1.0, 1.0, 400)
        cell = AtomicHPCell(P)

        def worker(chunk: np.ndarray) -> None:
            for x in chunk:
                cell.atomic_add_double(float(x))

        threads = [
            threading.Thread(target=worker, args=(values[i::8],))
            for i in range(8)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

        acc = HPAccumulator(P)
        acc.extend(values.tolist())
        assert cell.snapshot_words() == acc.words
