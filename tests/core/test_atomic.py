"""Unit tests for the CAS-only atomic adder (paper Sec. III.B.2)."""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.core.accumulator import HPAccumulator
from repro.core.atomic import AtomicHPCell, AtomicWord
from repro.core.params import HPParams
from repro.errors import MixedParameterError

P = HPParams(3, 2)
MASK = (1 << 64) - 1


class TestAtomicWord:
    def test_cas_success(self):
        w = AtomicWord(5)
        assert w.cas(5, 9)
        assert w.load() == 9

    def test_cas_failure_leaves_value(self):
        w = AtomicWord(5)
        assert not w.cas(4, 9)
        assert w.load() == 5
        assert w.cas_failures == 1

    def test_atomic_add_returns_old_and_carry(self):
        w = AtomicWord(MASK)
        old, carry = w.atomic_add(1)
        assert old == MASK and carry == 1 and w.load() == 0

    def test_atomic_add_no_carry(self):
        w = AtomicWord(10)
        old, carry = w.atomic_add(5)
        assert (old, carry) == (10, 0) and w.load() == 15

    def test_wraps_modulo(self):
        w = AtomicWord(MASK)
        w.atomic_add(MASK)
        assert w.load() == MASK - 1


class TestAtomicHPCell:
    def test_matches_accumulator(self, rng):
        cell = AtomicHPCell(P)
        acc = HPAccumulator(P)
        for x in rng.uniform(-1.0, 1.0, 500):
            cell.atomic_add_double(float(x))
            acc.add(float(x))
        assert cell.snapshot_words() == acc.words

    def test_carry_through_all_ones_word(self):
        """The regression that once lost a carry: adding values whose
        high words are all ones (negative numbers) must ripple the carry
        through, not drop it when an addend wraps to zero."""
        cell = AtomicHPCell(P)
        cell.atomic_add_double(-(2.0**-128))  # words all 0xFF..F
        cell.atomic_add_double(2.0**-128)
        assert cell.to_double() == 0.0

    def test_carry_rides_through_wrapped_addend(self):
        """Two negatives: the second add's high words are 0xFF..F and the
        incoming carry wraps the addend to zero — the carry must ride
        through to the next word untouched."""
        cell = AtomicHPCell(P)
        cell.atomic_add_double(-(2.0**-128))
        cell.atomic_add_double(-(2.0**-128))
        assert cell.to_double() == -(2.0**-127)

    def test_width_check(self):
        cell = AtomicHPCell(P)
        with pytest.raises(MixedParameterError):
            cell.atomic_add_words((1, 2))

    def test_counters(self):
        cell = AtomicHPCell(P)
        cell.atomic_add_double(1.5)
        assert cell.total_cas_attempts >= 1
        assert cell.total_cas_failures == 0  # single-threaded: no retries

    def test_real_threads(self, rng):
        """Genuine concurrency: many threads fold values into one cell;
        the result must equal the sequential sum exactly."""
        values = rng.uniform(-1.0, 1.0, 400)
        cell = AtomicHPCell(P)

        def worker(chunk: np.ndarray) -> None:
            for x in chunk:
                cell.atomic_add_double(float(x))

        threads = [
            threading.Thread(target=worker, args=(values[i::8],))
            for i in range(8)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

        acc = HPAccumulator(P)
        acc.extend(values.tolist())
        assert cell.snapshot_words() == acc.words


class TestCounterHygiene:
    """The benchmark-trial bugfix: counter access is race-free and
    resettable, so repeated trials don't accumulate stale CAS stats."""

    def test_word_reset_counters(self):
        w = AtomicWord(0)
        w.atomic_add(5)
        assert not w.cas(99, 1)  # one failure
        assert w.counters() == (2, 1)
        w.reset_counters()
        assert w.counters() == (0, 0)
        assert w.load() == 5  # value untouched

    def test_cell_reset_counters(self):
        cell = AtomicHPCell(P)
        cell.atomic_add_double(1.5)
        assert cell.total_cas_attempts >= 1
        before = cell.to_double()
        cell.reset_counters()
        assert cell.total_cas_attempts == 0
        assert cell.total_cas_failures == 0
        assert cell.to_double() == before

    def test_cas_stats_snapshot_consistent(self):
        cell = AtomicHPCell(P)
        cell.atomic_add_double(0.75)
        attempts, failures = cell.cas_stats()
        assert attempts == cell.total_cas_attempts
        assert failures <= attempts

    def test_repeated_trials_do_not_accumulate(self, rng):
        cell = AtomicHPCell(P)
        per_trial = []
        for _ in range(3):
            cell.reset_counters()
            for x in rng.uniform(-1.0, 1.0, 50):
                cell.atomic_add_double(float(x))
            per_trial.append(cell.total_cas_attempts)
        # Every trial starts from zero: counts stay in one trial's band
        # instead of tripling across the three runs.
        assert max(per_trial) < 2 * min(per_trial)

    def test_counters_race_free_under_threads(self, rng):
        """Concurrent reads of the totals while adders are in flight must
        never observe failures exceeding attempts (torn aggregates)."""
        cell = AtomicHPCell(P)
        values = rng.uniform(-1.0, 1.0, 300)
        stop = threading.Event()
        torn = []

        def reader():
            while not stop.is_set():
                attempts, failures = cell.cas_stats()
                if failures > attempts:
                    torn.append((attempts, failures))

        def adder(chunk):
            for x in chunk:
                cell.atomic_add_double(float(x))

        watcher = threading.Thread(target=reader)
        watcher.start()
        workers = [
            threading.Thread(target=adder, args=(values[i::4],))
            for i in range(4)
        ]
        for t in workers:
            t.start()
        for t in workers:
            t.join()
        stop.set()
        watcher.join()
        assert torn == []
