"""Boundary-torture tests: conversions at every edge of every format.

Systematic sweep of the IEEE and fixed-point edges for all Table 1
configurations: largest/smallest representable values, the asymmetric
two's-complement boundary, subnormal inputs, the resolution quantum, and
the double-precision extremes — each round-tripped or rejected exactly
as specified.
"""

from __future__ import annotations

import math
import sys

import pytest

from repro.core.params import HPParams, TABLE1_CONFIGS
from repro.core.scalar import (
    add_words,
    from_double,
    from_int_scaled,
    negate_words,
    to_double,
    to_int_scaled,
)
from repro.errors import ConversionOverflowError


@pytest.fixture(params=TABLE1_CONFIGS, ids=lambda c: f"N{c[0]}k{c[1]}")
def params(request) -> HPParams:
    return HPParams(*request.param)


class TestRangeEdges:
    def test_largest_power_below_limit_roundtrips(self, params):
        x = 2.0 ** (params.whole_bits - 1)
        assert to_double(from_double(x, params), params) == x
        assert to_double(from_double(-x, params), params) == -x

    def test_limit_rejected_positive(self, params):
        with pytest.raises(ConversionOverflowError):
            from_double(2.0**params.whole_bits, params)

    def test_negative_limit_admitted(self, params):
        """Two's complement is asymmetric: -2**whole_bits is min_int."""
        x = -(2.0**params.whole_bits)
        words = from_double(x, params)
        assert to_int_scaled(words) == params.min_int
        assert to_double(words, params) == x

    def test_one_below_negative_limit_rejected(self, params):
        x = -(2.0**params.whole_bits) * (1 + 2.0**-52)
        with pytest.raises(ConversionOverflowError):
            from_double(x, params)

    def test_max_int_plus_one_wraps_via_addition(self, params):
        top = from_int_scaled(params.max_int, params)
        one = from_int_scaled(1, params)
        wrapped = add_words(top, one)
        assert to_int_scaled(wrapped) == params.min_int

    def test_most_negative_negation_is_fixed_point(self, params):
        """-min_int is unrepresentable; two's complement maps it to
        itself, exactly as in hardware."""
        bottom = from_int_scaled(params.min_int, params)
        assert negate_words(bottom) == bottom


class TestResolutionEdges:
    def test_quantum_roundtrips(self, params):
        q = params.smallest
        if q == 0.0:
            pytest.skip("resolution below double subnormal range")
        assert to_double(from_double(q, params), params) == q
        assert to_double(from_double(-q, params), params) == -q

    def test_half_quantum_truncates_to_zero(self, params):
        if params.smallest == 0.0 or params.frac_bits == 0:
            pytest.skip("no sub-quantum doubles for this format")
        x = params.smallest / 2
        if x == 0.0:
            pytest.skip("half-quantum underflows double")
        assert from_double(x, params) == (0,) * params.n
        assert from_double(-x, params) == (0,) * params.n

    def test_quantum_adjacent_value(self, params):
        if params.frac_bits < 53 or params.frac_bits > 1000:
            pytest.skip("needs quantum within double range")
        x = params.smallest * 3  # lowest bits: ...11
        assert to_double(from_double(x, params), params) == x


class TestDoubleEdges:
    def test_max_double(self, params):
        x = sys.float_info.max
        if params.in_range(x):
            assert to_double(from_double(x, params), params) == x
        else:
            with pytest.raises(ConversionOverflowError):
                from_double(x, params)

    def test_min_normal_double(self, params):
        x = sys.float_info.min  # 2**-1022
        words = from_double(x, params)
        # Representable only if the fraction reaches that deep.
        if params.frac_bits >= 1022 + 52:
            assert to_double(words, params) == x
        else:
            assert abs(to_double(words, params)) <= x

    def test_smallest_subnormal(self, params):
        words = from_double(5e-324, params)
        assert to_double(words, params) in (0.0, 5e-324)

    def test_signed_zero_collapses(self, params):
        assert from_double(-0.0, params) == from_double(0.0, params)

    @pytest.mark.parametrize("bad", [math.inf, -math.inf, math.nan])
    def test_nonfinite_rejected(self, params, bad):
        with pytest.raises(ConversionOverflowError):
            from_double(bad, params)

    def test_one_ulp_below_one(self, params):
        x = math.nextafter(1.0, 0.0)  # 53 significant bits
        if params.frac_bits >= 53:
            assert to_double(from_double(x, params), params) == x

    def test_all_mantissa_bits_set(self, params):
        x = float((1 << 53) - 1)  # 53 one-bits, integer
        if params.whole_bits >= 53:
            assert to_double(from_double(x, params), params) == x
