"""A-priori error-bound contracts (:mod:`repro.core.bounds`).

The planner's eligibility math rests on three properties pinned here:
coefficients are nonnegative and nondecreasing in ``n`` (so a full-batch
coefficient upper-bounds any prefix — the monitor's capped-validation
argument), exact engines have coefficient exactly zero (so ``target=0``
provably selects them), and the deterministic/probabilistic forms order
the way Hallman & Ipsen 2021 says they do.
"""

from __future__ import annotations

import math

import pytest

from repro.core import bounds
from repro.core import compensated


class TestGamma:
    def test_gamma_small_k(self):
        u = bounds.UNIT_ROUNDOFF
        assert bounds.gamma(0) == 0.0
        assert bounds.gamma(1) == pytest.approx(u, rel=1e-12)
        assert bounds.gamma(2) == pytest.approx(2 * u, rel=1e-9)

    def test_gamma_monotone(self):
        vals = [bounds.gamma(k) for k in (1, 2, 10, 1000, 10**6)]
        assert vals == sorted(vals)
        assert all(v > 0 for v in vals)

    def test_gamma_rejects_saturation(self):
        # ku >= 1 would make the denominator nonpositive.
        with pytest.raises(ValueError):
            bounds.gamma(2**54)


class TestCoefficient:
    def test_exact_is_zero_for_all_n(self):
        for n in (0, 1, 2, 10**6, 2**31):
            assert bounds.coefficient("exact", n) == 0.0

    def test_trivial_n_is_zero(self):
        # Zero or one summand incurs no rounding at all, in any model.
        for model in bounds.supported_models():
            assert bounds.coefficient(model, 0) == 0.0
            assert bounds.coefficient(model, 1) == 0.0

    @pytest.mark.parametrize("model", ["recursive", "pairwise", "compensated"])
    def test_nondecreasing_in_n(self, model):
        ns = [2, 3, 10, 100, 10**4, 10**6, 2**25]
        coeffs = [bounds.coefficient(model, n) for n in ns]
        assert coeffs == sorted(coeffs)
        assert coeffs[0] > 0.0

    def test_pairwise_beats_recursive_at_scale(self):
        n = 4 * 1024 * 1024
        assert bounds.coefficient("pairwise", n) < bounds.coefficient(
            "recursive", n
        )

    def test_compensated_beats_pairwise_at_scale(self):
        n = 4 * 1024 * 1024
        assert bounds.coefficient("compensated", n) < bounds.coefficient(
            "pairwise", n
        )

    def test_compensated_is_order_u_at_4m(self):
        # The acceptance scenario: at n = 4M the compensated coefficient
        # must clear a 1e-12 mass-relative target with huge margin.
        coeff = bounds.coefficient("compensated", 4 * 1024 * 1024)
        assert coeff < 1e-14
        assert coeff > bounds.UNIT_ROUNDOFF  # but it is not zero

    @pytest.mark.parametrize(
        "model,n",
        [
            # Concentration pays once lambda(delta) < sqrt(depth):
            # immediately for the recursive depth n-1, only at extreme n
            # for the logarithmic pairwise depth.
            ("recursive", 1 << 24),
            ("pairwise", 1 << 52),
        ],
    )
    def test_probabilistic_below_deterministic_at_depth(self, model, n):
        det = bounds.coefficient(model, n, mode="deterministic")
        prob = bounds.coefficient(
            model, n, mode="probabilistic", failure_prob=1e-9
        )
        assert 0.0 < prob < det

    def test_unknown_model_and_mode(self):
        with pytest.raises(ValueError, match="unknown bound model"):
            bounds.coefficient("magic", 10)
        with pytest.raises(ValueError, match="mode"):
            bounds.coefficient("pairwise", 10, mode="hopeful")

    def test_failure_prob_validated(self):
        with pytest.raises(ValueError):
            bounds.coefficient(
                "pairwise", 10, mode="probabilistic", failure_prob=0.0
            )
        with pytest.raises(ValueError):
            bounds.coefficient(
                "pairwise", 10, mode="probabilistic", failure_prob=2.0
            )

    def test_negative_n_rejected(self):
        with pytest.raises(ValueError):
            bounds.coefficient("pairwise", -1)


class TestErrorBound:
    def test_absolute_scales_with_mass(self):
        b = bounds.bound("pairwise", 1000)
        assert b.absolute(0.0) == 0.0
        assert b.absolute(2.0) == pytest.approx(2 * b.coefficient)

    def test_absolute_from_max(self):
        b = bounds.bound("compensated", 1000)
        assert b.absolute_from_max(3.0) == pytest.approx(
            b.coefficient * bounds.mass_upper_bound(1000, 3.0)
        )

    def test_mass_upper_bound(self):
        assert bounds.mass_upper_bound(10, 2.5) == 25.0


class TestLaneSync:
    def test_compensated_model_covers_the_lane_width(self):
        # bounds sizes the compensated model's gamma term from the lane
        # width; the constant must track the kernel's actual LANES.
        assert bounds._COMP_LANES == compensated.LANES

    def test_lambda_factor(self):
        lam = bounds.lambda_factor(1e-9)
        assert lam == pytest.approx(math.sqrt(2 * math.log(2e9)), rel=1e-12)
