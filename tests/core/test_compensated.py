"""Compensated-tier contracts (:mod:`repro.core.compensated`).

Every kernel is pinned against ``math.fsum`` within its *advertised*
bound (:mod:`repro.core.bounds`) — on well-behaved data, ill-conditioned
cancellation, denormals, and million-element permutations — and the
partial-merge algebra is pinned as the substrate adapters rely on it:
identity, commutativity, partition consistency, and run-to-run
determinism for a fixed order.  Compiled and pure Neumaier backends are
both held to the same bound (they carry no bit-identity contract).
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core import bounds
from repro.core import compensated as comp
from repro.core import native

#: kernel name -> bound model the engine registry advertises for it
MODELS = {
    "pairwise": "pairwise",
    "kahan": "compensated",
    "neumaier": "compensated",
}


def assert_within_bound(kernel: str, xs: np.ndarray) -> comp.CompPartial:
    """The tier's whole contract in one helper: the finalized value is
    within ``c(n) * sum|x|`` of ``math.fsum``, and the partial's count
    and ``max_abs`` are exact."""
    partial = comp.KERNELS[kernel](np.asarray(xs, dtype=np.float64))
    value = comp.finalize_partial(partial)
    reference = math.fsum(xs)
    mass = math.fsum(np.abs(np.asarray(xs, dtype=np.float64)))
    limit = bounds.coefficient(MODELS[kernel], len(xs)) * mass
    assert abs(value - reference) <= limit, (
        f"{kernel}: |{value} - {reference}| > {limit}"
    )
    assert partial.count == len(xs)
    expected_max = float(np.max(np.abs(xs))) if len(xs) else 0.0
    assert partial.max_abs == expected_max
    return partial


KERNELS = sorted(comp.KERNELS)


class TestKernelAccuracy:
    @pytest.mark.parametrize("kernel", KERNELS)
    def test_random_batch(self, kernel):
        rng = np.random.default_rng(11)
        assert_within_bound(kernel, rng.standard_normal(100_003))

    @pytest.mark.parametrize("kernel", KERNELS)
    def test_wide_dynamic_range(self, kernel):
        rng = np.random.default_rng(12)
        xs = rng.standard_normal(40_001) * np.exp(
            rng.uniform(-40, 40, size=40_001)
        )
        assert_within_bound(kernel, xs)

    @pytest.mark.parametrize("kernel", KERNELS)
    def test_ill_conditioned_cancellation(self, kernel):
        # Massive cancellation: pairs (+v, -v) at magnitude 1e100 plus a
        # tiny residual signal.  The mass-relative bound is the honest
        # contract here — it stays huge while the true sum is tiny.
        rng = np.random.default_rng(13)
        big = rng.standard_normal(5_000) * 1e100
        xs = np.concatenate([big, -big, rng.standard_normal(101)])
        rng.shuffle(xs)
        assert_within_bound(kernel, xs)

    @pytest.mark.parametrize("kernel", KERNELS)
    def test_denormals(self, kernel):
        rng = np.random.default_rng(14)
        xs = rng.integers(-1000, 1000, size=9_001).astype(np.float64)
        xs *= 5e-324  # pure denormal magnitudes
        assert_within_bound(kernel, xs)

    @pytest.mark.parametrize("kernel", KERNELS)
    def test_million_element_permutations(self, kernel):
        rng = np.random.default_rng(15)
        xs = rng.standard_normal(1_000_000) * np.exp(
            rng.uniform(-20, 20, size=1_000_000)
        )
        for _ in range(3):
            assert_within_bound(kernel, xs)
            xs = rng.permutation(xs)

    @pytest.mark.parametrize("kernel", KERNELS)
    def test_empty_and_singleton_and_tail_only(self, kernel):
        assert comp.KERNELS[kernel](np.array([])) == comp.IDENTITY
        one = comp.KERNELS[kernel](np.array([3.5]))
        assert comp.finalize_partial(one) == 3.5
        # Fewer elements than one lane: the scalar-tail path alone.
        tail = np.linspace(-1.0, 1.0, comp.LANES - 1)
        assert_within_bound(kernel, tail)

    @pytest.mark.parametrize("kernel", KERNELS)
    def test_fixed_order_determinism(self, kernel):
        rng = np.random.default_rng(16)
        xs = rng.standard_normal(50_000)
        a = comp.KERNELS[kernel](xs)
        b = comp.KERNELS[kernel](xs.copy())
        assert a == b  # bit-identical partials, run to run

    def test_rejects_bad_shapes_and_chunks(self):
        with pytest.raises(ValueError, match="1-D"):
            comp.pairwise_partial(np.zeros((2, 2)))
        with pytest.raises(ValueError, match="chunk"):
            comp.pairwise_partial(np.zeros(4), chunk=0)

    def test_compensated_sum_unknown_kernel(self):
        with pytest.raises(ValueError, match="unknown compensated kernel"):
            comp.compensated_sum(np.zeros(4), kernel="magic")


class TestMergeAlgebra:
    def make(self, seed: int, n: int) -> np.ndarray:
        rng = np.random.default_rng(seed)
        return rng.standard_normal(n) * np.exp(rng.uniform(-30, 30, size=n))

    def test_identity_is_neutral(self):
        p = comp.neumaier_partial(self.make(21, 10_000))
        assert comp.merge_partials(p, comp.IDENTITY) == p
        assert comp.merge_partials(comp.IDENTITY, p) == p

    def test_commutative_bitwise(self):
        a = comp.neumaier_partial(self.make(22, 7_000))
        b = comp.neumaier_partial(self.make(23, 9_000))
        assert comp.merge_partials(a, b) == comp.merge_partials(b, a)

    @pytest.mark.parametrize("kernel", KERNELS)
    def test_partition_consistency_within_bound(self, kernel):
        # Splitting the batch across "PEs" and merging must stay inside
        # the advertised bound of the whole batch (the substrate
        # contract); bit-identity across partitions is NOT promised.
        xs = self.make(24, 120_007)
        reference = math.fsum(xs)
        mass = math.fsum(np.abs(xs))
        limit = bounds.coefficient(MODELS[kernel], len(xs)) * mass
        for pieces in (2, 3, 8):
            parts = [
                comp.KERNELS[kernel](piece)
                for piece in np.array_split(xs, pieces)
            ]
            merged = parts[0]
            for p in parts[1:]:
                merged = comp.merge_partials(merged, p)
            assert merged.count == len(xs)
            value = comp.finalize_partial(merged)
            assert abs(value - reference) <= limit

    def test_merge_keeps_exact_rounding_error(self):
        # two_sum recovers what the total addition dropped: merging
        # (1e16, 0) with (1.0, 0) keeps the 1.0 in err exactly.
        a = comp.CompPartial(1e16, 0.0, 1, 1e16)
        b = comp.CompPartial(1.0, 0.0, 1, 1.0)
        m = comp.merge_partials(a, b)
        assert m.total + m.err == 1e16 + 1.0 or (m.total, m.err) == (
            1e16,
            1.0,
        )
        assert m.total == 1e16
        assert m.err == 1.0
        assert m.max_abs == 1e16


class TestNeumaierBackends:
    def test_pure_pin_matches_lane_layout(self, monkeypatch):
        # backend="pure" must never consult the native ladder.
        xs = np.random.default_rng(31).standard_normal(30_000)
        monkeypatch.setattr(
            native, "resolve", lambda *a, **k: pytest.fail(
                "pure pin consulted the native ladder"
            )
        )
        p = comp.neumaier_partial(xs, backend="pure")
        assert p.count == xs.size

    def test_compiled_and_pure_both_within_bound(self):
        kern = native.resolve("auto")
        if kern.neumaier_partial is None:
            pytest.skip("no compiled neumaier kernel in this environment")
        rng = np.random.default_rng(32)
        xs = rng.standard_normal(200_001) * np.exp(
            rng.uniform(-30, 30, size=200_001)
        )
        reference = math.fsum(xs)
        mass = math.fsum(np.abs(xs))
        limit = bounds.coefficient("compensated", xs.size) * mass
        compiled = comp.finalize_partial(comp.neumaier_partial(xs))
        pure = comp.finalize_partial(
            comp.neumaier_partial(xs, backend="pure")
        )
        assert abs(compiled - reference) <= limit
        assert abs(pure - reference) <= limit

    def test_compiled_reports_exact_count_and_max(self):
        kern = native.resolve("auto")
        if kern.neumaier_partial is None:
            pytest.skip("no compiled neumaier kernel in this environment")
        xs = np.array([1.0, -8.25, 0.5, 3.0])
        p = comp.neumaier_partial(xs)
        assert p.count == 4
        assert p.max_abs == 8.25
        assert comp.finalize_partial(p) == math.fsum(xs)
