"""Unit/property tests for exact inter-format conversion."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.convert_format import (
    common_format,
    convert_words,
    is_exactly_convertible,
)
from repro.core.params import HPParams
from repro.core.scalar import from_double, to_double, to_int_scaled
from repro.errors import ConversionOverflowError, MixedParameterError

P32 = HPParams(3, 2)
P21 = HPParams(2, 1)
P84 = HPParams(8, 4)


class TestConvertWords:
    @pytest.mark.parametrize("x", [0.0, 1.5, -1.5, 0.1, -4096.25])
    def test_widening_preserves_value(self, x):
        w = from_double(x, P32)
        wide = convert_words(w, P32, P84)
        assert to_double(wide, P84) == x

    def test_narrowing_exact_when_fits(self):
        w = from_double(1.5, P32)
        narrow = convert_words(w, P32, P21)
        assert to_double(narrow, P21) == 1.5

    def test_narrowing_raises_on_lost_bits(self):
        w = from_double(2.0**-100, P32)  # below (2,1)'s 2**-64
        with pytest.raises(ConversionOverflowError):
            convert_words(w, P32, P21)

    def test_narrowing_truncates_when_allowed(self):
        w = from_double(1.0 + 2.0**-100, P32)
        narrow = convert_words(w, P32, P21, allow_truncation=True)
        assert to_double(narrow, P21) == 1.0
        neg = convert_words(
            from_double(-(1.0 + 2.0**-100), P32), P32, P21,
            allow_truncation=True,
        )
        assert to_double(neg, P21) == -1.0  # toward zero, not -inf

    def test_range_overflow(self):
        w = from_double(2.0**100, P84)
        with pytest.raises(ConversionOverflowError):
            convert_words(w, P84, P32)  # (3,2) tops out at 2**63

    def test_width_mismatch(self):
        with pytest.raises(MixedParameterError):
            convert_words((0, 0), P32, P21)

    def test_same_format_identity(self):
        w = from_double(0.1, P32)
        assert convert_words(w, P32, P32) == w


class TestIsExactlyConvertible:
    def test_true_cases(self):
        assert is_exactly_convertible(from_double(1.5, P32), P32, P21)
        assert is_exactly_convertible(from_double(0.1, P32), P32, P84)

    def test_false_on_resolution_loss(self):
        assert not is_exactly_convertible(
            from_double(2.0**-100, P32), P32, P21
        )

    def test_false_on_range_loss(self):
        assert not is_exactly_convertible(
            from_double(2.0**70, P84), P84, P32
        )


class TestCommonFormat:
    def test_join(self):
        assert common_format(HPParams(3, 2), HPParams(6, 1)) == HPParams(7, 2)

    def test_idempotent(self):
        assert common_format(P32, P32) == P32

    def test_commutative(self):
        assert common_format(P32, P84) == common_format(P84, P32)

    @given(
        st.integers(1, 8), st.integers(0, 8),
        st.integers(1, 8), st.integers(0, 8),
    )
    @settings(max_examples=50)
    def test_absorbs_both(self, n1, k1, n2, k2):
        if k1 > n1 or k2 > n2:
            return
        a, b = HPParams(n1, k1), HPParams(n2, k2)
        c = common_format(a, b)
        assert c.whole_bits >= max(a.whole_bits, b.whole_bits)
        assert c.frac_bits >= max(a.frac_bits, b.frac_bits)


class TestRoundtripProperty:
    values = st.floats(min_value=-1e15, max_value=1e15, allow_nan=False)

    @given(values)
    @settings(max_examples=60)
    def test_widen_then_narrow_is_identity(self, x):
        w = from_double(x, P32)
        wide = convert_words(w, P32, P84)
        back = convert_words(wide, P84, P32)
        assert back == w
        assert to_int_scaled(wide) == to_int_scaled(w) << (
            P84.frac_bits - P32.frac_bits
        )
