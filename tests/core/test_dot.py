"""Unit/property tests for exact HP dot products."""

from __future__ import annotations

from fractions import Fraction

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.dot import (
    dot_params,
    hp_dot,
    hp_dot_words,
    split_products,
    two_product,
)
from repro.core.params import HPParams
from repro.errors import ParameterError

# Magnitudes whose products neither overflow nor fall into the
# subnormal range (where the Dekker EFT's exactness precondition fails).
moderate = st.one_of(
    st.just(0.0),
    st.floats(min_value=1e-100, max_value=1e12, allow_nan=False),
    st.floats(min_value=1e-100, max_value=1e12, allow_nan=False).map(
        lambda x: -x
    ),
)


class TestTwoProduct:
    @given(moderate, moderate)
    def test_error_free(self, a, b):
        p, e = two_product(a, b)
        assert Fraction(a) * Fraction(b) == Fraction(p) + Fraction(e)

    def test_known_case(self):
        p, e = two_product(0.1, 0.1)
        assert p == 0.1 * 0.1
        assert e != 0.0  # 0.01 is not exactly representable

    def test_exact_products_have_zero_error(self):
        assert two_product(0.5, 0.25) == (0.125, 0.0)
        assert two_product(3.0, 4.0) == (12.0, 0.0)


class TestSplitProducts:
    def test_matches_scalar(self, rng):
        xs = rng.uniform(-100, 100, 200)
        ys = rng.uniform(-100, 100, 200)
        p, e = split_products(xs, ys)
        for i in range(200):
            sp, se = two_product(float(xs[i]), float(ys[i]))
            assert (p[i], e[i]) == (sp, se)

    def test_shape_check(self):
        with pytest.raises(ValueError):
            split_products(np.zeros(3), np.zeros(4))


class TestDotParams:
    def test_sufficient_for_unit_vectors(self):
        params = dot_params(1.0, 1.0, 1000)
        assert params.max_value > 1000.0
        assert params.smallest < 2.0**-210  # covers error-term tails

    def test_rejects_bad_inputs(self):
        with pytest.raises(ParameterError):
            dot_params(0.0, 1.0, 10)
        with pytest.raises(ParameterError):
            dot_params(1.0, 1.0, 0)

    def test_tiny_magnitudes_do_not_underflow(self):
        params = dot_params(1e-300, 1e-300, 10)
        assert params.k >= 1


class TestHpDot:
    def test_exact_against_rationals(self, rng):
        xs = rng.uniform(-1.0, 1.0, 500)
        ys = rng.uniform(-1.0, 1.0, 500)
        exact = sum(
            (Fraction(a) * Fraction(b) for a, b in zip(xs, ys)), Fraction(0)
        )
        assert hp_dot(xs, ys) == float(exact)

    def test_order_invariant(self, rng):
        xs = rng.uniform(-1.0, 1.0, 300)
        ys = rng.uniform(-1.0, 1.0, 300)
        params = dot_params(1.0, 1.0, 300)
        words = hp_dot_words(xs, ys, params)
        perm = rng.permutation(300)
        assert hp_dot_words(xs[perm], ys[perm], params) == words

    def test_chunking_invariant(self, rng):
        xs = rng.uniform(-1.0, 1.0, 257)
        ys = rng.uniform(-1.0, 1.0, 257)
        params = dot_params(1.0, 1.0, 257)
        assert hp_dot_words(xs, ys, params, chunk=16) == hp_dot_words(
            xs, ys, params, chunk=10**6
        )

    def test_cancellation_exact(self):
        # x·y + (-x)·y = 0 exactly, where naive FP dot may not be.
        xs = np.array([0.1, -0.1, 0.3, -0.3])
        ys = np.array([0.7, 0.7, 0.9, 0.9])
        assert hp_dot(xs, ys) == 0.0

    def test_ill_conditioned_dot(self):
        """A classic stress case: naive dot loses everything."""
        xs = np.array([1e10, 1.0, -1e10])
        ys = np.array([1e10, 1.0, 1e10])
        assert hp_dot(xs, ys) == 1.0
        assert float(np.dot(xs, ys)) != 1.0 or True  # numpy may get lucky

    def test_empty(self):
        assert hp_dot(np.array([]), np.array([])) == 0.0

    def test_shape_check(self, rng):
        with pytest.raises(ValueError):
            hp_dot_words(rng.uniform(size=3), rng.uniform(size=4),
                         HPParams(4, 2))

    @given(st.lists(st.tuples(moderate, moderate), min_size=0, max_size=30))
    @settings(max_examples=40)
    def test_property_exact(self, pairs):
        xs = np.array([p[0] for p in pairs], dtype=np.float64)
        ys = np.array([p[1] for p in pairs], dtype=np.float64)
        exact = sum(
            (Fraction(float(a)) * Fraction(float(b)) for a, b in zip(xs, ys)),
            Fraction(0),
        )
        assert hp_dot(xs, ys) == float(exact)
