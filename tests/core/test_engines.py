"""Engine registry: the single dispatch point for summation methods.

The registry replaces the old if/elif ladders in ``batch_sum_doubles``
and ``make_method``; these tests pin its lookup contract (aliases,
historical error wording, adapter mapping) and check that the public
entry points actually route through it.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import engines
from repro.core.params import HPParams
from repro.core.vectorized import batch_sum_doubles

P = HPParams(3, 2)


class TestRegistry:
    def test_expected_engines_present(self):
        assert set(engines.names()) >= {"superacc", "small", "words"}

    def test_alias_resolves(self):
        assert engines.get("smallacc") is engines.get("small")

    def test_unknown_name_preserves_historical_wording(self):
        with pytest.raises(ValueError, match="unknown summation method"):
            engines.get("exact")

    def test_spec_shape(self):
        spec = engines.get("small")
        assert spec.name == "small"
        assert spec.adapter_name == "hp-small"
        assert callable(spec.scaled_total)
        assert callable(spec.make_adapter)

    def test_adapter_names_cover_registry(self):
        names = engines.adapter_names()
        assert "hp-superacc" in names
        assert "hp-small" in names
        assert "hp" in names

    def test_adapter_factory_resolves(self):
        from repro.parallel.methods import HPSmallaccMethod

        factory = engines.adapter_factory("hp-small")
        assert factory is not None
        assert isinstance(factory(P), HPSmallaccMethod)

    def test_adapter_factory_unknown_is_none(self):
        assert engines.adapter_factory("hallberg") is None

    def test_engine_for_adapter_inverts(self):
        assert engines.engine_for_adapter("hp-small") == "small"
        assert engines.engine_for_adapter("hp-superacc") == "superacc"
        assert engines.engine_for_adapter("hp") == "words"
        assert engines.engine_for_adapter("double") is None


class TestDispatch:
    def test_scaled_total_agrees_across_engines(self, rng):
        xs = rng.uniform(-1.0, 1.0, 500)
        totals = {
            name: engines.scaled_total(xs, P, 1 << 20, name)
            for name in ("superacc", "small", "words")
        }
        assert len(set(totals.values())) == 1

    def test_batch_words_routes_small(self, rng):
        xs = rng.uniform(-1.0, 1.0, 500)
        assert engines.batch_words(xs, P, 1 << 20, True, "small") == (
            engines.batch_words(xs, P, 1 << 20, True, "words")
        )

    def test_batch_sum_doubles_accepts_alias(self, rng):
        xs = rng.uniform(-1.0, 1.0, 300)
        assert batch_sum_doubles(xs, P, method="smallacc") == (
            batch_sum_doubles(xs, P, method="small")
        )

    def test_batch_sum_doubles_unknown_method(self, rng):
        with pytest.raises(ValueError, match="unknown summation method"):
            batch_sum_doubles(rng.uniform(size=4), P, method="kahan")

    def test_make_method_lists_registry_adapters(self):
        from repro.parallel.drivers import make_method

        with pytest.raises(ValueError) as exc:
            make_method("nope")
        for name in engines.adapter_names():
            assert name in str(exc.value)
