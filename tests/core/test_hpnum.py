"""Unit tests for the HPNumber value type."""

from __future__ import annotations

from fractions import Fraction

import pytest

from repro.core.hpnum import HPNumber
from repro.core.params import HPParams
from repro.errors import (
    AdditionOverflowError,
    MixedParameterError,
    ParameterError,
)

P = HPParams(3, 2)


class TestConstruction:
    def test_zero(self):
        assert HPNumber.zero(P).to_double() == 0.0
        assert not HPNumber.zero(P)

    def test_from_double(self):
        assert HPNumber.from_double(0.25, P).to_double() == 0.25

    def test_from_fraction(self):
        x = HPNumber.from_fraction(Fraction(1, 4), P)
        assert x.to_double() == 0.25

    def test_from_fraction_truncates(self):
        third = HPNumber.from_fraction(Fraction(1, 3), P)
        assert third.to_fraction() < Fraction(1, 3)
        assert Fraction(1, 3) - third.to_fraction() < Fraction(1, P.scale)

    def test_from_fraction_negative_truncates_toward_zero(self):
        x = HPNumber.from_fraction(Fraction(-1, 3), P)
        assert x.to_fraction() > Fraction(-1, 3)

    def test_rejects_wrong_word_count(self):
        with pytest.raises(ParameterError):
            HPNumber((0, 0), P)

    def test_rejects_out_of_range_word(self):
        with pytest.raises(ParameterError):
            HPNumber((0, 0, 1 << 64), P)


class TestArithmetic:
    def test_add(self):
        a = HPNumber.from_double(0.1, P)
        b = HPNumber.from_double(0.2, P)
        assert (a + b - b).to_double() == 0.1

    def test_add_scalar_coercion(self):
        a = HPNumber.from_double(1.5, P)
        assert (a + 1).to_double() == 2.5
        assert (1 + a).to_double() == 2.5

    def test_rsub(self):
        a = HPNumber.from_double(1.5, P)
        assert (3 - a).to_double() == 1.5

    def test_neg_abs(self):
        a = HPNumber.from_double(-2.5, P)
        assert (-a).to_double() == 2.5
        assert abs(a).to_double() == 2.5
        assert (+a) is a

    def test_overflow_raises(self):
        big = HPNumber.from_int_scaled(P.max_int, P)
        with pytest.raises(AdditionOverflowError):
            big + HPNumber.from_double(1.0, P)

    def test_mixed_params_rejected(self):
        a = HPNumber.from_double(1.0, P)
        b = HPNumber.from_double(1.0, HPParams(2, 1))
        with pytest.raises(MixedParameterError):
            a + b

    def test_unsupported_operand(self):
        a = HPNumber.from_double(1.0, P)
        with pytest.raises(TypeError):
            a + "x"  # type: ignore[operator]


class TestComparison:
    def test_equality_is_bitwise(self):
        a = HPNumber.from_double(0.5, P)
        b = HPNumber.from_double(0.25, P) + HPNumber.from_double(0.25, P)
        assert a == b
        assert hash(a) == hash(b)

    def test_ordering(self):
        xs = [HPNumber.from_double(v, P) for v in (1.5, -2.0, 0.0, 7.25)]
        assert [x.to_double() for x in sorted(xs)] == [-2.0, 0.0, 1.5, 7.25]

    def test_ordering_across_signs(self):
        assert HPNumber.from_double(-0.001, P) < HPNumber.from_double(0.001, P)

    def test_different_params_not_equal(self):
        assert HPNumber.from_double(1.0, P) != HPNumber.from_double(
            1.0, HPParams(2, 1)
        )


class TestAccessors:
    def test_signs(self):
        assert HPNumber.from_double(-1.0, P).is_negative()
        assert not HPNumber.from_double(1.0, P).is_negative()
        assert HPNumber.zero(P).is_zero()

    def test_to_fraction_exact(self):
        x = HPNumber.from_double(0.1, P)
        assert x.to_fraction() == Fraction(0.1)

    def test_hex_words(self):
        dump = HPNumber.from_double(1.0, P).hex_words()
        assert dump == "0000000000000001 0000000000000000 0000000000000000"

    def test_repr_contains_value(self):
        assert "0.5" in repr(HPNumber.from_double(0.5, P))
