"""Unit tests for HP serialization and checkpointing."""

from __future__ import annotations

import io

import numpy as np
import pytest

from repro.core.accumulator import HPAccumulator
from repro.core.hpnum import HPNumber
from repro.core.io import (
    FormatError,
    load_accumulator,
    load_bank,
    number_from_bytes,
    number_from_hex,
    number_to_bytes,
    number_to_hex,
    save_accumulator,
    save_bank,
)
from repro.core.multi import HPMultiAccumulator
from repro.core.params import HPParams
from repro.errors import MixedParameterError

P = HPParams(3, 2)


class TestBytesRoundtrip:
    @pytest.mark.parametrize("x", [0.0, 1.5, -1.5, 0.1, -12345.678])
    def test_roundtrip(self, x):
        number = HPNumber.from_double(x, P)
        back, count = number_from_bytes(number_to_bytes(number, count=7))
        assert back == number and count == 7

    def test_roundtrip_across_formats(self, hp_params):
        number = HPNumber.from_double(42.5, hp_params)
        back, _ = number_from_bytes(number_to_bytes(number))
        assert back.params == hp_params and back == number

    def test_expect_mismatch(self):
        blob = number_to_bytes(HPNumber.from_double(1.0, P))
        with pytest.raises(MixedParameterError):
            number_from_bytes(blob, expect=HPParams(2, 1))

    def test_bad_magic(self):
        blob = b"XXXX" + number_to_bytes(HPNumber.zero(P))[4:]
        with pytest.raises(FormatError):
            number_from_bytes(blob)

    def test_truncated_blob(self):
        blob = number_to_bytes(HPNumber.zero(P))[:-3]
        with pytest.raises(FormatError):
            number_from_bytes(blob)

    def test_too_short_for_header(self):
        with pytest.raises(FormatError):
            number_from_bytes(b"HP")


class TestHexRoundtrip:
    @pytest.mark.parametrize("x", [0.0, 0.1, -2.5, 1e18, -(2.0**-128)])
    def test_roundtrip(self, x):
        number = HPNumber.from_double(x, P)
        assert number_from_hex(number_to_hex(number)) == number

    def test_format_visible(self):
        text = number_to_hex(HPNumber.from_double(1.0, P))
        assert text.startswith("3,2:")

    def test_malformed(self):
        with pytest.raises(FormatError):
            number_from_hex("not-hex")
        with pytest.raises(FormatError):
            number_from_hex("3,2:abcd")  # wrong digit count


class TestAccumulatorCheckpoint:
    def test_checkpoint_resume_equals_straight_run(self, rng):
        """The restartability property: checkpoint mid-stream, resume,
        and get bit-identical words."""
        values = rng.uniform(-1.0, 1.0, 200)
        straight = HPAccumulator(P)
        straight.extend(values.tolist())

        first = HPAccumulator(P)
        first.extend(values[:93].tolist())
        stream = io.BytesIO()
        save_accumulator(first, stream)
        stream.seek(0)
        resumed = load_accumulator(stream, expect=P)
        resumed.extend(values[93:].tolist())
        assert resumed.words == straight.words
        assert resumed.count == straight.count

    def test_expect_guard(self):
        stream = io.BytesIO()
        save_accumulator(HPAccumulator(P), stream)
        stream.seek(0)
        with pytest.raises(MixedParameterError):
            load_accumulator(stream, expect=HPParams(6, 3))


class TestBankPersistence:
    def test_roundtrip(self, tmp_path, rng):
        bank = HPMultiAccumulator(6, P)
        for _ in range(10):
            bank.add(rng.uniform(-1.0, 1.0, 6))
        path = str(tmp_path / "bank")
        save_bank(bank, path)
        back = load_bank(path, expect=P)
        assert np.array_equal(back.words, bank.words)
        assert back.count == bank.count
        assert back.to_doubles().tolist() == bank.to_doubles().tolist()

    def test_manifest_mismatch(self, tmp_path, rng):
        bank = HPMultiAccumulator(2, P)
        path = str(tmp_path / "bank")
        save_bank(bank, path)
        with pytest.raises(MixedParameterError):
            load_bank(path, expect=HPParams(2, 1))

    def test_corrupt_plane_detected(self, tmp_path):
        bank = HPMultiAccumulator(2, P)
        path = str(tmp_path / "bank")
        save_bank(bank, path)
        np.save(path + ".npy", np.zeros((3, 3), dtype=np.uint64))
        with pytest.raises(FormatError):
            load_bank(path)
