"""Tests for exact matrix-vector products."""

from __future__ import annotations

from fractions import Fraction

import numpy as np
import pytest

from repro.core.matvec import CSRMatrix, hp_matvec, hp_spmv
from repro.util.rng import default_rng


def exact_row(row: np.ndarray, x: np.ndarray) -> float:
    total = sum(
        (Fraction(float(a)) * Fraction(float(b)) for a, b in zip(row, x)),
        Fraction(0),
    )
    return total.numerator / total.denominator if total else 0.0


class TestDenseMatvec:
    def test_known(self):
        out = hp_matvec(np.array([[1.0, 2.0], [3.0, 4.0]]),
                        np.array([1.0, 0.5]))
        assert out.tolist() == [2.0, 5.0]

    def test_exact_per_row(self, rng):
        a = rng.uniform(-1.0, 1.0, (20, 30))
        x = rng.uniform(-1.0, 1.0, 30)
        out = hp_matvec(a, x)
        for i in range(20):
            assert out[i] == exact_row(a[i], x)

    def test_column_permutation_invariant(self, rng):
        """Permuting columns (and x) cannot change any output bit."""
        a = rng.uniform(-1.0, 1.0, (10, 40))
        x = rng.uniform(-1.0, 1.0, 40)
        perm = rng.permutation(40)
        assert np.array_equal(hp_matvec(a, x), hp_matvec(a[:, perm], x[perm]))

    def test_close_to_numpy(self, rng):
        a = rng.uniform(-1.0, 1.0, (8, 8))
        x = rng.uniform(-1.0, 1.0, 8)
        assert np.allclose(hp_matvec(a, x), a @ x, atol=1e-12)

    def test_shape_checks(self, rng):
        with pytest.raises(ValueError):
            hp_matvec(rng.uniform(size=(3, 4)), rng.uniform(size=3))

    def test_zero_matrix(self):
        assert hp_matvec(np.zeros((3, 3)), np.zeros(3)).tolist() == [0.0] * 3


class TestCSR:
    def test_from_dense_roundtrip(self, rng):
        dense = rng.uniform(-1.0, 1.0, (6, 9))
        dense[rng.uniform(size=(6, 9)) < 0.6] = 0.0
        csr = CSRMatrix.from_dense(dense)
        rebuilt = np.zeros_like(dense)
        for i in range(6):
            vals, cols = csr.row(i)
            rebuilt[i, cols] = vals
        assert np.array_equal(rebuilt, dense)

    def test_validation(self):
        with pytest.raises(ValueError):
            CSRMatrix(np.zeros(2), np.zeros(2, dtype=np.int64),
                      np.array([0, 1]), (2, 2))

    def test_spmv_matches_dense(self, rng):
        dense = rng.uniform(-1.0, 1.0, (12, 15))
        dense[rng.uniform(size=(12, 15)) < 0.7] = 0.0
        x = rng.uniform(-1.0, 1.0, 15)
        csr = CSRMatrix.from_dense(dense)
        assert np.array_equal(hp_spmv(csr, x), hp_matvec(dense, x))

    def test_nonzero_order_invariant(self, rng):
        """The reproducibility claim for sparse: shuffling each row's
        stored nonzeros changes nothing."""
        dense = rng.uniform(-1.0, 1.0, (10, 20))
        dense[rng.uniform(size=(10, 20)) < 0.5] = 0.0
        x = rng.uniform(-1.0, 1.0, 20)
        csr = CSRMatrix.from_dense(dense)
        shuffled = csr.permuted_nonzeros(default_rng(3))
        assert np.array_equal(hp_spmv(csr, x), hp_spmv(shuffled, x))

    def test_spmv_shape_check(self, rng):
        csr = CSRMatrix.from_dense(rng.uniform(size=(3, 4)))
        with pytest.raises(ValueError):
            hp_spmv(csr, rng.uniform(size=5))

    def test_empty_rows(self):
        dense = np.zeros((3, 4))
        dense[1, 2] = 2.5
        csr = CSRMatrix.from_dense(dense)
        out = hp_spmv(csr, np.array([1.0, 1.0, 2.0, 1.0]))
        assert out.tolist() == [0.0, 5.0, 0.0]
