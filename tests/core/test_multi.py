"""Unit/property tests for the vectorized multi-accumulator bank."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.accumulator import HPAccumulator
from repro.core.multi import HPMultiAccumulator
from repro.core.params import HPParams
from repro.core.scalar import to_double
from repro.errors import AdditionOverflowError, MixedParameterError

P = HPParams(3, 2)


class TestBasics:
    def test_starts_zero(self):
        bank = HPMultiAccumulator(5, P)
        assert bank.to_doubles().tolist() == [0.0] * 5

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            HPMultiAccumulator(0, P)

    def test_elementwise_add(self):
        bank = HPMultiAccumulator(3, P)
        bank.add(np.array([1.0, -2.0, 0.5]))
        bank.add(np.array([0.5, 2.0, 0.5]))
        assert bank.to_doubles().tolist() == [1.5, 0.0, 1.0]

    def test_shape_check(self):
        bank = HPMultiAccumulator(3, P)
        with pytest.raises(ValueError):
            bank.add(np.zeros(4))

    def test_matches_scalar_accumulators(self, rng):
        m = 7
        bank = HPMultiAccumulator(m, P)
        refs = [HPAccumulator(P) for _ in range(m)]
        for _ in range(100):
            xs = rng.uniform(-1.0, 1.0, m)
            bank.add(xs)
            for i in range(m):
                refs[i].add(float(xs[i]))
        for i in range(m):
            assert bank.cell_words(i) == refs[i].words

    def test_carry_chain_per_cell(self):
        """Cells carry independently: one cell's ripple must not leak."""
        bank = HPMultiAccumulator(2, P)
        bank.add(np.array([-(2.0**-128), 1.0]))
        bank.add(np.array([2.0**-128, 1.0]))
        assert bank.to_doubles().tolist() == [0.0, 2.0]


class TestScatter:
    def test_scatter_basic(self):
        bank = HPMultiAccumulator(4, P)
        bank.add_at(np.array([0, 2, 2]), np.array([1.0, 0.5, 0.25]))
        assert bank.to_doubles().tolist() == [1.0, 0.0, 0.75, 0.0]

    def test_scatter_matches_sequential(self, rng):
        bank = HPMultiAccumulator(8, P)
        refs = [HPAccumulator(P) for _ in range(8)]
        idx = rng.integers(0, 8, 200)
        xs = rng.uniform(-1.0, 1.0, 200)
        bank.add_at(idx, xs)
        for i, x in zip(idx, xs):
            refs[int(i)].add(float(x))
        for i in range(8):
            assert bank.cell_words(i) == refs[i].words

    def test_scatter_bounds(self):
        bank = HPMultiAccumulator(4, P)
        with pytest.raises(IndexError):
            bank.add_at(np.array([4]), np.array([1.0]))

    def test_scatter_empty(self):
        bank = HPMultiAccumulator(4, P)
        bank.add_at(np.array([], dtype=np.int64), np.array([]))
        assert bank.count == 0


class TestMergeAndTotals:
    def test_merge(self, rng):
        a = HPMultiAccumulator(4, P)
        b = HPMultiAccumulator(4, P)
        whole = HPMultiAccumulator(4, P)
        for _ in range(20):
            xs = rng.uniform(-1.0, 1.0, 4)
            a.add(xs)
            whole.add(xs)
        for _ in range(30):
            xs = rng.uniform(-1.0, 1.0, 4)
            b.add(xs)
            whole.add(xs)
        a.merge(b)
        assert np.array_equal(a.words, whole.words)
        assert a.count == whole.count

    def test_merge_shape_check(self):
        with pytest.raises(MixedParameterError):
            HPMultiAccumulator(4, P).merge(HPMultiAccumulator(5, P))

    def test_total_equals_flat_sum(self, rng):
        import math

        bank = HPMultiAccumulator(16, P)
        all_values = []
        for _ in range(10):
            xs = rng.uniform(-1.0, 1.0, 16)
            bank.add(xs)
            all_values.extend(xs.tolist())
        assert to_double(bank.total_words(), P) == math.fsum(all_values)

    def test_cell_accumulator_roundtrip(self, rng):
        bank = HPMultiAccumulator(3, P)
        bank.add(rng.uniform(-1.0, 1.0, 3))
        acc = bank.cell_accumulator(1)
        assert acc.words == bank.cell_words(1)


class TestOverflow:
    def test_per_cell_overflow_detected(self):
        p = HPParams(2, 1)
        bank = HPMultiAccumulator(2, p)
        bank.add(np.array([2.0**62, 0.0]))
        with pytest.raises(AdditionOverflowError, match="cell 0"):
            bank.add(np.array([2.0**62, 1.0]))

    def test_unchecked_wraps(self):
        p = HPParams(2, 1)
        bank = HPMultiAccumulator(1, p, check_overflow=False)
        bank.add(np.array([2.0**62]))
        bank.add(np.array([2.0**62]))
        assert bank.to_doubles()[0] == -(2.0**63)


class TestProperties:
    @given(st.lists(
        st.lists(st.floats(min_value=-1e3, max_value=1e3, allow_nan=False),
                 min_size=3, max_size=3),
        min_size=0, max_size=20,
    ))
    @settings(max_examples=40)
    def test_bank_equals_scalars(self, rows):
        bank = HPMultiAccumulator(3, P)
        refs = [HPAccumulator(P) for _ in range(3)]
        for row in rows:
            bank.add(np.array(row, dtype=np.float64))
            for i in range(3):
                refs[i].add(float(np.float64(row[i])))
        for i in range(3):
            assert bank.cell_words(i) == refs[i].words
