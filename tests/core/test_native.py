"""Compiled-backend contract: resolution chain, env pins, bit identity.

The native module promises that every backend computes the *same* exact
integer arithmetic and that resolution degrades gracefully (auto never
raises; explicit compiled names raise
:class:`~repro.core.native.NativeUnavailableError` when missing).  Tests
that need a compiled kernel skip when the environment cannot build one —
the pure leg always runs.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import native
from repro.core.params import HPParams
from repro.core.smallacc import SmallAccumulator
from repro.core.superacc import SuperAccumulator, bin_count, bins_from_int

from tests.core.test_superacc import adversarial_pool

P = HPParams(3, 2)


def _compiled_or_skip() -> native.KernelSet:
    kern = native.resolve("auto")
    if not kern.compiled:
        pytest.skip("no compiled backend available in this environment")
    return kern


@pytest.fixture
def clean_env(monkeypatch):
    """Reset resolution caches and scrub the env knobs around a test."""
    for var in ("REPRO_FORCE_PURE", "REPRO_NATIVE", "REPRO_NATIVE_CACHE"):
        monkeypatch.delenv(var, raising=False)
    native._reset_for_tests()
    yield monkeypatch
    native._reset_for_tests()


class TestResolution:
    def test_pure_always_available(self):
        kern = native.resolve("pure")
        assert kern.name == "pure"
        assert not kern.compiled

    def test_auto_never_raises(self, clean_env):
        kern = native.resolve("auto")
        assert kern.name in ("numba", "cext", "pure")

    def test_force_pure_env(self, clean_env):
        clean_env.setenv("REPRO_FORCE_PURE", "1")
        assert native.force_pure()
        assert native.resolve("auto") is native.PURE
        assert native.backend_name() == "pure"

    def test_repro_native_pure_pin(self, clean_env):
        clean_env.setenv("REPRO_NATIVE", "pure")
        assert native.resolve("auto") is native.PURE

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="unknown backend"):
            native.resolve("fortran")

    def test_explicit_numba_raises_when_missing(self, clean_env):
        try:
            import numba  # noqa: F401
        except ImportError:
            with pytest.raises(native.NativeUnavailableError):
                native.resolve("numba")
        else:
            assert native.resolve("numba").compiled

    def test_backend_info_shape(self, clean_env):
        info = native.backend_info()
        assert set(info) == {
            "backend", "compiled", "force_pure", "build_errors"
        }
        assert isinstance(info["compiled"], bool)

    def test_resolution_is_cached(self, clean_env):
        assert native.resolve("auto") is native.resolve("auto")


class TestKernelBitIdentity:
    def test_smallacc_scatter_matches_pure(self, rng, hp_params):
        kern = _compiled_or_skip()
        xs = adversarial_pool(hp_params, rng, 800)
        chunks = np.zeros(bin_count(hp_params), dtype=np.int64)
        kern.smallacc_scatter(
            np.ascontiguousarray(xs), hp_params.frac_bits, chunks
        )
        pure = SmallAccumulator(hp_params, backend="pure")
        pure.absorb(xs)
        pure.propagate()
        # The kernel returns the array canonical, so raw comparison holds.
        assert tuple(int(v) for v in chunks) == pure.chunks

    def test_superacc_scatter_matches_pure(self, rng, hp_params):
        kern = _compiled_or_skip()
        xs = adversarial_pool(hp_params, rng, 800)
        compiled = SuperAccumulator(hp_params, backend="auto")
        assert compiled.backend == kern.name
        compiled.absorb(xs)
        pure = SuperAccumulator(hp_params, backend="pure")
        pure.absorb(xs)
        assert compiled.to_words() == pure.to_words()

    def test_propagate_matches_canonical(self, rng):
        kern = _compiled_or_skip()
        limbs = np.array(
            [int(v) for v in rng.integers(-(2**40), 2**40, 8)],
            dtype=np.int64,
        )
        from repro.core.superacc import fold_bins

        value = fold_bins(limbs)
        kern.propagate(limbs)
        assert tuple(int(v) for v in limbs) == bins_from_int(value, 8)

    def test_internal_propagation_cadence(self, rng):
        """More elements than SMALL_PROPAGATE_LIMIT forces in-kernel
        carry propagation; exactness must survive the cadence."""
        kern = _compiled_or_skip()
        n = 3 * native.SMALL_PROPAGATE_LIMIT + 17
        xs = adversarial_pool(P, rng, n)
        chunks = np.zeros(bin_count(P), dtype=np.int64)
        kern.smallacc_scatter(np.ascontiguousarray(xs), P.frac_bits, chunks)
        pure = SmallAccumulator(P, backend="pure")
        pure.absorb(xs)
        pure.propagate()
        assert tuple(int(v) for v in chunks) == pure.chunks

    def test_denormals_and_signed_zero(self):
        """Bit-inspection decompose must match frexp on the edge cases
        it reimplements: subnormal normalization and both zeros."""
        kern = _compiled_or_skip()
        xs = np.array([5e-324, -5e-324, 2.0**-1022, 0.0, -0.0,
                       2.0**-1040, -(2.0**-1060)])
        chunks = np.zeros(bin_count(P), dtype=np.int64)
        kern.smallacc_scatter(np.ascontiguousarray(xs), P.frac_bits, chunks)
        pure = SmallAccumulator(P, backend="pure")
        pure.absorb(xs)
        pure.propagate()
        assert tuple(int(v) for v in chunks) == pure.chunks

    def test_cross_backend_merge(self, rng, hp_params):
        """Compiled and pure accumulators over different halves must
        merge to the one-shot pure result — interchangeable mid-stream."""
        _compiled_or_skip()
        xs = adversarial_pool(hp_params, rng, 600)
        a = SmallAccumulator(hp_params, backend="auto")
        b = SmallAccumulator(hp_params, backend="pure")
        a.absorb(xs[:300])
        b.absorb(xs[300:])
        a.merge(b)
        whole = SmallAccumulator(hp_params, backend="pure")
        whole.absorb(xs)
        assert a.total() == whole.total()


class TestEngineBackendSelection:
    def test_smallacc_pure_pin(self):
        assert SmallAccumulator(P, backend="pure").backend == "pure"

    def test_superacc_defaults_pure(self):
        # The superaccumulator keeps its established pure path unless a
        # caller opts in; smallacc defaults to auto.
        assert SuperAccumulator(P).backend == "pure"

    def test_smallacc_honors_force_pure(self, clean_env):
        clean_env.setenv("REPRO_FORCE_PURE", "1")
        assert SmallAccumulator(P, backend="auto").backend == "pure"

    def test_explicit_compiled_name_round_trips(self):
        kern = _compiled_or_skip()
        engine = SmallAccumulator(P, backend=kern.name)
        assert engine.backend == kern.name
