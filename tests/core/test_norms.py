"""Unit/property tests for correctly-rounded norms."""

from __future__ import annotations

import math
from fractions import Fraction

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.norms import (
    exact_norm2,
    exact_sum_abs,
    exact_sumsq_fraction,
    sqrt_correctly_rounded,
)


def assert_correctly_rounded(result: float, value: Fraction) -> None:
    """``result`` is the nearest double to sqrt(value): the exact value
    lies between the midpoints to the neighbouring doubles."""
    if result == 0.0:
        hi = Fraction(math.nextafter(0.0, 1.0)) / 2
        assert value <= hi * hi
        return
    lo_mid = (Fraction(math.nextafter(result, 0.0)) + Fraction(result)) / 2
    hi_mid = (Fraction(result) + Fraction(math.nextafter(result, math.inf))) / 2
    assert lo_mid**2 <= value <= hi_mid**2, (result, float(value))


class TestSqrtCorrectlyRounded:
    def test_matches_math_sqrt_on_doubles(self, rng):
        for x in rng.uniform(0.0, 1e12, 500):
            assert sqrt_correctly_rounded(Fraction(float(x))) == math.sqrt(x)

    def test_perfect_squares(self):
        for i in (0, 1, 4, 9, 10**20, 2**100):
            assert sqrt_correctly_rounded(Fraction(i)) == float(math.isqrt(i))

    def test_tie_resolves_to_even(self):
        midpoint = Fraction(1) + Fraction(1, 2**53)  # between 1 and 1+ulp
        assert sqrt_correctly_rounded(midpoint * midpoint) == 1.0
        midpoint2 = Fraction(1) + Fraction(3, 2**53)  # between 1+ulp, 1+2ulp
        assert sqrt_correctly_rounded(midpoint2 * midpoint2) == 1.0 + 2**-51

    def test_subnormal_results(self):
        tiny = Fraction(5e-324)
        assert sqrt_correctly_rounded(tiny * tiny) == 5e-324
        assert sqrt_correctly_rounded(Fraction(1, 2**2300)) == 0.0

    def test_overflow_to_inf(self):
        assert sqrt_correctly_rounded(Fraction(10) ** 620) == math.inf

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            sqrt_correctly_rounded(Fraction(-1))

    @given(st.fractions(min_value=0, max_value=10**30))
    @settings(max_examples=100)
    def test_property_correct_rounding(self, value):
        assert_correctly_rounded(sqrt_correctly_rounded(value), value)

    @given(st.integers(min_value=1, max_value=10**40),
           st.integers(min_value=1, max_value=10**40))
    @settings(max_examples=100)
    def test_property_wide_range(self, num, den):
        value = Fraction(num, den)
        assert_correctly_rounded(sqrt_correctly_rounded(value), value)


class TestExactNorms:
    def test_pythagorean(self):
        assert exact_norm2(np.array([3.0, 4.0])) == 5.0
        assert exact_norm2(np.array([0.0])) == 0.0

    def test_asum(self, rng):
        xs = rng.uniform(-1.0, 1.0, 500)
        exact = sum((Fraction(float(abs(x))) for x in xs), Fraction(0))
        assert exact_sum_abs(xs) == exact.numerator / exact.denominator

    def test_norm_order_invariant(self, rng):
        xs = rng.uniform(-1.0, 1.0, 300)
        assert exact_norm2(xs) == exact_norm2(xs[::-1].copy())
        assert exact_norm2(xs) == exact_norm2(rng.permutation(xs))

    def test_norm_against_rational_reference(self, rng):
        xs = rng.uniform(-10.0, 10.0, 64)
        value = exact_sumsq_fraction(xs)
        assert_correctly_rounded(exact_norm2(xs), value)

    def test_sumsq_exact(self, rng):
        xs = rng.uniform(-2.0, 2.0, 100)
        expected = sum(
            (Fraction(float(x)) ** 2 for x in xs), Fraction(0)
        )
        assert exact_sumsq_fraction(xs) == expected

    def test_cancellation_free(self):
        """numpy can lose the small component entirely; exact cannot."""
        xs = np.array([1e200, 1.0])
        assert exact_norm2(xs) == 1e200  # correctly rounded (1.0 is lost
        # below the ulp of 1e200 — but *by rounding*, not by overflow:
        # numpy's naive norm overflows to inf on this input).
        with np.errstate(over="ignore"):
            assert not math.isfinite(float(np.sqrt(np.sum(xs**2))))

    def test_empty(self):
        assert exact_norm2(np.array([])) == 0.0
        assert exact_sum_abs(np.array([])) == 0.0
