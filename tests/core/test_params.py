"""Unit tests for HPParams (format geometry, Table 1 values)."""

from __future__ import annotations

import pytest

from repro.core.params import HPParams, TABLE1_CONFIGS, suggest_params
from repro.errors import ParameterError


class TestValidation:
    def test_rejects_zero_words(self):
        with pytest.raises(ParameterError):
            HPParams(0, 0)

    def test_rejects_negative_k(self):
        with pytest.raises(ParameterError):
            HPParams(3, -1)

    def test_rejects_k_above_n(self):
        with pytest.raises(ParameterError):
            HPParams(3, 4)

    def test_boundary_k_values_allowed(self):
        assert HPParams(3, 0).frac_bits == 0
        # k == N: every bit fractional; max value is 2**-1 = 0.5.
        assert HPParams(3, 3).whole_bits == -1
        assert HPParams(3, 3).max_value == 0.5

    def test_frozen(self):
        p = HPParams(3, 2)
        with pytest.raises(AttributeError):
            p.n = 4  # type: ignore[misc]


class TestGeometry:
    def test_bit_accounting(self):
        p = HPParams(6, 3)
        assert p.total_bits == 384
        assert p.precision_bits == 383
        assert p.frac_bits == 192
        assert p.whole_bits == 191
        assert p.whole_bits + p.frac_bits + 1 == p.total_bits

    def test_integer_bounds(self):
        p = HPParams(2, 1)
        assert p.max_int == (1 << 127) - 1
        assert p.min_int == -(1 << 127)
        assert p.scale == 1 << 64


class TestTable1:
    """The published Table 1 values (Sec. III.B)."""

    EXPECTED = {
        (2, 1): (128, 9.223372e18, 5.421011e-20),
        (3, 2): (192, 9.223372e18, 2.938736e-39),
        (6, 3): (384, 3.138551e57, 1.593092e-58),  # paper's Bits=256 is a typo
        (8, 4): (512, 5.789604e76, 8.636169e-78),
    }

    @pytest.mark.parametrize("config", TABLE1_CONFIGS)
    def test_row(self, config):
        n, k = config
        bits, max_range, smallest = self.EXPECTED[config]
        row = HPParams(n, k).table1_row()
        assert row[2] == bits
        assert row[3] == pytest.approx(max_range, rel=1e-6)
        assert row[4] == pytest.approx(smallest, rel=1e-6)


class TestInRange:
    def test_symmetric_interior(self):
        p = HPParams(2, 1)
        assert p.in_range(9.2e18)
        assert p.in_range(-9.2e18)
        assert not p.in_range(1e19)

    def test_asymmetric_edge(self):
        p = HPParams(2, 1)
        assert p.in_range(-(2.0**63))   # min_int exactly
        assert not p.in_range(2.0**63)  # max_int + 1


class TestSuggestParams:
    def test_unit_data(self):
        p = suggest_params(1.0, 2.0**-60)
        assert p.in_range(1.0)
        assert p.smallest <= 2.0**-112  # covers the mantissa tail

    def test_huge_range(self):
        p = suggest_params(1e60, 1e-60)
        assert p.max_value > 1e60
        assert p.smallest < 1e-75

    def test_rejects_bad_inputs(self):
        with pytest.raises(ParameterError):
            suggest_params(0.0, 1.0)
        with pytest.raises(ParameterError):
            suggest_params(1.0, -1.0)
        with pytest.raises(ParameterError):
            suggest_params(1.0, 2.0)

    def test_margin_grows_whole_part(self):
        tight = suggest_params(100.0, 0.5, margin_bits=1)
        roomy = suggest_params(100.0, 0.5, margin_bits=80)
        assert roomy.whole_bits > tight.whole_bits
