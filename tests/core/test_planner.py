"""Planner contracts (:mod:`repro.core.planner`).

The two acceptance properties of the PR pinned as unit tests: a
tolerant target (1e-12 at 4M summands) routes onto a cheap compensated
tier, and ``target = 0`` *provably* selects an exact HP engine whose
words are bit-identical across summand permutations.  Plus the
escalation protocol (breach -> distrust -> reroute -> reset) and
conformance of the decision under both native backends.
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core import bounds, native, planner
from repro.core import engines
from repro.perfmodel.costs import PLANNER_UNIT_COSTS, planner_unit_costs

N_ACCEPT = 4 * 1024 * 1024


@pytest.fixture(autouse=True)
def clean_escalations():
    planner.reset_escalations()
    yield
    planner.reset_escalations()


class TestPlan:
    def test_tolerant_target_picks_compensated_tier(self):
        decision = planner.plan(N_ACCEPT, 1e-12)
        spec = engines.get(decision.engine)
        assert not spec.exact
        assert decision.engine.startswith("comp-")
        assert decision.bound.coefficient <= 1e-12
        assert not decision.exact

    def test_zero_target_provably_exact(self):
        decision = planner.plan(N_ACCEPT, 0.0)
        assert decision.exact
        assert engines.get(decision.engine).exact
        assert decision.bound.coefficient == 0.0

    def test_sub_roundoff_target_forces_exact(self):
        # No inexact tier can promise below its own coefficient.
        decision = planner.plan(N_ACCEPT, 1e-16)
        assert decision.exact

    def test_cheapest_eligible_wins(self):
        decision = planner.plan(N_ACCEPT, 1e-12)
        eligible = [c for c in decision.candidates if c.eligible]
        assert min(eligible, key=lambda c: c.predicted_cost).chosen

    def test_candidates_cover_all_costed_engines(self):
        decision = planner.plan(1000, 1e-12)
        names = {c.engine for c in decision.candidates}
        assert names == set(PLANNER_UNIT_COSTS)

    def test_explain_mentions_choice(self):
        decision = planner.plan(1000, 1e-12)
        text = decision.explain()
        assert "CHOSEN" in text
        assert decision.engine in text

    def test_invalid_targets_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            planner.plan(10, -1e-9)
        with pytest.raises(ValueError, match="non-negative"):
            planner.plan(10, float("nan"))
        with pytest.raises(ValueError, match="n must be"):
            planner.plan(-1, 1e-12)

    def test_costs_override_changes_ranking(self):
        costs = dict(PLANNER_UNIT_COSTS)
        costs["comp-pairwise"] = 1e9  # make the usual winner exorbitant
        decision = planner.plan(N_ACCEPT, 1e-12, costs=costs)
        assert decision.engine != "comp-pairwise"

    def test_measured_refit_scales_exact_tiers(self):
        # A calibration where hp-superacc is only 2x the double baseline
        # shrinks the exact engines' unit costs proportionally.
        costs = planner_unit_costs({"double": 1.0, "hp-superacc": 2.0})
        assert costs["superacc"] == pytest.approx(2.0)
        assert costs["small"] < PLANNER_UNIT_COSTS["small"]
        # Inexact tiers are not refit by the HP calibration pair.
        assert costs["comp-pairwise"] == PLANNER_UNIT_COSTS["comp-pairwise"]


class TestEscalation:
    def test_breach_distrusts_engine_and_reroutes(self):
        first = planner.plan(N_ACCEPT, 1e-12)
        planner.record_breach(first.engine)
        assert planner.escalated_engines() == {first.engine: 1}
        second = planner.plan(N_ACCEPT, 1e-12)
        assert second.engine != first.engine
        assert first.engine in second.escalated_from
        row = {c.engine: c for c in second.candidates}[first.engine]
        assert row.escalated and not row.eligible
        assert row.verdict == "escalated away"

    def test_escalating_everything_falls_back_to_exact(self):
        for name in ("comp-pairwise", "comp-kahan", "comp-neumaier"):
            planner.record_breach(name)
        decision = planner.plan(N_ACCEPT, 1e-12)
        assert decision.exact

    def test_exact_engines_never_escalated(self):
        planner.record_breach("small")
        assert planner.escalated_engines() == {}
        assert planner.plan(10, 0.0).engine  # still servable

    def test_reset_restores_trust(self):
        planner.record_breach("comp-pairwise")
        planner.reset_escalations()
        assert planner.escalated_engines() == {}
        assert planner.plan(N_ACCEPT, 1e-12).engine == "comp-pairwise"

    def test_alias_breach_counts_canonical(self):
        planner.record_breach("pairwise")  # registry alias
        assert planner.escalated_engines() == {"comp-pairwise": 1}


class TestPlannedSum:
    def make(self, n: int = 100_000, seed: int = 5) -> np.ndarray:
        rng = np.random.default_rng(seed)
        return rng.standard_normal(n) * np.exp(
            rng.uniform(-25, 25, size=n)
        )

    def test_inexact_within_promised_bound(self):
        xs = self.make()
        result = planner.planned_sum(xs, 1e-12)
        assert not result.plan.exact
        assert result.words is None and result.params is None
        mass = math.fsum(np.abs(xs))
        assert abs(result.value - math.fsum(xs)) <= (
            result.plan.absolute_bound(mass)
        )

    def test_exact_bit_identical_across_permutations(self):
        xs = self.make(50_000)
        rng = np.random.default_rng(6)
        results = []
        for _ in range(3):
            r = planner.planned_sum(xs, 0.0)
            assert r.plan.exact and r.words is not None
            results.append(r)
            xs = rng.permutation(xs)
        # Same suggested params, same words, same value — order-invariant.
        assert len({r.params for r in results}) == 1
        assert len({r.words for r in results}) == 1
        assert len({r.value for r in results}) == 1

    def test_exact_matches_scalar_oracle(self):
        from repro.core.accumulator import HPAccumulator

        xs = self.make(3_000, seed=7)
        r = planner.planned_sum(xs, 0.0)
        acc = HPAccumulator(r.params)
        for x in xs:
            acc.add(float(x))
        assert tuple(acc.words) == r.words

    def test_all_zero_batch(self):
        r = planner.planned_sum(np.zeros(100), 0.0)
        assert r.value == 0.0

    def test_rejects_bad_shape(self):
        with pytest.raises(ValueError, match="1-D"):
            planner.planned_sum(np.zeros((2, 2)), 1e-12)


class TestBackendConformance:
    """The decision and its bound hold under compiled AND pure stacks."""

    @pytest.fixture()
    def pure_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_FORCE_PURE", "1")
        monkeypatch.delenv("REPRO_NATIVE", raising=False)
        native._reset_for_tests()
        yield
        native._reset_for_tests()

    def test_plan_identical_under_pure(self, pure_env):
        # Bounds are backend-independent by design: the compensated
        # coefficient covers both the lane-vectorized and the compiled
        # scalar kernel, so the decision cannot flip with the backend.
        pure = planner.plan(N_ACCEPT, 1e-12)
        assert pure.engine == "comp-pairwise"
        assert [c.engine for c in pure.candidates] == [
            c.engine for c in planner.plan(N_ACCEPT, 1e-12).candidates
        ]

    def test_planned_sum_within_bound_under_pure(self, pure_env):
        rng = np.random.default_rng(8)
        xs = rng.standard_normal(80_000) * np.exp(
            rng.uniform(-20, 20, size=80_000)
        )
        for target in (1e-12, 2.5e-15, 0.0):
            result = planner.planned_sum(xs, target)
            mass = math.fsum(np.abs(xs))
            err = abs(result.value - math.fsum(xs))
            if result.plan.exact:
                assert err == 0.0
            else:
                assert err <= result.plan.absolute_bound(mass)
