"""Property-based tests (hypothesis) for the HP format invariants.

These are the library-level theorems from DESIGN.md §5: round-trip
exactness, order invariance, agreement with exact rational arithmetic,
two's-complement symmetry, and scalar/vectorized bit-identity.
"""

from __future__ import annotations

import math
from fractions import Fraction

import numpy as np
from hypothesis import assume, given, settings, strategies as st

from repro.core.accumulator import HPAccumulator
from repro.core.params import HPParams
from repro.core.scalar import (
    add_words,
    from_double,
    from_double_listing1,
    negate_words,
    to_double,
    to_int_scaled,
)
from repro.core.vectorized import batch_from_double, batch_sum_doubles

P = HPParams(3, 2)

# Doubles fully inside HP(3,2)'s window: magnitude < 2**62, lowest
# mantissa bit above 2**-128 (i.e. exponent > -76 keeps all 52 low bits).
representable = st.one_of(
    st.just(0.0),
    st.floats(
        min_value=2.0**-75,
        max_value=2.0**62,
        allow_nan=False,
        allow_infinity=False,
    ).map(lambda x: x),
    st.floats(
        min_value=2.0**-75,
        max_value=2.0**62,
        allow_nan=False,
        allow_infinity=False,
    ).map(lambda x: -x),
)

# Any finite double (for truncation-semantics properties).
any_finite = st.floats(allow_nan=False, allow_infinity=False,
                       min_value=-(2.0**62), max_value=2.0**62)


class TestRoundTrip:
    @given(representable)
    def test_exact_roundtrip(self, x):
        assert to_double(from_double(x, P), P) == x

    @given(any_finite)
    def test_truncation_toward_zero(self, x):
        """Out-of-precision inputs quantize toward zero by < 1 ulp of the
        format, symmetrically for either sign."""
        got = Fraction(to_int_scaled(from_double(x, P)), P.scale)
        exact = Fraction(x)
        assert abs(got) <= abs(exact)
        assert abs(exact - got) < Fraction(1, P.scale)

    @given(any_finite)
    def test_sign_symmetry(self, x):
        assert from_double(-x, P) == negate_words(from_double(x, P))


class TestListing1:
    @given(representable)
    def test_parity_with_exact_path(self, x):
        assert from_double_listing1(x, P) == from_double(x, P)


class TestAddition:
    @given(representable, representable)
    def test_matches_rational_addition(self, x, y):
        assume(abs(x) + abs(y) < 2.0**62)
        total = add_words(from_double(x, P), from_double(y, P))
        assert Fraction(to_int_scaled(total), P.scale) == Fraction(x) + Fraction(y)

    @given(representable, representable)
    def test_commutative(self, x, y):
        a, b = from_double(x, P), from_double(y, P)
        assert add_words(a, b) == add_words(b, a)

    @given(representable, representable, representable)
    def test_associative(self, x, y, z):
        a, b, c = (from_double(v, P) for v in (x, y, z))
        assert add_words(add_words(a, b), c) == add_words(a, add_words(b, c))

    @given(representable)
    def test_additive_inverse(self, x):
        words = from_double(x, P)
        assert add_words(words, negate_words(words)) == (0, 0, 0)


class TestOrderInvariance:
    @given(
        st.lists(representable, min_size=1, max_size=30),
        st.randoms(use_true_random=False),
    )
    @settings(max_examples=50)
    def test_any_permutation_same_words(self, values, rnd):
        assume(math.fsum(abs(v) for v in values) < 2.0**62)
        acc = HPAccumulator(P)
        acc.extend(values)
        shuffled = list(values)
        rnd.shuffle(shuffled)
        acc2 = HPAccumulator(P)
        acc2.extend(shuffled)
        assert acc.words == acc2.words

    @given(
        st.lists(representable, min_size=2, max_size=30),
        st.integers(min_value=1, max_value=10**9),
    )
    @settings(max_examples=50)
    def test_any_split_same_words(self, values, split):
        split = 1 + split % (len(values) - 1)  # any interior split point
        assume(math.fsum(abs(v) for v in values) < 2.0**62)
        whole = HPAccumulator(P)
        whole.extend(values)
        left, right = HPAccumulator(P), HPAccumulator(P)
        left.extend(values[:split])
        right.extend(values[split:])
        left.merge(right)
        assert left.words == whole.words


class TestVectorizedParity:
    @given(st.lists(any_finite, min_size=0, max_size=64))
    @settings(max_examples=60)
    def test_batch_conversion_bit_identical(self, values):
        xs = np.array(values, dtype=np.float64)
        words = batch_from_double(xs, P)
        for i, x in enumerate(xs):
            assert tuple(int(w) for w in words[i]) == from_double(float(x), P)

    @given(st.lists(representable, min_size=0, max_size=64))
    @settings(max_examples=60)
    def test_batch_sum_bit_identical(self, values):
        assume(math.fsum(abs(v) for v in values) < 2.0**62)
        xs = np.array(values, dtype=np.float64)
        acc = HPAccumulator(P)
        acc.extend(values)
        assert batch_sum_doubles(xs, P) == acc.words


class TestExactness:
    @given(st.lists(representable, min_size=1, max_size=40))
    @settings(max_examples=60)
    def test_sum_equals_rational_sum(self, values):
        assume(math.fsum(abs(v) for v in values) < 2.0**62)
        acc = HPAccumulator(P)
        acc.extend(values)
        exact = sum((Fraction(v) for v in values), Fraction(0))
        assert Fraction(to_int_scaled(acc.words), P.scale) == exact
