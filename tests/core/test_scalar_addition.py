"""Unit tests for HP word addition (paper Listing 2)."""

from __future__ import annotations

import pytest

from repro.core.params import HPParams
from repro.core.scalar import (
    add_words,
    add_words_checked,
    from_double,
    from_int_scaled,
    negate_words,
    sub_words,
    to_double,
    to_int_scaled,
)
from repro.errors import AdditionOverflowError, MixedParameterError

P21 = HPParams(2, 1)
P32 = HPParams(3, 2)
MASK = (1 << 64) - 1


class TestAddWords:
    def test_simple(self):
        a = from_double(2.5, P21)
        b = from_double(-1.25, P21)
        assert to_double(add_words(a, b), P21) == 1.25

    def test_fig3_worked_example(self):
        """The paper's Fig. 3: 2.5 + (-1.25) = 1.25 word by word."""
        total = add_words((2, 1 << 63), (MASK - 1, 3 << 62))
        assert total == (1, 1 << 62)
        assert to_double(total, P21) == 1.25

    def test_carry_between_words(self):
        # 0.5 + 0.5: fraction word overflows into the whole word.
        a = from_double(0.5, P21)
        total = add_words(a, a)
        assert total == (1, 0)

    def test_carry_chain_through_all_words(self):
        # (2**-128 * (2**128 - 1)) + 2**-128 carries through every word.
        a = from_int_scaled((1 << 128) - 1, P32)
        b = from_int_scaled(1, P32)
        assert add_words(a, b) == from_int_scaled(1 << 128, P32)

    def test_equal_words_carry_propagation(self):
        """The Listing 2 tie case: a[i] becomes equal to b[i] after a
        carry-in, so carry-out must inherit the incoming carry."""
        # a = (0, MASK, MASK), b = (0, MASK, 1): word2 0xFF..F+1 wraps to
        # 0 carry 1; word1 MASK+MASK+1 wraps to MASK == b? no...
        a = from_int_scaled((MASK << 64) | MASK, P32)
        b = from_int_scaled((MASK << 64) | 1, P32)
        expected = to_int_scaled(a) + to_int_scaled(b)
        assert to_int_scaled(add_words(a, b)) == expected

    def test_matches_integer_addition(self, hp_params):
        import random

        rnd = random.Random(7)
        span = hp_params.max_int // 4
        for _ in range(50):
            x = rnd.randint(-span, span)
            y = rnd.randint(-span, span)
            total = add_words(
                from_int_scaled(x, hp_params), from_int_scaled(y, hp_params)
            )
            assert to_int_scaled(total) == x + y

    def test_width_mismatch(self):
        with pytest.raises(MixedParameterError):
            add_words((0, 0), (0, 0, 0))

    def test_single_word_format(self):
        p = HPParams(1, 0)
        total = add_words(from_double(3.0, p), from_double(4.0, p))
        assert to_double(total, p) == 7.0


class TestOverflowDetection:
    def test_positive_overflow(self):
        a = from_int_scaled(P21.max_int, P21)
        b = from_int_scaled(1, P21)
        with pytest.raises(AdditionOverflowError):
            add_words_checked(a, b)

    def test_negative_overflow(self):
        a = from_int_scaled(P21.min_int, P21)
        b = from_int_scaled(-1, P21)
        with pytest.raises(AdditionOverflowError):
            add_words_checked(a, b)

    def test_mixed_signs_never_overflow(self):
        a = from_int_scaled(P21.max_int, P21)
        b = from_int_scaled(P21.min_int, P21)
        assert to_int_scaled(add_words_checked(a, b)) == -1

    def test_unchecked_wraps_silently(self):
        a = from_int_scaled(P21.max_int, P21)
        b = from_int_scaled(1, P21)
        assert to_int_scaled(add_words(a, b)) == P21.min_int


class TestNegateSub:
    def test_negate_roundtrip(self, hp_params):
        for x in (0.5, -0.5, 1234.25, -0.0078125):
            words = from_double(x, hp_params)
            assert to_double(negate_words(words), hp_params) == -x

    def test_sub(self):
        a = from_double(5.5, P32)
        b = from_double(2.25, P32)
        assert to_double(sub_words(a, b), P32) == 3.25

    def test_sub_to_negative(self):
        a = from_double(1.0, P32)
        b = from_double(3.5, P32)
        assert to_double(sub_words(a, b), P32) == -2.5

    def test_x_minus_x_is_zero(self):
        a = from_double(0.1, P32)
        assert sub_words(a, a) == (0, 0, 0)
