"""Unit tests for double <-> HP conversion (paper Listing 1)."""

from __future__ import annotations

import math
from fractions import Fraction

import pytest

from repro.core.params import HPParams
from repro.core.scalar import (
    from_double,
    from_double_listing1,
    from_int_scaled,
    to_double,
    to_int_scaled,
)
from repro.errors import (
    ConversionOverflowError,
    MixedParameterError,
    NormalizationOverflowError,
    UnderflowWarning,
)

P32 = HPParams(3, 2)


class TestFromDouble:
    def test_zero(self):
        assert from_double(0.0, P32) == (0, 0, 0)
        assert from_double(-0.0, P32) == (0, 0, 0)

    def test_one(self):
        assert from_double(1.0, P32) == (1, 0, 0)

    def test_half(self):
        assert from_double(0.5, P32) == (0, 1 << 63, 0)

    def test_negative_one(self):
        # Two's complement over the 192-bit field.
        assert from_double(-1.0, P32) == (2**64 - 1, 0, 0)

    def test_negative_half(self):
        assert from_double(-0.5, P32) == (2**64 - 1, 1 << 63, 0)

    def test_smallest_increment(self):
        assert from_double(2.0**-128, P32) == (0, 0, 1)
        assert from_double(-(2.0**-128), P32) == (
            2**64 - 1,
            2**64 - 1,
            2**64 - 1,
        )

    def test_fig3_style_example(self):
        """The paper's Fig. 3 walks 2.5 + (-1.25); check the operands."""
        p = HPParams(2, 1)
        assert from_double(2.5, p) == (2, 1 << 63)
        assert from_double(-1.25, p) == (2**64 - 2, 3 << 62)

    def test_rejects_nan_and_inf(self):
        for bad in (float("nan"), float("inf"), float("-inf")):
            with pytest.raises(ConversionOverflowError):
                from_double(bad, P32)

    def test_overflow_positive_boundary(self):
        p = HPParams(2, 1)
        with pytest.raises(ConversionOverflowError):
            from_double(2.0**63, p)
        assert from_double(2.0**63 - 2048, p)[0] < 1 << 63

    def test_negative_boundary_admitted(self):
        p = HPParams(2, 1)
        words = from_double(-(2.0**63), p)
        assert words == (1 << 63, 0)

    def test_truncation_toward_zero(self):
        # 2**-129 is below the (3,2) resolution: drops to zero either sign.
        assert from_double(2.0**-129, P32) == (0, 0, 0)
        assert from_double(-(2.0**-129), P32) == (0, 0, 0)

    def test_truncation_keeps_high_bits(self):
        x = 1.0 + 2.0**-130  # not representable in double anyway -> 1.0
        assert from_double(x, P32) == from_double(1.0, P32)
        y = (1.0 + 2.0**-52) * 2.0**-100  # tail below 2**-128 truncates
        words = from_double(y, P32)
        assert to_int_scaled(words) == (1 << 28)  # only the 2**-100 bit

    def test_underflow_warning(self):
        with pytest.warns(UnderflowWarning):
            from_double((1.0 + 2.0**-52) * 2.0**-100, P32, warn_underflow=True)

    def test_no_warning_when_exact(self):
        import warnings

        with warnings.catch_warnings():
            warnings.simplefilter("error")
            from_double(0.125, P32, warn_underflow=True)

    def test_subnormal_input(self):
        p = HPParams(2, 1)
        assert from_double(5e-324, p) == (0, 0)  # quantized to zero

    def test_matches_fraction_semantics(self, hp_params):
        for x in (0.1, -0.1, 3.5, -3.5, 1e-10, -1e-10):
            words = from_double(x, hp_params)
            expected = (
                abs(Fraction(x)) * hp_params.scale
            ).__floor__() * (1 if x > 0 else -1)
            assert to_int_scaled(words) == expected


class TestListing1Parity:
    """The bit-faithful Listing 1 port agrees with the exact path on all
    inputs satisfying the paper's precondition."""

    IN_PRECISION = [0.0, 1.0, -1.0, 0.1, -0.1, 2.5, -2.5, 1e15, -1e15,
                    2.0**-128, -(2.0**-128), 0.0009765625, -3.14159e10]

    @pytest.mark.parametrize("x", IN_PRECISION)
    def test_parity(self, x):
        assert from_double_listing1(x, P32) == from_double(x, P32)

    def test_parity_across_formats(self, hp_params):
        for x in (0.5, -0.5, 42.0, -42.0):
            assert from_double_listing1(x, hp_params) == from_double(
                x, hp_params
            )

    def test_documented_divergence_on_subresolution_negative(self):
        """Listing 1's look-ahead mis-carries when a negative input has
        bits below the resolution (violating the paper's range
        precondition).  Pin the behaviour so regressions are visible."""
        p = HPParams(2, 1)
        x = -(2.0**-65)
        assert from_double(x, p) == (0, 0)           # truncates to zero
        assert from_double_listing1(x, p) == (2**64 - 1, 0)  # = -1.0 (!)

    def test_listing1_rejects_out_of_range(self):
        p = HPParams(2, 1)
        with pytest.raises(ConversionOverflowError):
            from_double_listing1(2.0**63, p)
        with pytest.raises(ConversionOverflowError):
            from_double_listing1(float("nan"), p)


class TestToDouble:
    def test_roundtrip_exact(self, hp_params):
        for x in (0.0, 1.0, -1.0, 0.1, -0.1, 1234.5678, -1234.5678):
            assert to_double(from_double(x, hp_params), hp_params) == x

    def test_rounding_half_even(self):
        # Value exactly between two doubles: 1 + 2**-53 rounds to 1.0.
        scaled = (P32.scale + (P32.scale >> 53))
        assert to_double(from_int_scaled(scaled, P32), P32) == 1.0

    def test_width_mismatch(self):
        with pytest.raises(MixedParameterError):
            to_double((0, 0), P32)

    def test_overflow_to_double(self):
        # HP(8,4) max (~5.8e76) fits double, but a big HP(40, 2) wouldn't;
        # construct a scaled int beyond double range.
        p = HPParams(40, 2)
        huge = from_int_scaled((1 << (64 * 40 - 2)), p)
        with pytest.raises(NormalizationOverflowError):
            to_double(huge, p)


class TestFromIntScaled:
    def test_bounds(self):
        with pytest.raises(ConversionOverflowError):
            from_int_scaled(P32.max_int + 1, P32)
        with pytest.raises(ConversionOverflowError):
            from_int_scaled(P32.min_int - 1, P32)
        assert from_int_scaled(P32.max_int, P32)[0] == (1 << 63) - 1
        assert from_int_scaled(P32.min_int, P32)[0] == 1 << 63

    def test_roundtrip(self):
        for v in (0, 1, -1, 12345, -12345, P32.max_int, P32.min_int):
            assert to_int_scaled(from_int_scaled(v, P32)) == v
