"""Property tests pinning the small superaccumulator to the word path.

The small engine (:mod:`repro.core.smallacc`) replaces the bigint fold
with in-place deferred carry propagation; like the superacc tests, every
assertion here is *bit identity* — with the words engine, the scalar
oracle (:func:`scatter_one`), and across merges — never closeness.  The
carry machinery gets targeted stress via a tiny ``propagate_limit`` and
the canonical-form sweep.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.accumulator import HPAccumulator
from repro.core.params import HPParams
from repro.core.smallacc import (
    PROPAGATE_LIMIT,
    SmallAccumulator,
    canonical_chunks,
    chunk_count,
    scatter_one,
    smallacc_total,
)
from repro.core.superacc import bins_from_int, fold_bins, superacc_total
from repro.core.vectorized import batch_sum_doubles
from repro.errors import (
    AdditionOverflowError,
    ConversionOverflowError,
    MixedParameterError,
)

from tests.core.test_superacc import adversarial_pool

P = HPParams(3, 2)


class TestDeferredCarryBound:
    def test_propagate_limit_leaves_headroom(self):
        # One unit bounds a chunk by 2**33; merging may add one more
        # residue unit past the limit, so the worst case is
        # (PROPAGATE_LIMIT + 1) units — still inside int64.
        assert (PROPAGATE_LIMIT + 1) * (1 << 33) < (1 << 63)

    def test_chunk_count_matches_bins(self, hp_params):
        assert chunk_count(hp_params) >= 3

    def test_propagate_limit_validation(self):
        with pytest.raises(ValueError):
            SmallAccumulator(P, propagate_limit=0)
        with pytest.raises(ValueError):
            SmallAccumulator(P, propagate_limit=PROPAGATE_LIMIT + 1)

    def test_carry_boundary_at_deferred_limit(self, rng):
        """Force a propagation on every chunk boundary with the smallest
        legal limits and confirm exactness is untouched."""
        xs = adversarial_pool(P, rng, 512)
        reference = superacc_total(xs, P)
        for limit in (1, 2, 3, 7):
            engine = SmallAccumulator(
                P, chunk=5, backend="pure", propagate_limit=limit
            )
            for i in range(0, len(xs), 13):
                engine.absorb(xs[i : i + 13])
            assert engine.total() == reference

    def test_interleaved_propagate_calls_are_neutral(self, rng):
        xs = adversarial_pool(P, rng, 300)
        engine = SmallAccumulator(P, backend="pure")
        for i in range(0, len(xs), 50):
            engine.absorb(xs[i : i + 50])
            engine.propagate()
        assert engine.total() == superacc_total(xs, P)


class TestScalarOracle:
    def test_scatter_one_elementwise_sum_matches_engine(self, rng, hp_params):
        """Summing per-value chunk tuples elementwise reproduces the
        engine's canonical chunk state exactly — the regress anchor."""
        xs = adversarial_pool(hp_params, rng, 400)
        nchunks = chunk_count(hp_params)
        acc = [0] * nchunks
        for x in xs:
            for i, limb in enumerate(scatter_one(float(x), hp_params)):
                acc[i] += limb
        engine = SmallAccumulator(hp_params, backend="pure")
        engine.absorb(xs)
        engine.propagate()
        assert engine.chunks == canonical_chunks(fold_bins(acc), nchunks)
        assert fold_bins(acc) == engine.total()

    def test_scatter_one_rejects_nonfinite(self, hp_params):
        for bad in (float("nan"), float("inf"), float("-inf")):
            with pytest.raises(ConversionOverflowError):
                scatter_one(bad, hp_params)

    def test_scatter_one_denormals(self, hp_params):
        """The smallest subnormals must decompose exactly (they may
        truncate to zero when below the format's resolution)."""
        from fractions import Fraction

        frac = hp_params.frac_bits
        for x in (5e-324, -5e-324, 2.0**-1022, -(2.0**-1022), 2.0**-1040):
            got = fold_bins(scatter_one(x, hp_params))
            ref = Fraction(x) * (1 << frac)
            ref = int(ref) if ref >= 0 else -int(-ref)  # trunc toward zero
            assert got == ref, repr(x)

    def test_single_value_matches_scalar_accumulator(self, hp_params):
        for x in (1.5, -2.25, 0.0, -0.0, 2.0**-40, 5e-324):
            acc = HPAccumulator(hp_params)
            acc.add(x)
            engine = SmallAccumulator(hp_params, backend="pure")
            engine.absorb(np.array([x]))
            assert engine.to_words() == acc.words


class TestBitIdentity:
    def test_matches_words_engine(self, rng, hp_params):
        xs = adversarial_pool(hp_params, rng)
        assert batch_sum_doubles(xs, hp_params, method="small") == (
            batch_sum_doubles(xs, hp_params, method="words")
        )

    def test_matches_superacc(self, rng, hp_params):
        xs = adversarial_pool(hp_params, rng, 900)
        assert smallacc_total(xs, hp_params, backend="pure") == (
            superacc_total(xs, hp_params)
        )

    def test_permutation_invariant(self, rng, hp_params):
        xs = adversarial_pool(hp_params, rng, 800)
        reference = smallacc_total(xs, hp_params)
        for _ in range(3):
            assert smallacc_total(rng.permutation(xs), hp_params) == reference

    def test_chunk_invariant(self, rng, hp_params):
        xs = adversarial_pool(hp_params, rng, 701)
        reference = smallacc_total(xs, hp_params)
        for chunk in (1, 3, 64, 1 << 20):
            assert smallacc_total(xs, hp_params, chunk=chunk) == reference

    def test_alternating_sign_cancellation_is_exact_zero(self, rng, hp_params):
        """x, -x interleaved (the adversarial ordering for float sums)
        must land on exactly zero chunks, not just a zero double."""
        xs = adversarial_pool(hp_params, rng, 600)
        paired = np.empty(2 * len(xs))
        paired[0::2] = xs
        paired[1::2] = -xs
        engine = SmallAccumulator(hp_params, backend="pure")
        engine.absorb(paired)
        assert engine.total() == 0
        assert engine.to_double() == 0.0
        engine.propagate()
        assert engine.chunks == (0,) * chunk_count(hp_params)

    def test_nonfinite_rejection_parity_with_superacc(self, hp_params):
        """inf/NaN raise the same error type, and a partial batch leaves
        no residue in either engine."""
        for bad in (float("nan"), float("inf"), float("-inf")):
            xs = np.array([1.0, bad, 2.0])
            with pytest.raises(ConversionOverflowError):
                smallacc_total(xs, hp_params)
            with pytest.raises(ConversionOverflowError):
                superacc_total(xs, hp_params)
            engine = SmallAccumulator(hp_params, backend="pure")
            with pytest.raises(ConversionOverflowError):
                engine.absorb(xs)
            assert engine.total() == 0

    def test_out_of_range_element_rejected(self):
        with pytest.raises(ConversionOverflowError, match="element 1"):
            smallacc_total(np.array([0.0, 1e30, 0.0]), HPParams(2, 1))

    def test_range_overflow_raises(self):
        params = HPParams(2, 1)
        xs = np.full(4, 2.0**62)
        with pytest.raises(AdditionOverflowError):
            batch_sum_doubles(xs, params, method="small")


class TestMergeAlgebra:
    def test_merge_associativity(self, rng, hp_params):
        """(a + b) + c == a + (b + c) at the chunk level."""
        xs = adversarial_pool(hp_params, rng, 900)
        parts = np.array_split(xs, 3)

        def eng(data):
            e = SmallAccumulator(hp_params, backend="pure")
            e.absorb(data)
            return e

        left = eng(parts[0])
        left.merge(eng(parts[1]))
        left.merge(eng(parts[2]))

        bc = eng(parts[1])
        bc.merge(eng(parts[2]))
        right = eng(parts[0])
        right.merge(bc)

        left.propagate()
        right.propagate()
        assert left.chunks == right.chunks
        assert left.count == right.count == len(xs)

    def test_split_merge_matches_one_shot(self, rng, hp_params):
        xs = adversarial_pool(hp_params, rng, 800)
        one = SmallAccumulator(hp_params, backend="pure")
        one.absorb(xs)
        for pieces in (2, 5, 7):
            merged = SmallAccumulator(hp_params, backend="pure")
            for part in np.array_split(xs, pieces):
                local = SmallAccumulator(hp_params, backend="pure")
                local.absorb(part)
                merged.merge(local)
            assert merged.to_words() == one.to_words()

    def test_merge_chunks_roundtrip(self, rng, hp_params):
        xs = adversarial_pool(hp_params, rng, 300)
        src = SmallAccumulator(hp_params, backend="pure")
        src.absorb(xs)
        src.propagate()
        dst = SmallAccumulator(hp_params, backend="pure")
        dst.merge_chunks(src.chunks, count=src.count)
        assert dst.total() == src.total()
        assert dst.count == src.count

    def test_merge_chunks_rejects_wrong_arity(self):
        engine = SmallAccumulator(P)
        with pytest.raises(ValueError):
            engine.merge_chunks((1, 2, 3) * 99)

    def test_merge_identity_is_neutral(self, rng, hp_params):
        xs = adversarial_pool(hp_params, rng, 200)
        engine = SmallAccumulator(hp_params, backend="pure")
        engine.absorb(xs)
        before = engine.total()
        engine.merge(SmallAccumulator(hp_params, backend="pure"))
        assert engine.total() == before

    def test_mixed_params_merge_rejected(self):
        a = SmallAccumulator(HPParams(2, 1))
        b = SmallAccumulator(HPParams(3, 2))
        with pytest.raises(MixedParameterError):
            a.merge(b)

    def test_merge_propagates_at_unit_budget(self, rng):
        """A merge whose combined unit account exceeds the limit must
        propagate first, not overflow; exercised with a tiny limit."""
        xs = adversarial_pool(P, rng, 400)
        a = SmallAccumulator(P, backend="pure", propagate_limit=4)
        b = SmallAccumulator(P, backend="pure", propagate_limit=4)
        a.absorb(xs[:200])
        b.absorb(xs[200:])
        a.merge(b)
        assert a.total() == superacc_total(xs, P)


class TestCanonicalForm:
    def test_propagate_yields_bins_from_int(self, rng, hp_params):
        xs = adversarial_pool(hp_params, rng, 500)
        engine = SmallAccumulator(hp_params, backend="pure")
        engine.absorb(xs)
        engine.propagate()
        assert engine.chunks == bins_from_int(
            engine.total(), chunk_count(hp_params)
        )

    def test_canonical_chunks_roundtrip(self, rng, hp_params):
        nchunks = chunk_count(hp_params)
        for _ in range(20):
            value = int(rng.integers(-(2**40), 2**40))
            assert fold_bins(canonical_chunks(value, nchunks)) == value

    def test_reset(self, rng):
        engine = SmallAccumulator(P)
        engine.absorb(rng.uniform(-1, 1, 100))
        engine.reset()
        assert engine.total() == 0
        assert engine.count == 0

    def test_empty_absorb(self):
        engine = SmallAccumulator(P)
        engine.absorb(np.array([], dtype=np.float64))
        assert engine.to_words() == (0,) * P.n

    def test_repr_names_backend(self):
        engine = SmallAccumulator(P, backend="pure")
        assert "backend='pure'" in repr(engine)
