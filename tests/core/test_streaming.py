"""Unit/property tests for the adaptive (future-work) accumulator."""

from __future__ import annotations

import math
from fractions import Fraction

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.params import HPParams
from repro.core.streaming import AdaptiveAccumulator
from repro.errors import ConversionOverflowError

any_finite = st.floats(allow_nan=False, allow_infinity=False,
                       min_value=-1e200, max_value=1e200)


class TestAdaptiveBasics:
    def test_empty(self):
        acc = AdaptiveAccumulator()
        assert acc.to_double() == 0.0 and acc.count == 0

    def test_exact_simple(self):
        acc = AdaptiveAccumulator()
        acc.extend([0.1, 0.2, -0.1, -0.2])
        assert acc.to_double() == 0.0

    def test_widens_downward_for_tiny_values(self):
        acc = AdaptiveAccumulator()
        acc.add(1.0)
        k0 = acc.params.k
        acc.add(2.0**-500)
        assert acc.params.k > k0
        assert acc.widenings >= 1
        assert acc.to_fraction() == 1 + Fraction(2) ** -500

    def test_widens_upward_for_huge_values(self):
        acc = AdaptiveAccumulator()
        acc.add(1e300)
        assert acc.params.max_value > 1e300
        assert acc.to_double() == 1e300

    def test_the_papers_flaw_scenario(self):
        """The motivating failure: huge and tiny values in one stream.
        Static params would overflow or truncate; adaptive is exact."""
        acc = AdaptiveAccumulator()
        acc.extend([1e20, 2.0**-300, -1e20])
        assert acc.to_double() == 2.0**-300

    def test_subnormals(self):
        acc = AdaptiveAccumulator()
        acc.add(5e-324)
        acc.add(5e-324)
        assert acc.to_double() == 1e-323

    def test_rejects_nonfinite(self):
        acc = AdaptiveAccumulator()
        for bad in (float("nan"), float("inf")):
            with pytest.raises(ConversionOverflowError):
                acc.add(bad)


class TestFormatDiscovery:
    def test_initial_format_respected(self):
        acc = AdaptiveAccumulator(initial=HPParams(4, 2))
        acc.add(1.0)
        assert acc.params.n >= 4 and acc.params.k >= 2

    def test_format_is_join_of_demands(self):
        """Order-free format discovery: any permutation of the stream
        ends at the same (N, k)."""
        import itertools

        values = [1e18, 2.0**-200, -3.5, 1e-5]
        formats = set()
        sums = set()
        for perm in itertools.permutations(values):
            acc = AdaptiveAccumulator()
            acc.extend(perm)
            formats.add(acc.params)
            sums.add(acc.to_fraction())
        assert len(formats) == 1
        assert len(sums) == 1


class TestMergeAndExport:
    def test_merge_exact(self):
        a, b = AdaptiveAccumulator(), AdaptiveAccumulator()
        a.extend([1e20, 1.5])
        b.extend([2.0**-300, -1e20])
        a.merge(b)
        assert a.to_fraction() == Fraction(1.5) + Fraction(2) ** -300
        assert a.count == 4

    def test_snapshot_interoperates(self):
        from repro.core.accumulator import HPAccumulator

        acc = AdaptiveAccumulator()
        acc.extend([0.5, 0.25, -1e10])
        snap = acc.snapshot()
        ref = HPAccumulator(snap.params)
        ref.extend([0.5, 0.25, -1e10])
        assert snap.words == ref.words

    def test_snapshot_coarser_format_truncates_toward_zero(self):
        acc = AdaptiveAccumulator()
        acc.add(-(1.0 + 2.0**-52) * 2.0**-100)
        coarse = acc.snapshot(HPParams(3, 2))  # resolution 2**-128
        assert abs(coarse.to_fraction()) <= abs(acc.to_fraction())

    def test_reset(self):
        acc = AdaptiveAccumulator()
        acc.add(123.0)
        acc.reset()
        assert acc.to_double() == 0.0 and acc.widenings == 0


class TestProperties:
    @given(st.lists(any_finite, min_size=0, max_size=40))
    @settings(max_examples=60)
    def test_always_exact(self, values):
        acc = AdaptiveAccumulator()
        acc.extend(values)
        exact = sum((Fraction(v) for v in values), Fraction(0))
        assert acc.to_fraction() == exact

    @given(st.lists(any_finite, min_size=1, max_size=20),
           st.randoms(use_true_random=False))
    @settings(max_examples=40)
    def test_order_invariant(self, values, rnd):
        acc1 = AdaptiveAccumulator()
        acc1.extend(values)
        shuffled = list(values)
        rnd.shuffle(shuffled)
        acc2 = AdaptiveAccumulator()
        acc2.extend(shuffled)
        assert acc1.to_fraction() == acc2.to_fraction()
        assert acc1.params == acc2.params
