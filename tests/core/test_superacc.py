"""Property tests pinning the superaccumulator to the word-matrix path.

The exponent-binned engine (:mod:`repro.core.superacc`) is a pure
performance substitution: every test here asserts *bit identity* with
the words path or the scalar accumulator — never closeness — over
adversarial inputs (subnormals, signed zeros, range-edge magnitudes,
mass cancellation) and under every reordering a parallel schedule could
produce (permutation, chunking, split/merge).
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core.accumulator import HPAccumulator
from repro.core.params import HPParams
from repro.core.scalar import from_double, to_double
from repro.core.superacc import (
    BIN_BITS,
    FOLD_LIMIT,
    SuperAccumulator,
    bin_count,
    bins_from_int,
    fold_bins,
    scatter_double,
    superacc_total,
)
from repro.core.vectorized import batch_sum_doubles
from repro.errors import (
    AdditionOverflowError,
    ConversionOverflowError,
    MixedParameterError,
)

P = HPParams(3, 2)


def adversarial_pool(params: HPParams, rng, n: int = 2000) -> np.ndarray:
    """Sign-mixed values spanning subnormals to the format's range edge."""
    edge = 2.0 ** min(params.whole_bits - 2, 1021)
    specials = [
        0.0, -0.0, 5e-324, -5e-324, 2.0**-1022, -(2.0**-1022),
        1.0, -1.0, edge, -edge, edge / 3.0, -edge / 3.0,
    ]
    exps = rng.uniform(-60.0, min(params.whole_bits - 4, 60), n - len(specials))
    bulk = rng.choice([-1.0, 1.0], n - len(specials)) * np.exp2(exps)
    xs = np.concatenate([np.array(specials), bulk])
    return rng.permutation(xs)


class TestScatterHeadroom:
    def test_bin_count_positive(self, hp_params):
        assert bin_count(hp_params) >= 3

    def test_fold_roundtrip(self, rng, hp_params):
        nbins = bin_count(hp_params)
        limbs = [int(v) for v in rng.integers(-(2**40), 2**40, nbins)]
        value = fold_bins(limbs)
        assert fold_bins(bins_from_int(value, nbins)) == value

    def test_fold_limit_leaves_headroom(self):
        # Worst case per element per bin is (2**32-1) + (2**32-1) =
        # 2**33 - 2 (two shifted 32-bit halves land in one slot);
        # FOLD_LIMIT elements must not reach the int64 edge.
        assert FOLD_LIMIT * ((1 << 33) - 2) < (1 << 63)
        assert BIN_BITS == 32


class TestScalarMirror:
    def test_scatter_double_matches_from_double(self, rng, hp_params):
        """fold(scatter(x)) is exactly trunc(x * 2**frac_bits)."""
        from fractions import Fraction

        xs = adversarial_pool(hp_params, rng, 200)
        frac = hp_params.frac_bits
        for x in xs:
            scaled = fold_bins(scatter_double(float(x), hp_params))
            ref = Fraction(float(x)) * (1 << frac)
            ref = int(ref) if ref >= 0 else -int(-ref)  # trunc toward zero
            assert scaled == ref, repr(float(x))

    def test_scatter_double_rejects_nonfinite(self, hp_params):
        for bad in (float("nan"), float("inf"), float("-inf")):
            with pytest.raises(ConversionOverflowError):
                scatter_double(bad, hp_params)

    def test_single_value_matches_from_double(self, hp_params):
        for x in (1.5, -2.25, 0.0, -0.0, 2.0**-40):
            acc = HPAccumulator(hp_params)
            acc.add(x)
            assert acc.words == from_double(x, hp_params)
            engine = SuperAccumulator(hp_params)
            engine.absorb(np.array([x]))
            assert engine.to_words() == acc.words


class TestBitIdentity:
    def test_matches_words_engine(self, rng, hp_params):
        xs = adversarial_pool(hp_params, rng)
        assert batch_sum_doubles(xs, hp_params, method="superacc") == (
            batch_sum_doubles(xs, hp_params, method="words")
        )

    def test_matches_scalar_accumulator(self, rng, hp_params):
        xs = adversarial_pool(hp_params, rng, 500)
        acc = HPAccumulator(hp_params, check_overflow=False)
        for x in xs:
            acc.add(float(x))
        engine = SuperAccumulator(hp_params)
        engine.absorb(xs)
        assert engine.to_words() == acc.words

    def test_chunk_invariant(self, rng, hp_params):
        xs = adversarial_pool(hp_params, rng, 701)
        reference = superacc_total(xs, hp_params)
        for chunk in (1, 3, 64, 1 << 20):
            assert superacc_total(xs, hp_params, chunk=chunk) == reference

    def test_permutation_invariant(self, rng, hp_params):
        xs = adversarial_pool(hp_params, rng, 800)
        reference = superacc_total(xs, hp_params)
        for _ in range(3):
            assert superacc_total(rng.permutation(xs), hp_params) == reference

    def test_split_merge_invariant(self, rng, hp_params):
        """Partition into unequal PE slices, merge engines — the threads
        substrate's algebra — and compare against one-shot absorption."""
        xs = adversarial_pool(hp_params, rng, 900)
        one = SuperAccumulator(hp_params)
        one.absorb(xs)
        for pieces in (2, 3, 7):
            parts = np.array_split(xs, pieces)
            merged = SuperAccumulator(hp_params)
            for part in parts:
                local = SuperAccumulator(hp_params)
                local.absorb(part)
                merged.merge(local)
            assert merged.to_words() == one.to_words()

    def test_mass_cancellation_is_exact_zero(self, rng, hp_params):
        xs = adversarial_pool(hp_params, rng, 600)
        both = np.concatenate([xs, -xs])
        engine = SuperAccumulator(hp_params)
        engine.absorb(rng.permutation(both))
        assert engine.total() == 0
        assert engine.to_double() == 0.0

    def test_fold_trigger_preserves_identity(self):
        """Force many folds with a tiny FOLD_LIMIT stand-in by absorbing
        in many small chunks; the carry/bin split must stay exact."""
        params = HPParams(2, 1)
        rng = np.random.default_rng(7)
        xs = rng.uniform(-1.0, 1.0, 4096)
        engine = SuperAccumulator(params, chunk=5)
        for i in range(0, len(xs), 17):
            engine.absorb(xs[i : i + 17])
        assert engine.to_words() == batch_sum_doubles(
            xs, params, method="words"
        )


class TestEngineContract:
    def test_unknown_method_rejected(self, rng):
        with pytest.raises(ValueError, match="unknown summation method"):
            batch_sum_doubles(rng.uniform(size=4), P, method="exact")

    def test_range_overflow_raises(self):
        params = HPParams(2, 1)
        xs = np.full(4, 2.0**62)
        with pytest.raises(AdditionOverflowError):
            batch_sum_doubles(xs, params, method="superacc")

    def test_overflow_check_disabled_wraps_identically(self):
        params = HPParams(2, 1)
        xs = np.full(2, 2.0**62)
        assert batch_sum_doubles(
            xs, params, check_overflow=False, method="superacc"
        ) == batch_sum_doubles(xs, params, check_overflow=False, method="words")

    def test_out_of_range_element_rejected(self):
        with pytest.raises(ConversionOverflowError, match="element 1"):
            superacc_total(np.array([0.0, 1e30, 0.0]), HPParams(2, 1))

    def test_nan_rejected(self):
        with pytest.raises(ConversionOverflowError):
            superacc_total(np.array([1.0, float("nan")]), P)

    def test_mixed_params_merge_rejected(self):
        a = SuperAccumulator(HPParams(2, 1))
        b = SuperAccumulator(HPParams(3, 2))
        with pytest.raises(MixedParameterError):
            a.merge(b)

    def test_bins_property_elementwise_mergeable(self, rng, hp_params):
        xs = adversarial_pool(hp_params, rng, 400)
        halves = np.array_split(xs, 2)
        engines = []
        for half in halves:
            e = SuperAccumulator(hp_params)
            e.absorb(half)
            engines.append(e)
        merged_bins = tuple(
            x + y for x, y in zip(engines[0].bins, engines[1].bins)
        )
        whole = SuperAccumulator(hp_params)
        whole.absorb(xs)
        assert fold_bins(merged_bins) == whole.total()

    def test_reset(self, rng):
        engine = SuperAccumulator(P)
        engine.absorb(rng.uniform(-1, 1, 100))
        engine.reset()
        assert engine.total() == 0
        assert engine.count == 0

    def test_empty_absorb(self):
        engine = SuperAccumulator(P)
        engine.absorb(np.array([], dtype=np.float64))
        assert engine.to_words() == (0,) * P.n

    def test_accumulator_add_doubles_matches_extend(self, rng, hp_params):
        xs = adversarial_pool(hp_params, rng, 300)
        a = HPAccumulator(hp_params, check_overflow=False)
        a.extend(xs.tolist())
        b = HPAccumulator(hp_params, check_overflow=False)
        b.add_doubles(xs)
        assert a.words == b.words
        assert a.count == b.count
