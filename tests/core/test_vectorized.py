"""Unit tests for the vectorized NumPy batch engine."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core.accumulator import HPAccumulator
from repro.core.params import HPParams
from repro.core.scalar import from_double, to_double
from repro.core.vectorized import (
    batch_from_double,
    batch_sum_doubles,
    batch_sum_words,
    batch_to_double,
    column_sums_int,
)
from repro.errors import AdditionOverflowError, ConversionOverflowError

P = HPParams(3, 2)


class TestBatchFromDouble:
    def test_matches_scalar(self, rng, hp_params):
        xs = rng.uniform(-100.0, 100.0, 300)
        words = batch_from_double(xs, hp_params)
        for i in range(len(xs)):
            assert tuple(int(w) for w in words[i]) == from_double(
                float(xs[i]), hp_params
            ), f"element {i}: {xs[i]!r}"

    def test_special_values(self):
        xs = np.array([0.0, -0.0, 1.0, -1.0, 0.5, -0.5, 2.0**-128,
                       -(2.0**-128), 5e-324, -5e-324])
        words = batch_from_double(xs, P)
        for i, x in enumerate(xs):
            assert tuple(int(w) for w in words[i]) == from_double(float(x), P)

    def test_wide_exponent_range(self, rng):
        p = HPParams(8, 4)
        exps = rng.uniform(-223, 191, 200)
        xs = rng.choice([-1.0, 1.0], 200) * np.exp2(exps)
        words = batch_from_double(xs, p)
        for i, x in enumerate(xs):
            assert tuple(int(w) for w in words[i]) == from_double(float(x), p)

    def test_rejects_nan(self):
        with pytest.raises(ConversionOverflowError):
            batch_from_double(np.array([1.0, float("nan")]), P)

    def test_rejects_out_of_range_with_index(self):
        with pytest.raises(ConversionOverflowError, match="element 1"):
            batch_from_double(np.array([0.0, 1e30, 0.0]), HPParams(2, 1))

    def test_negative_boundary_admitted(self):
        p = HPParams(2, 1)
        words = batch_from_double(np.array([-(2.0**63)]), p)
        assert tuple(int(w) for w in words[0]) == (1 << 63, 0)

    def test_rejects_2d(self):
        with pytest.raises(ValueError):
            batch_from_double(np.zeros((2, 2)), P)

    def test_empty_input(self):
        words = batch_from_double(np.array([], dtype=np.float64), P)
        assert words.shape == (0, 3)


class TestBatchSum:
    def test_empty_sum_is_zero(self):
        assert batch_sum_doubles(np.array([], dtype=np.float64), P) == (0, 0, 0)

    def test_matches_scalar_accumulator(self, rng):
        xs = rng.uniform(-0.5, 0.5, 5000)
        acc = HPAccumulator(P)
        acc.extend(xs.tolist())
        assert batch_sum_doubles(xs, P) == acc.words

    def test_matches_fsum(self, rng):
        xs = rng.uniform(-1.0, 1.0, 4000)
        words = batch_sum_doubles(xs, P)
        assert to_double(words, P) == math.fsum(xs)

    def test_chunking_invariant(self, rng):
        xs = rng.uniform(-0.5, 0.5, 3001)
        assert (
            batch_sum_doubles(xs, P, chunk=100)
            == batch_sum_doubles(xs, P, chunk=7)
            == batch_sum_doubles(xs, P, chunk=10**6)
        )

    def test_permutation_invariant(self, rng):
        xs = rng.uniform(-0.5, 0.5, 2000)
        assert batch_sum_doubles(xs, P) == batch_sum_doubles(
            rng.permutation(xs), P
        )

    def test_overflow_detected(self):
        p = HPParams(2, 1)
        xs = np.full(4, 2.0**62)
        with pytest.raises(AdditionOverflowError):
            batch_sum_doubles(xs, p)

    def test_overflow_check_disabled_wraps(self):
        p = HPParams(2, 1)
        xs = np.full(2, 2.0**62)
        words = batch_sum_doubles(xs, p, check_overflow=False)
        assert to_double(words, p) == -(2.0**63)

    def test_transient_cancellation_accepted(self):
        """The true sum is in range even though some orders would wrap
        intermediates; the batch path accepts it (and the scalar path
        accepts it in the non-wrapping orders)."""
        p = HPParams(2, 1)
        xs = np.array([2.0**62, 2.0**62, -(2.0**62)])
        assert to_double(batch_sum_doubles(xs, p), p) == 2.0**62

    def test_bad_chunk(self, rng):
        with pytest.raises(ValueError):
            batch_sum_doubles(rng.uniform(size=4), P, chunk=0)


class TestBatchSumWords:
    def test_sums_rows(self, rng):
        xs = rng.uniform(-2.0, 2.0, 500)
        words = batch_from_double(xs, P)
        total = batch_sum_words(words, P)
        assert to_double(total, P) == math.fsum(xs)

    def test_shape_check(self):
        with pytest.raises(ValueError):
            batch_sum_words(np.zeros((4, 2), dtype=np.uint64), P)

    def test_column_sums_exact(self):
        rows = np.array(
            [[(1 << 64) - 1, 5], [(1 << 64) - 1, 7]], dtype=np.uint64
        )
        total = column_sums_int(rows)
        assert total == 2 * (((1 << 64) - 1) << 64) + 12


class TestBatchToDouble:
    def test_roundtrip(self, rng):
        xs = rng.uniform(-10.0, 10.0, 100)
        words = batch_from_double(xs, P)
        back = batch_to_double(words, P)
        assert np.array_equal(back, xs)

    def test_shape_check(self):
        with pytest.raises(ValueError):
            batch_to_double(np.zeros((2, 5), dtype=np.uint64), P)

    def test_vectorized_matches_scalar_oracle(self, rng, hp_params):
        """The NumPy decode against the scalar to_double loop, over rows
        biased toward rounding hazards: long runs of ones/zeros below
        the round bit (tie and sticky cases), negatives, and tiny
        magnitudes."""
        n = hp_params.n
        rows = rng.integers(0, 1 << 64, (1500, n), dtype=np.uint64)
        # bias: zero out low words to hit exact ties, saturate others to
        # hit all-ones sticky runs, clear high words for subnormal-ish
        # magnitudes
        rows[::3, n // 2:] = 0
        rows[1::3, n // 2:] = np.uint64(0xFFFFFFFFFFFFFFFF)
        rows[2::3, : max(n - 1, 1)] = 0
        signs = rng.integers(0, 2, 1500, dtype=np.uint64)
        rows[signs == 1, 0] |= np.uint64(1) << np.uint64(63)
        fast = batch_to_double(rows, hp_params)
        oracle = batch_to_double(rows, hp_params, method="scalar")
        assert np.array_equal(fast, oracle)

    def test_signed_zero_free(self):
        """Word rows equal to zero decode to +0.0, matching to_double."""
        rows = np.zeros((4, P.n), dtype=np.uint64)
        out = batch_to_double(rows, P)
        assert np.array_equal(out, np.zeros(4))
        assert not np.signbit(out).any()

    def test_negative_roundtrip(self, rng, hp_params):
        xs = -np.abs(rng.uniform(0.001, 50.0, 200))
        words = batch_from_double(xs, hp_params)
        assert np.array_equal(batch_to_double(words, hp_params), xs)

    def test_unknown_method_rejected(self):
        with pytest.raises(ValueError):
            batch_to_double(np.zeros((1, P.n), dtype=np.uint64), P,
                            method="fast")


class TestEngineParity:
    """batch_sum_doubles(method=...) is a pure engine switch."""

    def test_default_is_superacc(self, rng):
        xs = rng.uniform(-1.0, 1.0, 1000)
        assert batch_sum_doubles(xs, P) == batch_sum_doubles(
            xs, P, method="superacc"
        )

    def test_words_engine_matches(self, rng, hp_params):
        xs = rng.choice([-1.0, 1.0], 2000) * np.exp2(
            rng.uniform(-40, 40, 2000)
        )
        assert batch_sum_doubles(xs, hp_params, method="words") == (
            batch_sum_doubles(xs, hp_params, method="superacc")
        )
