"""Unit tests for the experiment workload generators."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.experiments.datasets import (
    unit_range_uniform,
    wide_range_uniform,
    zero_sum_set,
)
from repro.summation.exact import fraction_sum


class TestZeroSumSet:
    def test_exact_zero_sum(self):
        values = zero_sum_set(128)
        assert fraction_sum(values) == 0

    def test_paired_negations(self):
        values = np.sort(zero_sum_set(64))
        # Sorted, the first 32 are the exact negations of the last 32.
        assert np.array_equal(values[:32], -values[::-1][:32])

    def test_value_range(self):
        values = zero_sum_set(256)
        assert np.abs(values).max() <= 1e-3

    def test_rejects_odd_or_tiny(self):
        with pytest.raises(ValueError):
            zero_sum_set(63)
        with pytest.raises(ValueError):
            zero_sum_set(0)

    def test_deterministic_with_seed(self):
        from repro.util.rng import default_rng

        a = zero_sum_set(64, default_rng(1))
        b = zero_sum_set(64, default_rng(1))
        assert np.array_equal(a, b)


class TestWideRangeUniform:
    def test_fig4_window(self):
        xs = wide_range_uniform(5000)
        mags = np.abs(xs)
        assert mags.max() < 2.0**192
        assert mags.min() >= 2.0**-224
        # The sweep actually exercises a wide chunk of the window.
        assert mags.max() / mags.min() > 2.0**200

    def test_signs_mixed(self):
        xs = wide_range_uniform(1000)
        assert (xs > 0).any() and (xs < 0).any()

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            wide_range_uniform(0)
        with pytest.raises(ValueError):
            wide_range_uniform(10, exponent_span=(5, 5))

    def test_representable_in_hp84(self):
        from repro.core.params import HPParams
        from repro.core.vectorized import batch_from_double

        xs = wide_range_uniform(500)
        batch_from_double(xs, HPParams(8, 4))  # must not overflow


class TestUnitRangeUniform:
    def test_range(self):
        xs = unit_range_uniform(10000)
        assert xs.min() >= -0.5 and xs.max() <= 0.5

    def test_default_size_is_32m(self):
        """The Figs. 5-8 problem size (checked without allocating it)."""
        import inspect

        from repro.experiments import datasets

        sig = inspect.signature(datasets.unit_range_uniform)
        assert sig.parameters["n"].default == 1 << 25

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            unit_range_uniform(0)
