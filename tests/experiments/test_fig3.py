"""Tests for the Fig. 3 worked-example renderer."""

from __future__ import annotations

import pytest

from repro.core.params import HPParams
from repro.experiments.fig3 import FIG3_OPERANDS, render_fig3


class TestRenderFig3:
    def test_paper_example(self):
        text = render_fig3()
        # The paper's operands and result.
        assert "2.5" in text and "-1.25" in text and "1.25" in text
        # The exact word patterns of the walkthrough.
        assert "0000000000000002 | 8000000000000000" in text  # 2.5
        assert "fffffffffffffffe | c000000000000000" in text  # -1.25
        assert "0000000000000001 | 4000000000000000" in text  # 1.25
        assert "carry 1" in text
        assert "two's complement" in text

    def test_operands_constant(self):
        assert FIG3_OPERANDS == (2.5, -1.25)

    def test_custom_operands(self):
        text = render_fig3(0.5, 0.5, HPParams(2, 1))
        assert "1.0" in text  # the result line

    def test_wider_format(self):
        text = render_fig3(1e10, -2.5e9, HPParams(3, 2))
        assert "7500000000.0" in text

    def test_renderer_consistent_with_arithmetic(self):
        """The walkthrough's asserted internal check: the rendered steps
        must reproduce add_words exactly (the assert inside raises on
        divergence)."""
        for a, b in [(0.1, 0.2), (-1.5, 0.25), (123.0, -456.5)]:
            render_fig3(a, b, HPParams(3, 2))
