"""Tests for the invariance-matrix experiment driver."""

from __future__ import annotations

import pytest

from repro.core.params import HPParams
from repro.experiments.invariance import InvarianceMatrix, run_invariance_matrix


class TestInvarianceMatrix:
    @pytest.fixture(scope="class")
    def matrix(self):
        return run_invariance_matrix(n=512)

    def test_all_strategies_agree(self, matrix):
        assert matrix.all_identical
        assert matrix.distinct() == 1

    def test_comprehensive_coverage(self, matrix):
        names = " ".join(matrix.words)
        for expected in ("scalar", "vectorized", "threads", "mpi", "gpu",
                         "phi", "adaptive", "multi-bank", "schedule"):
            assert expected in names, expected

    def test_report_format(self, matrix):
        report = matrix.report()
        assert "1 distinct word pattern" in report
        assert report.count("[ok") == len(matrix.words)
        assert "DIVERGED" not in report

    def test_divergence_detection(self):
        """A corrupted entry must surface in the report."""
        m = InvarianceMatrix(params=HPParams(2, 1))
        m.words["good"] = (0, 1)
        m.words["bad"] = (0, 2)
        assert not m.all_identical
        assert m.distinct() == 2
        assert "DIVERGED" in m.report()

    def test_seed_changes_data_not_property(self):
        a = run_invariance_matrix(n=256, seed=10)
        b = run_invariance_matrix(n=256, seed=11)
        assert a.all_identical and b.all_identical
        reference_a = next(iter(a.words.values()))
        reference_b = next(iter(b.words.values()))
        assert reference_a != reference_b  # different data, both invariant

    def test_custom_params(self):
        m = run_invariance_matrix(n=256, params=HPParams(3, 2))
        assert m.all_identical
        assert m.params == HPParams(3, 2)
