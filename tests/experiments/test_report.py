"""Unit tests for the experiment report renderers."""

from __future__ import annotations

import pytest

from repro.experiments.report import (
    format_fig1,
    format_fig2,
    format_fig4_measured,
    format_fig4_model,
    format_scaling_figure,
)
from repro.experiments.rounding import run_fig1, run_fig2
from repro.experiments.runtime import run_fig4_measured
from repro.experiments.scaling import run_fig5_openmp
from repro.perfmodel.model import fig4_model_sweep


class TestFormatters:
    def test_fig1(self):
        text = format_fig1(run_fig1(set_sizes=(64,), n_trials=16))
        assert "sigma(double)" in text and "64" in text and "yes" in text

    def test_fig2(self):
        text = format_fig2(run_fig2(n_trials=32, bins=5))
        assert "stdev" in text
        assert text.count("[") >= 5  # one line per bin

    def test_fig4_measured(self):
        result = run_fig4_measured(sizes=(128, 256), trials=1)
        text = format_fig4_measured(result)
        assert "Hallberg config" in text
        assert ("HP >= Hallberg" in text) or ("no crossover" in text)

    def test_fig4_model(self):
        text = format_fig4_model(fig4_model_sweep([128, 1 << 24]))
        assert "speedup" in text and "128" in text

    def test_scaling_figure(self):
        fig = run_fig5_openmp(validate_n=256)
        text = format_scaling_figure(fig)
        assert "modeled runtime" in text
        assert "bit-identical across PEs" in text
        assert "spread across PE counts" in text
