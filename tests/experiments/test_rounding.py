"""Unit tests for the Fig. 1/2 rounding-error experiment."""

from __future__ import annotations

import pytest

from repro.core.params import HPParams
from repro.experiments.rounding import (
    PAPER_SET_SIZES,
    PAPER_TRIALS,
    run_fig1,
    run_fig2,
)


class TestProtocolConstants:
    def test_paper_values(self):
        assert PAPER_TRIALS == 16384
        assert PAPER_SET_SIZES[0] == 64
        assert PAPER_SET_SIZES[-1] == 1024
        assert all(b - a == 64 for a, b in zip(PAPER_SET_SIZES, PAPER_SET_SIZES[1:]))


class TestFig1:
    @pytest.fixture(scope="class")
    def result(self):
        return run_fig1(set_sizes=(64, 256, 1024), n_trials=256, seed=7)

    def test_hp_always_exact(self, result):
        """The paper's claim: HP(3,2) computed the sum as zero for all
        test cases."""
        for row in result.rows:
            assert row.hp_exact
            assert row.hp_stats.stdev == 0.0
            assert row.hp_stats.mean == 0.0

    def test_double_error_grows_with_n(self, result):
        stdevs = [r.double_stats.stdev for r in result.rows]
        assert stdevs[0] < stdevs[1] < stdevs[2]

    def test_double_error_magnitude(self, result):
        """Fig. 1's scale: sigma ~1e-18 at n=64, ~1e-17 at n=1024."""
        by_n = {r.n: r.double_stats.stdev for r in result.rows}
        assert 1e-19 < by_n[64] < 5e-18
        assert 2e-18 < by_n[1024] < 5e-17

    def test_roughly_linear_growth(self, result):
        """The paper: error grows ~linearly in n (not sqrt(n)) because
        the negation pairing biases the rounding direction."""
        by_n = {r.n: r.double_stats.stdev for r in result.rows}
        growth = by_n[1024] / by_n[64]
        assert growth > 4.0  # sqrt(1024/64) would be exactly 4

    def test_stdevs_series_shape(self, result):
        series = result.stdevs()
        assert [s[0] for s in series] == [64, 256, 1024]

    def test_custom_hp_params(self):
        res = run_fig1(set_sizes=(64,), n_trials=32, hp_params=HPParams(2, 1))
        assert res.rows[0].hp_exact


class TestFig2:
    @pytest.fixture(scope="class")
    def result(self):
        return run_fig2(n_trials=512, seed=7, bins=21)

    def test_centred_near_zero(self, result):
        assert abs(result.stats.mean) < result.stats.stdev

    def test_histogram_covers_trials(self, result):
        assert int(result.counts.sum()) == 512
        assert len(result.bin_edges) == len(result.counts) + 1

    def test_spread_matches_fig1_scale(self, result):
        assert 1e-18 < result.stats.stdev < 1e-16

    def test_deterministic(self):
        a = run_fig2(n_trials=64, seed=3)
        b = run_fig2(n_trials=64, seed=3)
        assert a.residuals == b.residuals
