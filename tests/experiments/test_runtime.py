"""Unit tests for the Fig. 4 measured-runtime driver."""

from __future__ import annotations

import pytest

from repro.experiments.runtime import (
    DEFAULT_FIG4_SIZES,
    PAPER_FIG4_SIZES,
    run_fig4_measured,
)


class TestSweepDefinitions:
    def test_paper_sweep_reaches_16m(self):
        assert PAPER_FIG4_SIZES[0] == 128
        assert PAPER_FIG4_SIZES[-1] == 1 << 24

    def test_default_sweep_is_subset_scale(self):
        assert set(DEFAULT_FIG4_SIZES) <= set(
            2**i for i in range(7, 25)
        )


class TestMeasuredSweep:
    @pytest.fixture(scope="class")
    def result(self):
        return run_fig4_measured(sizes=(256, 4096, 1 << 16), trials=1, seed=3)

    def test_rows_cover_sizes(self, result):
        assert [r.n for r in result.rows] == [256, 4096, 1 << 16]

    def test_hallberg_params_follow_table2_solver(self, result):
        for row in result.rows:
            assert row.hallberg_params.max_summands >= row.n
            assert row.hallberg_params.precision_bits >= 512

    def test_times_positive_and_grow(self, result):
        for row in result.rows:
            assert row.hp_seconds > 0 and row.hallberg_seconds > 0
        assert result.rows[-1].hp_seconds > result.rows[0].hp_seconds

    def test_speedup_definition(self, result):
        row = result.rows[0]
        assert row.speedup == pytest.approx(
            row.hallberg_seconds / row.hp_seconds
        )

    def test_crossover_reporting(self, result):
        cross = result.crossover()
        if cross is not None:
            assert cross in (256, 4096, 1 << 16)
