"""Unit tests for the Figs. 5-8 experiment drivers."""

from __future__ import annotations

import pytest

from repro.experiments.scaling import (
    FIG5_THREADS,
    FIG6_PROCS,
    FIG7_THREADS,
    FIG8_THREADS,
    run_fig5_openmp,
    run_fig6_mpi,
    run_fig7_cuda,
    run_fig8_phi,
)

VALIDATE_N = 1 << 10  # keep driver tests quick


class TestFig5Driver:
    @pytest.fixture(scope="class")
    def fig(self):
        return run_fig5_openmp(validate_n=VALIDATE_N)

    def test_panels_complete(self, fig):
        assert fig.pes == FIG5_THREADS
        for name in ("double", "hp", "hallberg"):
            assert len(fig.model_times[name]) == len(FIG5_THREADS)
            assert len(fig.model_efficiency[name]) == len(FIG5_THREADS)

    def test_exact_methods_invariant(self, fig):
        assert fig.substrate_invariant["hp"]
        assert fig.substrate_invariant["hallberg"]

    def test_substrate_values_exact(self, fig):
        assert fig.substrate_values["hp"][0] == fig.substrate_values["hp"][-1]


class TestFig6Driver:
    @pytest.fixture(scope="class")
    def fig(self):
        return run_fig6_mpi(validate_n=VALIDATE_N)

    def test_pes_match_paper(self, fig):
        assert fig.pes == FIG6_PROCS == (1, 2, 4, 8, 16, 32, 64, 128)

    def test_invariance(self, fig):
        assert fig.substrate_invariant["hp"]
        assert fig.substrate_invariant["hallberg"]


class TestFig7Driver:
    @pytest.fixture(scope="class")
    def fig(self):
        return run_fig7_cuda(validate_n=VALIDATE_N)

    def test_thread_sweep_matches_paper(self, fig):
        assert fig.pes == FIG7_THREADS
        assert fig.pes[0] == 256 and fig.pes[-1] == 32768

    def test_model_plateaus(self, fig):
        hp = fig.model_times["hp"]
        assert hp[-1] == pytest.approx(hp[-2])  # 16K == 32K

    def test_invariance(self, fig):
        assert fig.substrate_invariant["hp"]
        assert fig.substrate_invariant["hallberg"]


class TestFig8Driver:
    @pytest.fixture(scope="class")
    def fig(self):
        return run_fig8_phi(validate_n=VALIDATE_N)

    def test_thread_sweep_matches_paper(self, fig):
        assert fig.pes == FIG8_THREADS
        assert fig.pes[-1] == 240

    def test_invariance(self, fig):
        assert fig.substrate_invariant["hp"]
        assert fig.substrate_invariant["hallberg"]

    def test_double_drift_recorded(self, fig):
        assert "double" in fig.substrate_values
        assert fig.double_spread() >= 0.0
