"""Unit tests for the Table 1/2 generators."""

from __future__ import annotations

import pytest

from repro.experiments.tables import (
    derive_table2,
    render_table1,
    render_table2,
    table1_rows,
    table2_rows,
)


class TestTable1:
    def test_row_order_and_count(self):
        rows = table1_rows()
        assert [(r[0], r[1]) for r in rows] == [(2, 1), (3, 2), (6, 3), (8, 4)]

    def test_published_values(self):
        rows = {(r[0], r[1]): r for r in table1_rows()}
        assert rows[(2, 1)][3] == pytest.approx(9.223372e18, rel=1e-6)
        assert rows[(3, 2)][4] == pytest.approx(2.938736e-39, rel=1e-6)
        assert rows[(6, 3)][3] == pytest.approx(3.138551e57, rel=1e-6)
        assert rows[(8, 4)][4] == pytest.approx(8.636169e-78, rel=1e-6)

    def test_erratum_corrected(self):
        """The paper prints Bits=256 for (6,3); we report 384."""
        rows = {(r[0], r[1]): r for r in table1_rows()}
        assert rows[(6, 3)][2] == 384

    def test_render_contains_all_rows(self):
        text = render_table1()
        for token in ("9.223372", "3.138551", "5.789604", "8.636169"):
            assert token in text


class TestTable2:
    def test_published_rows(self):
        assert table2_rows() == [
            (10, 52, 520, 2047),
            (12, 43, 516, 1048575),
            (14, 37, 518, 67108863),
        ]

    def test_derivation_reproduces_rows(self):
        derived = derive_table2()
        assert [(d.params.n, d.params.m) for d in derived] == [
            (10, 52),
            (12, 43),
            (14, 37),
        ]

    def test_derived_budgets_sufficient(self):
        for d in derive_table2():
            assert d.params.max_summands >= d.target_summands
            assert d.params.precision_bits >= 512

    def test_render(self):
        text = render_table2()
        assert "520" in text and "Max Summands" in text
