"""Unit tests for HallbergAccumulator (budget-enforced running sums)."""

from __future__ import annotations

import math

import pytest

from repro.errors import MixedParameterError, SummandLimitError
from repro.hallberg.accumulator import HallbergAccumulator
from repro.hallberg.params import HallbergParams

P = HallbergParams(10, 38)


class TestBasics:
    def test_empty(self):
        acc = HallbergAccumulator(P)
        assert acc.to_double() == 0.0 and acc.count == 0

    def test_exact_accumulation(self, rng):
        values = rng.uniform(-5.0, 5.0, 1000)
        acc = HallbergAccumulator(P)
        acc.extend(values.tolist())
        assert acc.to_double() == math.fsum(values)

    def test_floatloop_path_equivalent(self):
        a, b = HallbergAccumulator(P), HallbergAccumulator(P)
        for x in (0.5, -0.25, 3.75, -1e-9):
            a.add(x)
            b.add_floatloop(x)
        assert a.digits == b.digits

    def test_width_check(self):
        acc = HallbergAccumulator(P)
        with pytest.raises(MixedParameterError):
            acc.add_digits((0,) * 9)

    def test_reset(self):
        acc = HallbergAccumulator(P)
        acc.add(1.0)
        acc.reset()
        assert acc.count == 0 and acc.to_double() == 0.0


class TestBudget:
    def test_budget_enforced(self):
        tight = HallbergParams(2, 61)  # budget = 2**2 - 1 = 3
        acc = HallbergAccumulator(tight)
        for _ in range(3):
            acc.add(0.5)
        with pytest.raises(SummandLimitError):
            acc.add(0.5)

    def test_merge_charges_budget(self):
        tight = HallbergParams(2, 61)
        a, b = HallbergAccumulator(tight), HallbergAccumulator(tight)
        a.add(0.5)
        a.add(0.5)
        b.add(0.5)
        b.add(0.5)
        with pytest.raises(SummandLimitError):
            a.merge(b)  # 2 + 2 > 3

    def test_merge_within_budget(self):
        a, b = HallbergAccumulator(P), HallbergAccumulator(P)
        a.add(1.5)
        b.add(2.25)
        a.merge(b)
        assert a.to_double() == 3.75 and a.count == 2

    def test_merge_rejects_mixed_params(self):
        with pytest.raises(MixedParameterError):
            HallbergAccumulator(P).merge(
                HallbergAccumulator(HallbergParams(12, 43))
            )


class TestRuntimeChecksMode:
    def test_renormalizes_instead_of_raising(self):
        tight = HallbergParams(2, 61, n_frac=1)
        acc = HallbergAccumulator(tight, runtime_checks=True)
        for _ in range(50):  # far beyond the 3-summand budget
            acc.add(0.5)
        assert acc.to_double() == 25.0
        assert acc.renormalizations > 0

    def test_exactness_preserved_across_renormalization(self, rng):
        tight = HallbergParams(4, 58)
        acc = HallbergAccumulator(tight, runtime_checks=True)
        values = rng.uniform(-2.0, 2.0, 500)
        acc.extend(values.tolist())
        assert acc.to_double() == math.fsum(values)
