"""Unit tests for the HallbergNumber value type."""

from __future__ import annotations

from fractions import Fraction

import pytest

from repro.errors import MixedParameterError, ParameterError
from repro.hallberg.hbnum import HallbergNumber
from repro.hallberg.params import HallbergParams

P = HallbergParams(10, 38)


class TestConstruction:
    def test_zero(self):
        assert HallbergNumber.zero(P).to_double() == 0.0

    def test_from_double(self):
        assert HallbergNumber.from_double(2.5, P).to_double() == 2.5

    def test_rejects_wrong_width(self):
        with pytest.raises(ParameterError):
            HallbergNumber((0,) * 9, P)

    def test_rejects_out_of_int64(self):
        with pytest.raises(ParameterError):
            HallbergNumber((1 << 63,) + (0,) * 9, P)


class TestArithmetic:
    def test_add_sub(self):
        a = HallbergNumber.from_double(1.5, P)
        b = HallbergNumber.from_double(0.25, P)
        assert (a + b).to_double() == 1.75
        assert (a - b).to_double() == 1.25

    def test_scalar_coercion(self):
        a = HallbergNumber.from_double(1.0, P)
        assert (a + 2).to_double() == 3.0
        assert (2 + a).to_double() == 3.0

    def test_neg(self):
        a = HallbergNumber.from_double(-7.125, P)
        assert (-a).to_double() == 7.125

    def test_mixed_params_rejected(self):
        a = HallbergNumber.from_double(1.0, P)
        b = HallbergNumber.from_double(1.0, HallbergParams(12, 43))
        with pytest.raises(MixedParameterError):
            a + b


class TestAliasingSemantics:
    def test_equality_is_value_based(self):
        """Unlike HPNumber, equality compares values — digit vectors
        alias (paper Sec. II.B)."""
        half = HallbergNumber.from_double(0.5, P)
        one_aliased = half + half
        one_direct = HallbergNumber.from_double(1.0, P)
        assert one_aliased.digits != one_direct.digits
        assert one_aliased == one_direct
        assert hash(one_aliased) == hash(one_direct)

    def test_is_canonical(self):
        half = HallbergNumber.from_double(0.5, P)
        assert half.is_canonical()
        assert not (half + half).is_canonical()

    def test_normalized(self):
        half = HallbergNumber.from_double(0.5, P)
        norm = (half + half).normalized()
        assert norm.is_canonical()
        assert norm.digits == HallbergNumber.from_double(1.0, P).digits


class TestAccessors:
    def test_to_fraction(self):
        x = HallbergNumber.from_double(0.1, P)
        assert x.to_fraction() == Fraction(0.1)

    def test_repr(self):
        assert "2.5" in repr(HallbergNumber.from_double(2.5, P))
