"""Tests for exact HP <-> Hallberg interoperation."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.params import HPParams
from repro.core.scalar import from_double as hp_from_double, to_double as hp_to_double
from repro.errors import ConversionOverflowError
from repro.hallberg.interop import (
    hallberg_params_covering,
    hallberg_to_hp,
    hp_params_covering,
    hp_to_hallberg,
)
from repro.hallberg.params import HallbergParams
from repro.hallberg.scalar import (
    hb_add,
    hb_from_double,
    hb_is_canonical,
    hb_to_double,
)

HB = HallbergParams(10, 38)
HP = HPParams(6, 3)

representable = st.one_of(
    st.just(0.0),
    st.floats(min_value=2.0**-137, max_value=2.0**100, allow_nan=False),
    st.floats(min_value=2.0**-137, max_value=2.0**100,
              allow_nan=False).map(lambda x: -x),
)


class TestHallbergToHP:
    @given(representable)
    @settings(max_examples=60)
    def test_value_preserved(self, x):
        digits = hb_from_double(x, HB)
        words = hallberg_to_hp(digits, HB, HP)
        assert hp_to_double(words, HP) == x

    def test_aliases_collapse_to_one_word_vector(self):
        """Any aliased representation maps to the unique HP words."""
        half = hb_from_double(0.5, HB)
        aliased = hb_add(half, half, HB)
        assert not hb_is_canonical(aliased, HB)
        direct = hb_from_double(1.0, HB)
        assert hallberg_to_hp(aliased, HB, HP) == hallberg_to_hp(
            direct, HB, HP
        ) == hp_from_double(1.0, HP)

    def test_resolution_guard(self):
        digits = hb_from_double(2.0**-150, HB)
        narrow = HPParams(2, 1)  # resolution 2**-64
        with pytest.raises(ConversionOverflowError):
            hallberg_to_hp(digits, HB, narrow)
        words = hallberg_to_hp(digits, HB, narrow, allow_truncation=True)
        assert hp_to_double(words, narrow) == 0.0


class TestHPToHallberg:
    @given(representable)
    @settings(max_examples=60)
    def test_roundtrip_through_hallberg(self, x):
        words = hp_from_double(x, HP)
        digits = hp_to_hallberg(words, HP, HB)
        assert hb_is_canonical(digits, HB)
        assert hb_to_double(digits, HB) == x
        assert hallberg_to_hp(digits, HB, HP) == words

    def test_range_guard(self):
        big = hp_from_double(2.0**150, HPParams(8, 4))
        tight = HallbergParams(4, 38)  # 76 whole bits
        with pytest.raises(ConversionOverflowError):
            hp_to_hallberg(big, HPParams(8, 4), tight)

    def test_resolution_guard(self):
        words = hp_from_double(2.0**-250, HPParams(8, 4))
        with pytest.raises(ConversionOverflowError):
            hp_to_hallberg(words, HPParams(8, 4), HB)  # HB floor 2**-190


class TestCoveringFormats:
    def test_hp_covering_roundtrips_everything(self, rng):
        target = hp_params_covering(HB)
        for x in rng.uniform(-1e9, 1e9, 50):
            digits = hb_from_double(float(x), HB)
            assert hp_to_double(hallberg_to_hp(digits, HB, target),
                                target) == x

    def test_hallberg_covering_roundtrips_everything(self, rng):
        target = hallberg_params_covering(HPParams(3, 2))
        for x in rng.uniform(-1e6, 1e6, 50):
            words = hp_from_double(float(x), HPParams(3, 2))
            digits = hp_to_hallberg(words, HPParams(3, 2), target)
            assert hb_to_double(digits, target) == x

    def test_covering_bounds(self):
        cover = hp_params_covering(HB)
        assert cover.whole_bits >= HB.whole_bits
        assert cover.frac_bits >= HB.frac_bits
