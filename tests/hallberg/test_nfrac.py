"""Property tests for asymmetric Hallberg fraction splits.

The paper's eq. (1) fixes ``n_frac = N/2``; our parameterization makes
it explicit.  These tests pin the semantics for asymmetric splits: the
format is still exact and order-invariant, with range/resolution moved
accordingly — the Hallberg analogue of HP's tunable ``k``.
"""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ConversionOverflowError
from repro.hallberg.accumulator import HallbergAccumulator
from repro.hallberg.params import HallbergParams
from repro.hallberg.scalar import (
    hb_from_double,
    hb_from_double_floatloop,
    hb_to_double,
)
from repro.hallberg.vectorized import hb_batch_sum_doubles

SPLITS = [
    HallbergParams(10, 38, n_frac=2),   # range-heavy
    HallbergParams(10, 38, n_frac=8),   # resolution-heavy
    HallbergParams(9, 41, n_frac=4),    # odd N
    HallbergParams(6, 50, n_frac=0),    # integer-only
]


class TestAsymmetricSplits:
    @pytest.mark.parametrize("params", SPLITS, ids=str)
    def test_bit_accounting(self, params):
        assert params.frac_bits + params.whole_bits == params.precision_bits
        assert params.max_value == 2.0**params.whole_bits
        if params.n_frac:
            assert params.smallest == 2.0**-params.frac_bits

    @pytest.mark.parametrize("params", SPLITS[:3], ids=str)
    def test_roundtrip_in_window(self, params, rng):
        span = min(params.whole_bits - 8, 52)
        for x in rng.uniform(-(2.0**span), 2.0**span, 40):
            assert hb_to_double(hb_from_double(float(x), params), params) == (
                float(x) if params.frac_bits >= 52 + span else
                hb_to_double(hb_from_double(float(x), params), params)
            )

    def test_integer_only_split(self):
        params = HallbergParams(6, 50, n_frac=0)
        assert hb_to_double(hb_from_double(12345.0, params), params) == 12345.0
        # Fractions truncate away entirely.
        assert hb_to_double(hb_from_double(0.75, params), params) == 0.0

    def test_range_heavy_vs_resolution_heavy(self):
        wide = HallbergParams(10, 38, n_frac=2)
        deep = HallbergParams(10, 38, n_frac=8)
        assert wide.max_value > deep.max_value
        assert wide.smallest > deep.smallest
        big = 2.0**250
        assert hb_to_double(hb_from_double(big, wide), wide) == big
        with pytest.raises(ConversionOverflowError):
            hb_from_double(big, deep)

    @pytest.mark.parametrize("params", SPLITS[:3], ids=str)
    def test_floatloop_parity(self, params, rng):
        for x in rng.uniform(-1e3, 1e3, 30):
            assert hb_from_double(float(x), params) == (
                hb_from_double_floatloop(float(x), params)
            )

    @pytest.mark.parametrize("params", SPLITS[:3], ids=str)
    def test_vectorized_parity_and_exactness(self, params, rng):
        xs = rng.uniform(-100.0, 100.0, 400)
        acc = HallbergAccumulator(params)
        acc.extend(xs.tolist())
        assert hb_batch_sum_doubles(xs, params) == acc.digits
        if params.frac_bits >= 60:
            assert acc.to_double() == math.fsum(xs)

    # n_frac <= 9 keeps at least one whole digit (38 bits > 1e6).
    @given(st.integers(0, 9), st.floats(min_value=-1e6, max_value=1e6,
                                        allow_nan=False))
    @settings(max_examples=50)
    def test_property_any_split_consistent(self, n_frac, x):
        params = HallbergParams(10, 38, n_frac=n_frac)
        digits = hb_from_double(x, params)
        assert all(abs(d) < 2**38 for d in digits)
        back = hb_to_double(digits, params)
        assert abs(back) <= abs(x) or back == x  # truncation toward zero
