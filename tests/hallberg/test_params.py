"""Unit tests for HallbergParams (format geometry, Table 2)."""

from __future__ import annotations

import pytest

from repro.errors import ParameterError
from repro.hallberg.params import (
    HallbergParams,
    TABLE2_CONFIGS,
    equivalent_hallberg,
)


class TestValidation:
    def test_rejects_zero_words(self):
        with pytest.raises(ParameterError):
            HallbergParams(0, 40)

    @pytest.mark.parametrize("m", [0, 63, 64, -1])
    def test_rejects_bad_m(self, m):
        with pytest.raises(ParameterError):
            HallbergParams(10, m)

    def test_default_frac_split(self):
        assert HallbergParams(10, 52).n_frac == 5
        assert HallbergParams(13, 40).n_frac == 6

    def test_explicit_frac_split(self):
        p = HallbergParams(10, 52, n_frac=7)
        assert p.frac_bits == 364 and p.whole_bits == 156

    def test_rejects_bad_frac_split(self):
        with pytest.raises(ParameterError):
            HallbergParams(10, 52, n_frac=11)


class TestDerived:
    def test_carry_budget(self):
        assert HallbergParams(10, 52).max_summands == 2**11 - 1
        assert HallbergParams(10, 38).max_summands == 2**25 - 1

    def test_fig5_config_covers_32m_summands(self):
        """The paper's Figs. 5-8 use (10, 38) for exactly 2**25 values."""
        assert HallbergParams(10, 38).max_summands >= 2**25 - 1

    def test_precision_bits(self):
        assert HallbergParams(14, 37).precision_bits == 518

    def test_storage_overhead(self):
        """The HP paper's overhead critique: storage exceeds precision."""
        p = HallbergParams(10, 52)
        assert p.storage_bits == 640 > p.precision_bits == 520

    def test_range_resolution(self):
        p = HallbergParams(10, 38)  # n_frac = 5 -> 190 bits each side
        assert p.max_value == 2.0**190
        assert p.smallest == 2.0**-190


class TestTable2:
    EXPECTED = {(10, 52): (520, 2047), (12, 43): (516, 1048575),
                (14, 37): (518, 67108863)}

    @pytest.mark.parametrize("config", TABLE2_CONFIGS)
    def test_row(self, config):
        bits, budget = self.EXPECTED[config]
        row = HallbergParams(*config).table2_row()
        assert row[2] == bits and row[3] == budget


class TestEquivalentHallberg:
    @pytest.mark.parametrize(
        "budget,expected",
        [(2047, (10, 52)), (1_000_000, (12, 43)), (60_000_000, (14, 37))],
    )
    def test_reproduces_table2(self, budget, expected):
        p = equivalent_hallberg(512, budget)
        assert (p.n, p.m) == expected

    def test_precision_met(self):
        for budget in (100, 10**4, 10**7):
            p = equivalent_hallberg(512, budget)
            assert p.precision_bits >= 512
            assert p.max_summands >= budget

    def test_more_summands_needs_more_words(self):
        small = equivalent_hallberg(512, 1000)
        large = equivalent_hallberg(512, 10**8)
        assert large.n > small.n and large.m < small.m

    def test_rejects_impossible_budget(self):
        with pytest.raises(ParameterError):
            equivalent_hallberg(512, 2**63)

    def test_rejects_bad_inputs(self):
        with pytest.raises(ParameterError):
            equivalent_hallberg(0, 10)
        with pytest.raises(ParameterError):
            equivalent_hallberg(512, 0)
