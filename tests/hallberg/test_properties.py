"""Property-based tests for the Hallberg format."""

from __future__ import annotations

import math
from fractions import Fraction

import numpy as np
from hypothesis import assume, given, settings, strategies as st

from repro.hallberg.accumulator import HallbergAccumulator
from repro.hallberg.params import HallbergParams
from repro.hallberg.scalar import (
    hb_add,
    hb_from_double,
    hb_is_canonical,
    hb_normalize,
    hb_to_double,
    hb_to_int_scaled,
)
from repro.hallberg.vectorized import hb_batch_sum_doubles

HB = HallbergParams(10, 38)  # frac/whole: 190 bits each

# Doubles exactly representable in HB: magnitude in [2**-137, 2**100]
# keeps all 52 low mantissa bits above 2**-190.
representable = st.one_of(
    st.just(0.0),
    st.floats(min_value=2.0**-137, max_value=2.0**100,
              allow_nan=False, allow_infinity=False),
    st.floats(min_value=2.0**-137, max_value=2.0**100,
              allow_nan=False, allow_infinity=False).map(lambda x: -x),
)


class TestConversion:
    @given(representable)
    def test_roundtrip(self, x):
        assert hb_to_double(hb_from_double(x, HB), HB) == x

    @given(representable)
    def test_canonical_form(self, x):
        assert hb_is_canonical(hb_from_double(x, HB), HB)

    @given(representable)
    def test_sign_antisymmetry(self, x):
        assert hb_from_double(-x, HB) == tuple(
            -d for d in hb_from_double(x, HB)
        )

    @given(representable)
    def test_matches_rational(self, x):
        digits = hb_from_double(x, HB)
        assert Fraction(hb_to_int_scaled(digits, HB), HB.scale) == Fraction(x)


class TestAddition:
    @given(representable, representable)
    def test_matches_rational_addition(self, x, y):
        total = hb_add(hb_from_double(x, HB), hb_from_double(y, HB), HB)
        assert Fraction(hb_to_int_scaled(total, HB), HB.scale) == (
            Fraction(x) + Fraction(y)
        )

    @given(representable, representable, representable)
    def test_associative_and_commutative(self, x, y, z):
        a, b, c = (hb_from_double(v, HB) for v in (x, y, z))
        assert hb_add(a, b, HB) == hb_add(b, a, HB)
        assert hb_add(hb_add(a, b, HB), c, HB) == hb_add(
            a, hb_add(b, c, HB), HB
        )


class TestNormalization:
    @given(st.lists(representable, min_size=1, max_size=20))
    @settings(max_examples=50)
    def test_normalize_preserves_value(self, values):
        total = (0,) * HB.n
        for x in values:
            total = hb_add(total, hb_from_double(x, HB), HB)
        assume(abs(hb_to_int_scaled(total, HB)) < 1 << (HB.m * HB.n))
        norm = hb_normalize(total, HB)
        assert hb_is_canonical(norm, HB)
        assert hb_to_int_scaled(norm, HB) == hb_to_int_scaled(total, HB)

    @given(representable)
    def test_normalize_idempotent(self, x):
        digits = hb_from_double(x, HB)
        assert hb_normalize(hb_normalize(digits, HB), HB) == hb_normalize(
            digits, HB
        )


class TestOrderInvariance:
    @given(
        st.lists(representable, min_size=1, max_size=25),
        st.randoms(use_true_random=False),
    )
    @settings(max_examples=50)
    def test_permutation_invariant(self, values, rnd):
        acc = HallbergAccumulator(HB)
        acc.extend(values)
        shuffled = list(values)
        rnd.shuffle(shuffled)
        acc2 = HallbergAccumulator(HB)
        acc2.extend(shuffled)
        assert acc.digits == acc2.digits


class TestVectorizedParity:
    @given(st.lists(representable, min_size=0, max_size=50))
    @settings(max_examples=50)
    def test_batch_bit_identical(self, values):
        xs = np.array(values, dtype=np.float64)
        acc = HallbergAccumulator(HB)
        acc.extend(values)
        assert hb_batch_sum_doubles(xs, HB) == acc.digits
