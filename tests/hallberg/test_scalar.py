"""Unit tests for Hallberg conversion, addition and normalization."""

from __future__ import annotations

import math
from fractions import Fraction

import pytest

from repro.errors import (
    ConversionOverflowError,
    MixedParameterError,
    NormalizationOverflowError,
)
from repro.hallberg.params import HallbergParams
from repro.hallberg.scalar import (
    hb_add,
    hb_from_double,
    hb_from_double_floatloop,
    hb_is_canonical,
    hb_normalize,
    hb_to_double,
    hb_to_int_scaled,
)

HB = HallbergParams(10, 38)  # the Figs. 5-8 configuration


class TestFromDouble:
    def test_zero(self):
        assert hb_from_double(0.0, HB) == (0,) * 10

    def test_one(self):
        digits = hb_from_double(1.0, HB)
        assert digits[5] == 1 and all(
            d == 0 for i, d in enumerate(digits) if i != 5
        )

    def test_digits_share_sign(self):
        pos = hb_from_double(1234.5678, HB)
        neg = hb_from_double(-1234.5678, HB)
        assert all(d >= 0 for d in pos)
        assert all(d <= 0 for d in neg)
        assert neg == tuple(-d for d in pos)

    def test_digit_magnitude_bound(self, rng):
        for x in rng.uniform(-1e9, 1e9, 50):
            digits = hb_from_double(float(x), HB)
            assert all(abs(d) < 2**38 for d in digits)

    def test_roundtrip(self, rng):
        for x in rng.uniform(-1e6, 1e6, 100):
            assert hb_to_double(hb_from_double(float(x), HB), HB) == x

    def test_truncation_toward_zero(self):
        x = (1.0 + 2.0**-52) * 2.0**-150  # tail below 2**-190
        got = Fraction(hb_to_int_scaled(hb_from_double(x, HB), HB), HB.scale)
        assert 0 < got <= Fraction(x)
        neg = Fraction(
            hb_to_int_scaled(hb_from_double(-x, HB), HB), HB.scale
        )
        assert neg == -got

    def test_overflow(self):
        with pytest.raises(ConversionOverflowError):
            hb_from_double(2.0**191, HB)
        with pytest.raises(ConversionOverflowError):
            hb_from_double(float("nan"), HB)

    def test_matches_floatloop(self, rng, hb_params):
        values = [0.0, 1.0, -1.0, 0.1, -0.1, 1e-6, -12345.678]
        values += rng.uniform(-1e3, 1e3, 50).tolist()
        for x in values:
            assert hb_from_double(x, hb_params) == hb_from_double_floatloop(
                x, hb_params
            ), x

    def test_floatloop_overflow(self):
        with pytest.raises(ConversionOverflowError):
            hb_from_double_floatloop(2.0**200, HB)


class TestAdd:
    def test_carry_free_addition(self):
        a = hb_from_double(1.5, HB)
        b = hb_from_double(2.25, HB)
        assert hb_to_double(hb_add(a, b, HB), HB) == 3.75

    def test_mixed_signs(self):
        a = hb_from_double(1.5, HB)
        b = hb_from_double(-2.25, HB)
        assert hb_to_double(hb_add(a, b, HB), HB) == -0.75

    def test_no_carry_performed(self):
        """The defining property: word-wise sums, no interaction."""
        a = hb_from_double(0.5, HB)
        total = hb_add(a, a, HB)
        assert total == tuple(x + y for x, y in zip(a, a))

    def test_int64_overflow_detected(self):
        a = (2**62,) * 10
        with pytest.raises(NormalizationOverflowError):
            hb_add(a, a, HB)

    def test_width_check(self):
        with pytest.raises(MixedParameterError):
            hb_add((0,) * 9, (0,) * 10, HB)

    def test_matches_rational(self, rng):
        total = (0,) * 10
        values = rng.uniform(-100.0, 100.0, 200)
        for x in values:
            total = hb_add(total, hb_from_double(float(x), HB), HB)
        assert hb_to_double(total, HB) == math.fsum(values)


class TestNormalize:
    def test_canonical_fixed_point(self):
        digits = hb_from_double(123.456, HB)
        assert hb_is_canonical(digits, HB)
        assert hb_normalize(digits, HB) == digits

    def test_collapses_aliases(self):
        half = hb_from_double(0.5, HB)
        aliased = hb_add(half, half, HB)
        assert not hb_is_canonical(aliased, HB)
        assert hb_normalize(aliased, HB) == hb_from_double(1.0, HB)

    def test_mixed_sign_vectors_not_canonical(self):
        a = hb_add(
            hb_from_double(1.0, HB), hb_from_double(-0.5, HB), HB
        )
        assert not hb_is_canonical(a, HB)
        norm = hb_normalize(a, HB)
        assert hb_is_canonical(norm, HB)
        assert hb_to_double(norm, HB) == 0.5

    def test_normalization_overflow(self):
        saturated = (2**62,) * 10
        with pytest.raises(NormalizationOverflowError):
            hb_normalize(saturated, HB)

    def test_value_preserved(self, rng):
        total = (0,) * 10
        for x in rng.uniform(-10.0, 10.0, 500):
            total = hb_add(total, hb_from_double(float(x), HB), HB)
        assert hb_to_int_scaled(total, HB) == hb_to_int_scaled(
            hb_normalize(total, HB), HB
        )


class TestToDouble:
    def test_width_check(self):
        with pytest.raises(MixedParameterError):
            hb_to_double((0,) * 9, HB)

    def test_correctly_rounded(self):
        # Exact value 1 + 2**-53 lies midway: rounds half-even to 1.0.
        scaled = HB.scale + (HB.scale >> 53)
        digits = [0] * 10
        mask = (1 << 38) - 1
        for i in range(10):
            digits[i] = (scaled >> (38 * i)) & mask
        assert hb_to_double(tuple(digits), HB) == 1.0
