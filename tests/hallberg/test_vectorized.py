"""Unit tests for the vectorized Hallberg engine."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.errors import ConversionOverflowError, SummandLimitError
from repro.hallberg.accumulator import HallbergAccumulator
from repro.hallberg.params import HallbergParams
from repro.hallberg.scalar import hb_from_double, hb_to_double
from repro.hallberg.vectorized import (
    hb_batch_from_double,
    hb_batch_sum_digits,
    hb_batch_sum_doubles,
)

HB = HallbergParams(10, 38)


class TestBatchFromDouble:
    def test_matches_scalar(self, rng, hb_params):
        xs = rng.uniform(-1e3, 1e3, 300)
        digits = hb_batch_from_double(xs, hb_params)
        for i in range(len(xs)):
            assert tuple(int(d) for d in digits[i]) == hb_from_double(
                float(xs[i]), hb_params
            ), f"element {i}: {xs[i]!r}"

    def test_special_values(self):
        xs = np.array([0.0, -0.0, 1.0, -1.0, 2.0**-190, -(2.0**-190), 5e-324])
        digits = hb_batch_from_double(xs, HB)
        for i, x in enumerate(xs):
            assert tuple(int(d) for d in digits[i]) == hb_from_double(
                float(x), HB
            )

    def test_rejects_nan_and_range(self):
        with pytest.raises(ConversionOverflowError):
            hb_batch_from_double(np.array([float("nan")]), HB)
        with pytest.raises(ConversionOverflowError):
            hb_batch_from_double(np.array([2.0**191]), HB)

    def test_rejects_2d(self):
        with pytest.raises(ValueError):
            hb_batch_from_double(np.zeros((2, 2)), HB)


class TestBatchSum:
    def test_matches_scalar_accumulator(self, rng):
        xs = rng.uniform(-0.5, 0.5, 3000)
        acc = HallbergAccumulator(HB)
        acc.extend(xs.tolist())
        assert hb_batch_sum_doubles(xs, HB) == acc.digits

    def test_matches_fsum(self, rng):
        xs = rng.uniform(-10.0, 10.0, 2000)
        assert hb_to_double(hb_batch_sum_doubles(xs, HB), HB) == math.fsum(xs)

    def test_chunking_invariant(self, rng):
        xs = rng.uniform(-0.5, 0.5, 1001)
        assert hb_batch_sum_doubles(xs, HB, chunk=10) == hb_batch_sum_doubles(
            xs, HB, chunk=10**6
        )

    def test_budget_enforced(self):
        tight = HallbergParams(2, 61)  # budget 3
        with pytest.raises(SummandLimitError):
            hb_batch_sum_doubles(np.full(4, 0.5), tight)

    def test_budget_enforced_on_digit_rows(self):
        tight = HallbergParams(2, 61)
        rows = np.zeros((4, 2), dtype=np.int64)
        with pytest.raises(SummandLimitError):
            hb_batch_sum_digits(rows, tight)

    def test_sum_digits_shape_check(self):
        with pytest.raises(ValueError):
            hb_batch_sum_digits(np.zeros((2, 9), dtype=np.int64), HB)

    def test_empty(self):
        assert hb_batch_sum_doubles(np.array([], dtype=np.float64), HB) == (
            (0,) * 10
        )
