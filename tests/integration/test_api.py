"""Integration: public API surface and docstring examples."""

from __future__ import annotations

import doctest
import importlib

import pytest

import repro

DOCTEST_MODULES = [
    "repro",
    "repro.core.params",
    "repro.core.hpnum",
    "repro.core.accumulator",
    "repro.core.scalar",
    "repro.core.atomic",
    "repro.hallberg.params",
    "repro.hallberg.interop",
    "repro.core.dot",
    "repro.core.multi",
    "repro.core.streaming",
    "repro.core.convert_format",
    "repro.core.norms",
    "repro.core.matvec",
    "repro.apps.statistics",
    "repro.apps.timeseries",
    "repro.apps.histogram",
    "repro.summation.doubledouble",
    "repro.hallberg.hbnum",
    "repro.hallberg.accumulator",
    "repro.parallel.partition",
    "repro.experiments.datasets",
    "repro.util.timing",
]


class TestPublicSurface:
    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_version(self):
        assert repro.__version__.count(".") == 2

    def test_subpackages_importable(self):
        for pkg in ("core", "hallberg", "summation", "parallel",
                    "perfmodel", "experiments", "util"):
            mod = importlib.import_module(f"repro.{pkg}")
            assert mod.__doc__, f"repro.{pkg} missing docstring"

    def test_exception_hierarchy(self):
        assert issubclass(repro.ConversionOverflowError, repro.RangeError)
        assert issubclass(repro.RangeError, repro.ReproError)
        assert issubclass(repro.RangeError, OverflowError)
        assert issubclass(repro.ParameterError, ValueError)
        assert issubclass(repro.MixedParameterError, TypeError)

    def test_public_functions_documented(self):
        import repro.core as core

        for name in core.__all__:
            obj = getattr(core, name)
            if callable(obj):
                assert obj.__doc__, f"repro.core.{name} missing docstring"


@pytest.mark.parametrize("module_name", DOCTEST_MODULES)
def test_doctests(module_name):
    module = importlib.import_module(module_name)
    results = doctest.testmod(module, verbose=False)
    assert results.failed == 0, f"{results.failed} doctest failures in {module_name}"
