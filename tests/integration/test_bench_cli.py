"""Integration tests for the benchmark-regression harness and its CLI."""

from __future__ import annotations

import json

import pytest

from repro.bench import (
    SCHEMA,
    default_report_name,
    run_regress,
    validate_report,
)
from repro.bench.regress import format_summary
from repro.cli import main


@pytest.fixture(scope="module")
def report() -> dict:
    # Small n keeps the module fast; the oracle stage still runs so the
    # bit-identity machinery is exercised end to end.
    return run_regress(n=4000, repeats=1, pr=3)


class TestRunRegress:
    def test_schema_and_structure(self, report):
        assert report["schema"] == SCHEMA
        assert validate_report(report) == []

    def test_covers_table1(self, report):
        assert [(c["n_words"], c["k"]) for c in report["cases"]] == [
            (2, 1), (3, 2), (6, 3), (8, 4),
        ]

    def test_engines_bit_identical(self, report):
        assert report["checks"]["bit_identical_all"] is True
        assert all(c["bit_identical"] for c in report["cases"])

    def test_oracle_trials_cover_matrix(self, report):
        oracle = report["oracle"]
        assert oracle["bit_identical"] is True
        # >= 3 permutations x >= 2 chunk sizes, every trial identical
        assert oracle["permutations"] >= 3
        assert len(oracle["chunk_sizes"]) >= 2
        assert len(oracle["trials"]) == (
            oracle["permutations"] * len(oracle["chunk_sizes"])
        )
        assert all(t["bit_identical"] for t in oracle["trials"])

    def test_headline_is_widest_format(self, report):
        assert report["checks"]["headline_params"] == "HP(N=8, k=4)"

    def test_skip_oracle(self):
        doc = run_regress(n=1000, repeats=1, skip_oracle=True)
        assert doc["oracle"] is None
        assert doc["checks"]["oracle_bit_identical"] is True

    def test_unreachable_speedup_fails(self):
        doc = run_regress(n=1000, repeats=1, skip_oracle=True,
                          min_speedup=1e9)
        assert doc["checks"]["superacc_faster"] is False
        assert doc["checks"]["passed"] is False

    def test_validate_flags_problems(self, report):
        broken = dict(report, schema="something/else")
        assert validate_report(broken)
        assert validate_report({"schema": SCHEMA}) != []

    def test_summary_renders(self, report):
        text = format_summary(report)
        assert "PASS" in text
        assert "HP(N=8, k=4)" in text

    def test_default_report_name(self):
        assert default_report_name(3) == "BENCH_3.json"


class TestBenchCLI:
    def test_regress_writes_report(self, tmp_path, capsys):
        out = tmp_path / "bench.json"
        rc = main([
            "bench", "--regress", "--n", "2000", "--repeats", "1",
            "--out", str(out),
        ])
        assert rc == 0
        doc = json.loads(out.read_text())
        assert validate_report(doc) == []
        assert doc["checks"]["passed"] is True
        assert "report written" in capsys.readouterr().out

    def test_requires_regress_flag(self, capsys):
        assert main(["bench"]) == 2
        assert "--regress" in capsys.readouterr().err

    def test_failing_gate_exits_nonzero(self, tmp_path):
        out = tmp_path / "bench.json"
        rc = main([
            "bench", "--regress", "--n", "2000", "--repeats", "1",
            "--skip-oracle", "--min-speedup", "1e9", "--out", str(out),
        ])
        assert rc == 1
        assert json.loads(out.read_text())["checks"]["passed"] is False


class TestCommittedTrajectoryPoint:
    def test_bench_3_json_is_valid(self):
        """The committed BENCH_3.json must conform and pass its gates."""
        from pathlib import Path

        path = Path(__file__).resolve().parents[2] / "BENCH_3.json"
        doc = json.loads(path.read_text())
        assert validate_report(doc) == []
        checks = doc["checks"]
        assert checks["passed"] is True
        # the PR acceptance bar: >= 2x at the N=8 / 1M headline case
        assert checks["speedup_headline"] >= 2.0
        assert doc["config"]["n"] >= 1_000_000
