"""Integration tests for the benchmark-regression harness and its CLI."""

from __future__ import annotations

import json

import pytest

from repro.bench import (
    SCHEMA,
    SCALING_SCHEMA,
    auto_min_speedup,
    default_report_name,
    format_scaling_summary,
    run_regress,
    run_scaling,
    validate_report,
    validate_scaling_report,
)
from repro.bench.regress import format_summary
from repro.cli import main


@pytest.fixture(scope="module")
def report() -> dict:
    # Small n keeps the module fast; the oracle stage still runs so the
    # bit-identity machinery is exercised end to end.
    return run_regress(n=4000, repeats=1, pr=3)


class TestRunRegress:
    def test_schema_and_structure(self, report):
        assert report["schema"] == SCHEMA
        assert validate_report(report) == []

    def test_covers_table1(self, report):
        assert [(c["n_words"], c["k"]) for c in report["cases"]] == [
            (2, 1), (3, 2), (6, 3), (8, 4),
        ]

    def test_engines_bit_identical(self, report):
        assert report["checks"]["bit_identical_all"] is True
        assert all(c["bit_identical"] for c in report["cases"])

    def test_oracle_trials_cover_matrix(self, report):
        oracle = report["oracle"]
        assert oracle["bit_identical"] is True
        # >= 3 permutations x >= 2 chunk sizes, every trial identical
        assert oracle["permutations"] >= 3
        assert len(oracle["chunk_sizes"]) >= 2
        assert len(oracle["trials"]) == (
            oracle["permutations"] * len(oracle["chunk_sizes"])
        )
        assert all(t["bit_identical"] for t in oracle["trials"])

    def test_headline_is_widest_format(self, report):
        assert report["checks"]["headline_params"] == "HP(N=8, k=4)"

    def test_small_engine_bit_identical(self, report):
        assert report["checks"]["small_bit_identical_all"] is True
        assert all(c["small_bit_identical"] for c in report["cases"])

    def test_small_oracle_covers_backends(self, report):
        oracle = report["small_oracle"]
        assert oracle["bit_identical"] is True
        assert "pure" in oracle["backends"]
        # one trial per permutation x chunk x backend
        assert len(oracle["trials"]) == (
            oracle["permutations"]
            * len(oracle["chunk_sizes"])
            * len(oracle["backends"])
        )
        assert all(t["bit_identical"] for t in oracle["trials"])

    def test_small_target_recorded_not_gated(self, report):
        checks = report["checks"]
        assert checks["small_target"] == 10.0
        assert isinstance(checks["small_target_met"], bool)
        if not checks["small_target_met"]:
            assert checks["small_target_note"]

    def test_compensated_tiers_within_bound_and_deterministic(self, report):
        compensated = report["compensated"]
        assert set(compensated["tiers"]) == {
            "comp-pairwise", "comp-kahan", "comp-neumaier",
        }
        for tier in compensated["tiers"].values():
            assert tier["within_bound"] is True
            assert tier["deterministic"] is True
            assert tier["error"] <= tier["bound"]
        assert report["checks"]["compensated_within_bounds"] is True
        assert report["checks"]["compensated_deterministic"] is True
        # The planner's choice at the pinned target is one of the tiers
        # the pass measured (it can never pick an escalated or exact
        # engine at 1e-12 with every tier in bound).
        assert compensated["planner_choice"] in compensated["tiers"]

    def test_compensated_target_recorded_not_gated(self, report):
        checks = report["checks"]
        assert checks["compensated_target"] == 5.0
        assert isinstance(checks["compensated_target_met"], bool)
        if not checks["compensated_target_met"]:
            assert checks["compensated_target_note"]
        # Like the small engine's 10x: missing the ratio never fails
        # the gate on its own.
        assert checks["passed"] is True

    def test_skip_oracle(self):
        doc = run_regress(n=1000, repeats=1, skip_oracle=True)
        assert doc["oracle"] is None
        assert doc["checks"]["oracle_bit_identical"] is True

    def test_unreachable_speedup_fails(self):
        doc = run_regress(n=1000, repeats=1, skip_oracle=True,
                          min_speedup=1e9)
        assert doc["checks"]["superacc_faster"] is False
        assert doc["checks"]["passed"] is False

    def test_validate_flags_problems(self, report):
        broken = dict(report, schema="something/else")
        assert validate_report(broken)
        assert validate_report({"schema": SCHEMA}) != []

    def test_summary_renders(self, report):
        text = format_summary(report)
        assert "PASS" in text
        assert "HP(N=8, k=4)" in text

    def test_default_report_name(self):
        assert default_report_name(3) == "BENCH_3.json"


class TestBenchCLI:
    def test_regress_writes_report(self, tmp_path, capsys):
        out = tmp_path / "bench.json"
        rc = main([
            "bench", "--regress", "--n", "2000", "--repeats", "1",
            "--out", str(out),
        ])
        assert rc == 0
        doc = json.loads(out.read_text())
        assert validate_report(doc) == []
        assert doc["checks"]["passed"] is True
        assert "report written" in capsys.readouterr().out

    def test_requires_regress_flag(self, capsys):
        assert main(["bench"]) == 2
        assert "--regress" in capsys.readouterr().err

    def test_failing_gate_exits_nonzero(self, tmp_path):
        out = tmp_path / "bench.json"
        rc = main([
            "bench", "--regress", "--n", "2000", "--repeats", "1",
            "--skip-oracle", "--min-speedup", "1e9", "--out", str(out),
        ])
        assert rc == 1
        assert json.loads(out.read_text())["checks"]["passed"] is False


@pytest.fixture(scope="module")
def scaling_report() -> dict:
    # Tiny n and two PE counts keep the module fast while still running
    # real worker processes end to end; min_speedup=0 waives the
    # wall-clock gate (meaningless at this scale), bit-identity stays on.
    return run_scaling(n=20_000, pes_list=(1, 2), repeats=1,
                       min_speedup=0.0, pr=4)


class TestRunScaling:
    def test_schema_and_structure(self, scaling_report):
        assert scaling_report["schema"] == SCALING_SCHEMA
        assert validate_scaling_report(scaling_report) == []

    def test_covers_matrix(self, scaling_report):
        cases = scaling_report["cases"]
        assert {(c["method"], c["pes"]) for c in cases} == {
            (m, p)
            for m in ("double", "hp", "hp-superacc", "hp-small")
            for p in (1, 2)
        }

    def test_tasks_match_pes(self, scaling_report):
        assert scaling_report["checks"]["tasks_match_pes"] is True
        for case in scaling_report["cases"]:
            assert case["tasks_match_pes"] is True
            assert case["tasks"] == case["pes"]

    def test_exact_methods_bit_identical(self, scaling_report):
        assert scaling_report["checks"]["bit_identical_all"] is True
        for case in scaling_report["cases"]:
            if case["method"] == "double":
                assert case["bit_identical"] is None
            else:
                assert case["bit_identical"] is True

    def test_waived_gate_passes(self, scaling_report):
        checks = scaling_report["checks"]
        assert checks["speedup_gate_waived"] is True
        assert checks["passed"] is True

    def test_environment_records_machine(self, scaling_report):
        env = scaling_report["environment"]
        assert env["cpu_count"] >= 1
        assert env["start_method"] in ("fork", "spawn", "forkserver")

    def test_unreachable_gate_fails(self):
        doc = run_scaling(n=2000, pes_list=(1, 2), repeats=1,
                          min_speedup=1e9)
        assert doc["checks"]["passed"] is False
        assert doc["checks"]["speedup_gate_waived"] is False

    def test_auto_min_speedup_tiers(self):
        assert auto_min_speedup(1) == 0.0
        assert auto_min_speedup(2) == 1.2
        assert auto_min_speedup(3) == 1.2
        assert auto_min_speedup(4) == 2.0
        assert auto_min_speedup(64) == 2.0

    def test_validate_flags_problems(self, scaling_report):
        assert validate_scaling_report(
            dict(scaling_report, schema="other/1")
        )
        assert validate_scaling_report({"schema": SCALING_SCHEMA}) != []

    def test_summary_renders(self, scaling_report):
        text = format_scaling_summary(scaling_report)
        assert "PASS" in text
        assert "bit-identical" in text
        assert "waived" in text

    def test_rejects_empty_pes_list(self):
        with pytest.raises(ValueError):
            run_scaling(n=100, pes_list=(), repeats=1)


class TestScalingCLI:
    def test_scaling_writes_report(self, tmp_path, capsys):
        out = tmp_path / "scaling.json"
        rc = main([
            "bench", "--scaling", "--n", "4000", "--pes-list", "1,2",
            "--repeats", "1", "--min-speedup", "0", "--out", str(out),
        ])
        assert rc == 0
        doc = json.loads(out.read_text())
        assert validate_scaling_report(doc) == []
        assert doc["checks"]["passed"] is True
        assert doc["pr"] == 4
        assert "report written" in capsys.readouterr().out

    def test_failing_gate_exits_nonzero(self, tmp_path):
        out = tmp_path / "scaling.json"
        rc = main([
            "bench", "--scaling", "--n", "2000", "--pes-list", "1,2",
            "--repeats", "1", "--min-speedup", "1e9", "--out", str(out),
        ])
        assert rc == 1
        assert json.loads(out.read_text())["checks"]["passed"] is False

    def test_rejects_both_modes(self, capsys):
        assert main(["bench", "--regress", "--scaling"]) == 2
        assert "exactly one" in capsys.readouterr().err


class TestCommittedTrajectoryPoint:
    def test_bench_3_json_is_valid(self):
        """The committed BENCH_3.json must conform and pass its gates."""
        from pathlib import Path

        path = Path(__file__).resolve().parents[2] / "BENCH_3.json"
        doc = json.loads(path.read_text())
        assert validate_report(doc) == []
        checks = doc["checks"]
        assert checks["passed"] is True
        # the PR acceptance bar: >= 2x at the N=8 / 1M headline case
        assert checks["speedup_headline"] >= 2.0
        assert doc["config"]["n"] >= 1_000_000

    def test_bench_4_json_is_valid(self):
        """The committed BENCH_4.json strong-scaling point must conform
        and pass its machine-aware gates."""
        from pathlib import Path

        path = Path(__file__).resolve().parents[2] / "BENCH_4.json"
        doc = json.loads(path.read_text())
        assert validate_scaling_report(doc) == []
        checks = doc["checks"]
        assert checks["passed"] is True
        assert checks["bit_identical_all"] is True
        # the PR acceptance bar: >= 4M summands over p up to 8
        assert doc["config"]["n"] >= 4_000_000
        assert max(doc["config"]["pes_list"]) >= 8
        # gate honesty: waived only when the generating machine could
        # not physically show a speedup
        if checks["speedup_gate_waived"]:
            assert checks["cpu_count"] < 2


class TestBenchProfileFlag:
    @pytest.fixture(scope="class")
    def profiled_report(self) -> dict:
        return run_regress(n=2000, repeats=1, skip_oracle=True, profile=True)

    def test_report_without_profile_has_no_phases(self):
        doc = run_regress(n=1000, repeats=1, skip_oracle=True)
        assert "phases" not in doc

    def test_phases_block_covers_every_engine(self, profiled_report):
        phases = profiled_report["phases"]
        assert set(phases["engines"]) == {"superacc", "small", "words"}
        assert phases["n"] == 2000
        expected_hot = {
            "superacc": "superacc.scatter",
            "small": "smallacc.scatter",
            "words": "words.convert",
        }
        for engine, rep in phases["engines"].items():
            assert rep["kind"] == "profile"
            names = {row["phase"] for row in rep["phases"]}
            assert expected_hot[engine] in names

    def test_profiled_report_still_validates(self, profiled_report):
        assert profiled_report["schema"] == SCHEMA
        assert validate_report(profiled_report) == []

    def test_validator_flags_malformed_phases_block(self, profiled_report):
        bad = dict(profiled_report, phases={"nope": 1})
        assert any("engines" in p for p in validate_report(bad))
        bad = dict(profiled_report,
                   phases={"engines": {"superacc": "not-a-dict"}})
        assert any("profile dict" in p for p in validate_report(bad))

    def test_old_schema_reports_still_accepted(self, profiled_report):
        legacy = dict(profiled_report, schema="repro.bench.regress/1")
        legacy.pop("phases")
        assert validate_report(legacy) == []

    def test_profile_pass_leaves_tracer_as_found(self):
        from repro.observability import tracing

        tracing.TRACER.reset()
        run_regress(n=1000, repeats=1, skip_oracle=True, profile=True)
        # The instrumented pass ran inside profiled(); the ambient
        # tracer must come back empty and the gates disarmed.
        assert tracing.TRACER.spans() == []
        assert not tracing.ENABLED

    def test_scaling_profile_has_worker_rows(self):
        doc = run_scaling(n=20_000, pes_list=(1, 2), repeats=1,
                          min_speedup=0.0, profile=True,
                          methods=("hp-superacc",))
        assert validate_scaling_report(doc) == []
        block = doc["phases"]
        assert block["substrate"] == "procs"
        assert block["pes"] == 2
        workers = {row["worker"] for row in block["phases"]}
        assert "master" in workers
        assert sum(1 for w in workers if w.startswith("pid=")) == 2

    def test_cli_regress_profile_flag(self, tmp_path, capsys):
        out = tmp_path / "bench.json"
        status = main(["bench", "--regress", "--n", "1000", "--repeats",
                       "1", "--skip-oracle", "--profile",
                       "--out", str(out)])
        assert status == 0
        doc = json.loads(out.read_text())
        assert set(doc["phases"]["engines"]) == {
            "superacc", "small", "words"
        }
