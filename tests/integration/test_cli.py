"""Integration tests for the command-line interface."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.cli import build_parser, main


def run_cli(capsys, *argv: str) -> tuple[int, str, str]:
    code = main(list(argv))
    captured = capsys.readouterr()
    return code, captured.out, captured.err


class TestSum:
    def test_text_file(self, tmp_path, capsys):
        f = tmp_path / "values.txt"
        f.write_text("0.1 0.2 -0.1 -0.2\n")
        code, out, _ = run_cli(capsys, "sum", str(f))
        assert code == 0 and out.strip() == "0.0"

    def test_npy_file(self, tmp_path, capsys, rng):
        data = rng.uniform(-1.0, 1.0, 500)
        f = tmp_path / "values.npy"
        np.save(f, data)
        code, out, _ = run_cli(capsys, "sum", str(f))
        assert code == 0
        assert float(out.strip()) == math.fsum(data)

    def test_stdin(self, capsys, monkeypatch):
        import io

        monkeypatch.setattr("sys.stdin", io.StringIO("1 2 3 4\n"))
        code, out, _ = run_cli(capsys, "sum", "-")
        assert code == 0 and out.strip() == "10.0"

    def test_explicit_params_and_words(self, tmp_path, capsys):
        f = tmp_path / "v.txt"
        f.write_text("1.0\n")
        code, out, _ = run_cli(capsys, "sum", str(f), "--params", "3,2",
                               "--words")
        assert code == 0
        assert "HP(N=3, k=2)" in out
        assert "0000000000000001" in out

    @pytest.mark.parametrize("method", ["hallberg", "double", "kahan", "fsum"])
    def test_other_methods(self, tmp_path, capsys, method):
        f = tmp_path / "v.txt"
        f.write_text("0.5 0.25\n")
        code, out, _ = run_cli(capsys, "sum", str(f), "--method", method)
        assert code == 0 and out.strip() == "0.75"

    def test_missing_file_is_clean_error(self, capsys):
        code, _, err = run_cli(capsys, "sum", "/no/such/file")
        assert code == 1 and "error:" in err

    def test_empty_input(self, tmp_path, capsys):
        f = tmp_path / "empty.txt"
        f.write_text("")
        code, out, _ = run_cli(capsys, "sum", str(f))
        assert code == 0 and out.strip() == "0.0"


class TestSumSubstrate:
    @pytest.fixture()
    def npy(self, tmp_path, rng):
        data = rng.uniform(-1.0, 1.0, 3000) * np.exp2(
            rng.uniform(-15.0, 15.0, 3000)
        )
        f = tmp_path / "values.npy"
        np.save(f, data)
        return f

    def test_procs_matches_serial_engine(self, npy, capsys):
        code, serial_out, _ = run_cli(capsys, "sum", str(npy),
                                      "--params", "6,3", "--words")
        assert code == 0
        code, procs_out, _ = run_cli(
            capsys, "sum", str(npy), "--substrate", "procs", "--pes", "2",
            "--params", "6,3", "--words",
        )
        assert code == 0
        # same value line, same hex words (labels differ)
        assert procs_out.splitlines()[0] == serial_out.splitlines()[0]
        assert (procs_out.splitlines()[1].split(":")[1]
                == serial_out.splitlines()[1].split(":")[1])

    def test_ooc_streams_npy(self, npy, capsys):
        code, direct_out, _ = run_cli(
            capsys, "sum", str(npy), "--substrate", "procs", "--pes", "2",
            "--params", "6,3", "--words",
        )
        assert code == 0
        code, ooc_out, _ = run_cli(
            capsys, "sum", str(npy), "--substrate", "procs", "--pes", "2",
            "--params", "6,3", "--words", "--ooc",
        )
        assert code == 0
        assert ooc_out == direct_out

    def test_threads_substrate_still_routes(self, npy, capsys):
        code, out, _ = run_cli(
            capsys, "sum", str(npy), "--substrate", "threads", "--pes", "4",
        )
        assert code == 0 and out.strip()

    def test_ooc_requires_procs(self, npy, capsys):
        code, _, err = run_cli(capsys, "sum", str(npy), "--ooc")
        assert code == 2 and "--substrate procs" in err
        code, _, err = run_cli(
            capsys, "sum", str(npy), "--substrate", "threads", "--ooc"
        )
        assert code == 2 and "--substrate procs" in err

    def test_substrate_rejects_scalar_only_methods(self, npy, capsys):
        code, _, err = run_cli(
            capsys, "sum", str(npy), "--substrate", "procs",
            "--method", "kahan",
        )
        assert code == 2 and "kahan" in err


class TestDot:
    def test_exact(self, tmp_path, capsys):
        x = tmp_path / "x.txt"
        y = tmp_path / "y.txt"
        x.write_text("0.1 -0.1\n")
        y.write_text("0.7 0.7\n")
        code, out, _ = run_cli(capsys, "dot", str(x), str(y))
        assert code == 0 and out.strip() == "0.0"


class TestInfoSuggest:
    def test_info_matches_table1(self, capsys):
        code, out, _ = run_cli(capsys, "info", "--params", "6,3")
        assert code == 0
        assert "3.138551e+57" in out and "1.593092e-58" in out

    def test_info_rejects_malformed_params(self, capsys):
        with pytest.raises(SystemExit):
            main(["info", "--params", "six-three"])

    def test_suggest(self, capsys):
        code, out, _ = run_cli(capsys, "suggest", "--max", "1e6",
                               "--min", "1e-12")
        assert code == 0 and "HP(N=" in out


class TestTablesFigures:
    def test_table1(self, capsys):
        code, out, _ = run_cli(capsys, "table", "1")
        assert code == 0 and "9.223372e+18" in out

    def test_table2(self, capsys):
        code, out, _ = run_cli(capsys, "table", "2")
        assert code == 0 and "67108863" in out

    def test_figure1_reduced(self, capsys):
        code, out, _ = run_cli(capsys, "figure", "1", "--trials", "16")
        assert code == 0 and "HP exact?" in out

    def test_figure5(self, capsys):
        code, out, _ = run_cli(capsys, "figure", "5")
        assert code == 0 and "bit-identical across PEs" in out


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_figure(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["figure", "9"])

    def test_figure3_walkthrough(self, capsys):
        code = main(["figure", "3"])
        out = capsys.readouterr().out
        assert code == 0 and "1.25" in out and "carry" in out


class TestInvarianceAndCalibration:
    def test_invariance_command(self, capsys):
        code, out, _ = run_cli(capsys, "invariance", "--n", "256")
        assert code == 0 and "1 distinct word pattern" in out

    def test_calibration_command(self, capsys):
        code, out, _ = run_cli(capsys, "calibration")
        assert code == 0
        assert "37" in out and "OUT OF BAND" not in out
