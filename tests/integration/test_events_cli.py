"""Integration tests for the flight-recorder CLI surface.

Covers ``--journal-out`` / ``--forensics-out`` on compute subcommands,
the ``repro events`` inspector (tail/filter/stats/validate and the
``--trace`` cross-process reassembly), and the subprocess kill-mid-run
path that must leave a schema-valid forensics bundle behind.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import numpy as np
import pytest

from repro.cli import main
from repro.observability import journal, metrics, tracing
from repro.observability.journal import JOURNAL
from repro.observability.metrics import REGISTRY
from repro.observability.monitor import MONITOR
from repro.observability.recorder import RECORDER
from repro.observability.schema import (
    validate_document,
    validate_forensics_doc,
    validate_jsonl_file,
)
from repro.observability.tracing import TRACER

REPO_ROOT = Path(__file__).resolve().parents[2]


@pytest.fixture(autouse=True)
def clean_observability():
    """The CLI enables the global gates; leave no state behind."""
    yield
    metrics.disable()
    tracing.disable()
    journal.disable()
    MONITOR.disarm()
    MONITOR.reset()
    REGISTRY.clear()
    TRACER.reset()
    JOURNAL.reset()
    RECORDER.uninstall()


def run_cli(capsys, *argv: str) -> tuple[int, str, str]:
    code = main(list(argv))
    captured = capsys.readouterr()
    return code, captured.out, captured.err


@pytest.fixture
def data_file(tmp_path, rng):
    f = tmp_path / "values.npy"
    np.save(f, rng.uniform(-1.0, 1.0, 4096))
    return str(f)


class TestJournalOut:
    def test_sum_spills_request_events(self, tmp_path, capsys, data_file):
        spill = tmp_path / "journal.jsonl"
        code, out, _ = run_cli(
            capsys, "sum", data_file, "--substrate", "serial",
            "--journal-out", str(spill),
        )
        assert code == 0
        checked, problems = validate_jsonl_file(str(spill))
        assert problems == []
        events = [json.loads(line) for line in
                  spill.read_text().splitlines()]
        names = [e["event"] for e in events]
        assert "request.start" in names
        assert "request.finish" in names

    def test_procs_spill_tells_the_cross_process_story(
        self, tmp_path, capsys, data_file
    ):
        spill = tmp_path / "journal.jsonl"
        code, _, _ = run_cli(
            capsys, "sum", data_file, "--substrate", "procs", "--pes", "2",
            "--journal-out", str(spill),
        )
        assert code == 0
        events = [json.loads(line) for line in
                  spill.read_text().splitlines()]
        pids = {e["pid"] for e in events}
        assert len(pids) > 1, "worker events missing from the spill"
        trace_ids = {e.get("trace_id") for e in events} - {None}
        assert len(trace_ids) == 1, "expected one causal trace"

    def test_planned_sum_journals_the_verdict(
        self, tmp_path, capsys, data_file
    ):
        spill = tmp_path / "journal.jsonl"
        code, _, _ = run_cli(
            capsys, "sum", data_file, "--target-accuracy", "0",
            "--journal-out", str(spill),
        )
        assert code == 0
        events = [json.loads(line) for line in
                  spill.read_text().splitlines()]
        decisions = [e for e in events if e["event"] == "plan.decision"]
        assert len(decisions) == 1
        assert decisions[0]["engine"]
        assert "coefficient" in decisions[0]  # the promised bound term
        assert "verdicts" in decisions[0]

    def test_planned_substrate_run_audits_under_one_trace(
        self, tmp_path, capsys, data_file
    ):
        """The acceptance story: a planned procs run journals the chosen
        engine, the promised bound, AND the measured margin — all under
        a single trace_id, workers included."""
        spill = tmp_path / "journal.jsonl"
        code, _, _ = run_cli(
            capsys, "sum", data_file, "--substrate", "procs", "--pes", "2",
            "--target-accuracy", "1e-12", "--journal-out", str(spill),
        )
        assert code == 0
        events = [json.loads(line) for line in
                  spill.read_text().splitlines()]
        names = {e["event"] for e in events}
        assert {"plan.decision", "request.start", "worker.task", "merge",
                "request.finish", "bound.check"} <= names
        # One trace covers the plan, the cross-process execution, and
        # the bound audit — nothing is orphaned.
        assert len({e.get("trace_id") for e in events}) == 1
        (decision,) = [e for e in events if e["event"] == "plan.decision"]
        (audit,) = [e for e in events if e["event"] == "bound.check"]
        assert audit["engine"] == decision["engine"]
        assert audit["bound"] >= 0.0 and audit["error"] >= 0.0
        assert audit["margin"] <= 1.0 and audit["breached"] is False


class TestForensicsOut:
    def test_clean_exit_writes_bundle(self, tmp_path, capsys, data_file):
        bundle = tmp_path / "forensics.json"
        code, _, _ = run_cli(
            capsys, "sum", data_file, "--substrate", "serial",
            "--forensics-out", str(bundle),
        )
        assert code == 0
        doc = json.loads(bundle.read_text())
        assert validate_document(doc) == ("forensics_bundle", [])
        assert doc["reason"] == "exit"
        names = [e["event"] for e in doc["journal"]["events"]]
        assert "request.finish" in names

    def test_sigterm_writes_bundle_naming_the_signal(self, tmp_path, rng):
        """SIGTERM a live run; the recorder must leave a schema-valid
        bundle naming the signal, and the process must still die with
        the signal's exit status."""
        bundle = tmp_path / "forensics.json"
        values = tmp_path / "values.npy"
        np.save(values, rng.uniform(-1, 1, 100_000))
        env = dict(os.environ)
        env["PYTHONPATH"] = str(REPO_ROOT / "src")
        # --serve-linger keeps the armed process alive after the procs
        # reduce so the kill lands deterministically mid-task.
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "sum", str(values),
             "--substrate", "procs", "--pes", "2",
             "--forensics-out", str(bundle),
             "--serve-metrics", "0", "--serve-linger", "120"],
            stdout=subprocess.PIPE, stderr=subprocess.PIPE,
            text=True, env=env, cwd=str(REPO_ROOT),
        )
        try:
            assert "serving telemetry on" in proc.stdout.readline()
            deadline = time.time() + 60
            # The reduce is done once the journal has a finish event in
            # the bundle-to-be; just give the short sum time to finish.
            time.sleep(5.0)
            proc.send_signal(signal.SIGTERM)
            proc.wait(timeout=60)
        finally:
            proc.kill()
        deadline = time.time() + 10
        while not bundle.exists() and time.time() < deadline:
            time.sleep(0.1)
        assert bundle.exists(), "no forensics bundle after SIGTERM"
        doc = json.loads(bundle.read_text())
        assert validate_forensics_doc(doc) == []
        assert doc["reason"] == "signal: SIGTERM"
        assert proc.returncode == -signal.SIGTERM


class TestEventsCommand:
    @pytest.fixture
    def spill(self, tmp_path, capsys, data_file):
        path = tmp_path / "journal.jsonl"
        run_cli(capsys, "sum", data_file, "--substrate", "procs",
                "--pes", "2", "--journal-out", str(path))
        return str(path)

    def test_plain_listing(self, capsys, spill):
        code, out, _ = run_cli(capsys, "events", spill)
        assert code == 0
        assert "request.start" in out
        assert "request.finish" in out

    def test_tail_limits_output(self, capsys, spill):
        code, out, _ = run_cli(capsys, "events", spill, "--tail", "1")
        assert code == 0
        assert len(out.strip().splitlines()) == 1

    def test_event_prefix_filter(self, capsys, spill):
        code, out, _ = run_cli(
            capsys, "events", spill, "--event", "worker."
        )
        assert code == 0
        lines = out.strip().splitlines()
        assert lines
        assert all("worker." in line for line in lines)

    def test_stats(self, capsys, spill):
        code, out, _ = run_cli(capsys, "events", spill, "--stats")
        assert code == 0
        assert "request.start" in out
        assert "total" in out

    def test_json_output_is_jsonl(self, capsys, spill):
        code, out, _ = run_cli(capsys, "events", spill, "--json")
        assert code == 0
        for line in out.strip().splitlines():
            json.loads(line)

    def test_validate(self, capsys, spill):
        code, out, _ = run_cli(capsys, "events", spill, "--validate")
        assert code == 0
        assert "conform to the journal_event schema" in out

    def test_trace_reassembly(self, capsys, spill):
        events = [json.loads(line) for line in
                  Path(spill).read_text().splitlines()]
        trace_id = next(e["trace_id"] for e in events
                        if e.get("trace_id"))
        code, out, _ = run_cli(
            capsys, "events", spill, "--trace", trace_id
        )
        assert code == 0
        header = out.splitlines()[0]
        assert header.startswith(f"trace {trace_id}:")
        assert "process(es)" in header
        # More than one pid participates in a procs trace.
        n_procs = int(header.split("across")[1].split("process")[0])
        assert n_procs > 1

    def test_unknown_trace_fails(self, capsys, spill):
        code, _, err = run_cli(
            capsys, "events", spill, "--trace", "deadbeefdeadbeef"
        )
        assert code == 1
        assert "no events" in err

    def test_missing_file_fails(self, capsys, tmp_path):
        code, _, err = run_cli(
            capsys, "events", str(tmp_path / "nope.jsonl")
        )
        assert code == 2
        assert err

    def test_not_a_journal_fails(self, capsys, tmp_path):
        path = tmp_path / "other.json"
        path.write_text(json.dumps({"kind": "metrics"}))
        code, _, err = run_cli(capsys, "events", str(path))
        assert code == 2
        assert "journal" in err

    def test_reads_forensics_bundle(self, capsys, tmp_path, data_file):
        bundle = tmp_path / "forensics.json"
        run_cli(capsys, "sum", data_file, "--substrate", "serial",
                "--forensics-out", str(bundle))
        code, out, _ = run_cli(capsys, "events", str(bundle), "--stats")
        assert code == 0
        assert "request.finish" in out

    def test_corrupt_line_fails_with_location(self, capsys, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"event": "a", "kind": "journal_event"}\nnot json\n')
        code, _, err = run_cli(capsys, "events", str(path))
        assert code == 2
        assert "2" in err  # names the offending line


class TestBenchJournal:
    def test_bench_spills_requests(self, capsys, tmp_path):
        spill = tmp_path / "bench.jsonl"
        code, out, _ = run_cli(
            capsys, "bench", "--regress", "--n", "4096", "--repeats", "1",
            "--out", str(tmp_path / "bench.json"),
            "--journal", str(spill),
        )
        assert code == 0
        assert "journal spill written" in out
        checked, problems = validate_jsonl_file(str(spill))
        assert checked > 0
        assert problems == []
