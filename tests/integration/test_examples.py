"""Integration: every example script runs end-to-end and holds its
internal assertions."""

from __future__ import annotations

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = sorted(
    (Path(__file__).resolve().parents[2] / "examples").glob("*.py")
)


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.stem)
def test_example_runs(script, capsys):
    runpy.run_path(str(script), run_name="__main__")
    out = capsys.readouterr().out
    assert out.strip(), f"{script.name} produced no output"


def test_examples_exist():
    names = {p.stem for p in EXAMPLES}
    assert {"quickstart", "nbody_forces", "climate_global_means",
            "cross_architecture", "adaptive_precision"} <= names
