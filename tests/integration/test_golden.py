"""Golden-value regression tests.

These pin exact word/digit patterns for a fixed seeded dataset.  Any
change anywhere in the conversion or summation pipeline that alters a
single bit — however plausible-looking — fails here first.  (The values
were produced by the verified implementation and cross-checked against
exact rational arithmetic by the property suites.)
"""

from __future__ import annotations

import numpy as np

from repro.core.params import HPParams
from repro.core.scalar import from_double, to_int_scaled
from repro.core.vectorized import batch_sum_doubles
from repro.hallberg.params import HallbergParams
from repro.hallberg.vectorized import hb_batch_sum_doubles
from repro.util.rng import default_rng

GOLDEN_SEED = 20160523
GOLDEN_N = 1000

GOLDEN_HP_SUMS = {
    (2, 1): (18446744073709551614, 5558711265842788352),
    (3, 2): (18446744073709551614, 5558711265842788352, 0),
    (6, 3): (
        18446744073709551615, 18446744073709551615, 18446744073709551614,
        5558711265842788352, 0, 0,
    ),
    (8, 4): (
        18446744073709551615, 18446744073709551615, 18446744073709551615,
        18446744073709551614, 5558711265842788352, 0, 0, 0,
    ),
}

GOLDEN_HALLBERG_SUM = (0, 0, 0, 654303035392, -466924561288, 0, 0, 0, 0, 0)

GOLDEN_CONVERSIONS = {
    0.1: (0, 1844674407370955264, 0),
    -0.1: (18446744073709551615, 16602069666338596352, 0),
    2.5: (2, 1 << 63, 0),
    -(2.0**-128): (
        18446744073709551615, 18446744073709551615, 18446744073709551615,
    ),
}


def _golden_data() -> np.ndarray:
    return default_rng(GOLDEN_SEED).uniform(-0.5, 0.5, GOLDEN_N)


class TestGoldenSums:
    def test_hp_sums(self):
        data = _golden_data()
        for (n, k), expected in GOLDEN_HP_SUMS.items():
            assert batch_sum_doubles(data, HPParams(n, k)) == expected, (n, k)

    def test_hallberg_sum(self):
        data = _golden_data()
        assert hb_batch_sum_doubles(data, HallbergParams(10, 38)) == (
            GOLDEN_HALLBERG_SUM
        )

    def test_formats_agree_on_value(self):
        """The golden patterns across formats denote one rational."""
        values = set()
        for (n, k), words in GOLDEN_HP_SUMS.items():
            p = HPParams(n, k)
            from fractions import Fraction

            values.add(Fraction(to_int_scaled(words), p.scale))
        assert len(values) == 1


class TestGoldenConversions:
    def test_pinned_word_vectors(self):
        p = HPParams(3, 2)
        for x, expected in GOLDEN_CONVERSIONS.items():
            assert from_double(x, p) == expected, x

    def test_dataset_head_is_stable(self):
        """The RNG stream itself is part of the regression surface."""
        head = _golden_data()[:3]
        assert head[0] == -0.2976820000624706
        assert head[1] == 0.26948968606700874
        assert head[2] == 0.4263376352116761
