"""Integration tests pinning the paper's headline claims end-to-end.

Each test corresponds to a sentence in the paper; together they are the
abstract, verified.
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core.params import HPParams
from repro.core.scalar import to_double
from repro.core.vectorized import batch_sum_doubles
from repro.experiments.datasets import zero_sum_set
from repro.hallberg.params import HallbergParams, equivalent_hallberg
from repro.parallel.methods import HallbergMethod, HPMethod
from repro.parallel.threads import thread_reduce
from repro.perfmodel import fig4_model_sweep, speedup_bound_eq6
from repro.util.rng import default_rng


class TestAbstractClaims:
    def test_yields_sums_with_perfect_precision(self):
        """'...yields sums with perfect precision' — exact against
        rational arithmetic on the paper's own workload."""
        values = zero_sum_set(1024, default_rng(1))
        p = HPParams(3, 2)
        assert to_double(batch_sum_doubles(values, p), p) == 0.0

    def test_invariant_to_summation_order(self, rng):
        """'...invariant to summation order...'"""
        data = rng.uniform(-0.5, 0.5, 10_000)
        p = HPParams(6, 3)
        words = batch_sum_doubles(data, p)
        for _ in range(5):
            assert batch_sum_doubles(rng.permutation(data), p) == words

    def test_invariant_to_system_architecture(self, rng):
        """'...and system architecture' — every substrate, same words
        (full matrix in tests/parallel/test_cross_substrate.py)."""
        data = rng.uniform(-0.5, 0.5, 2000)
        method = HPMethod(HPParams(6, 3))
        assert (
            thread_reduce(data, method, 1).partial
            == thread_reduce(data, method, 12).partial
        )

    def test_tunable_fractional_precision(self):
        """'...introducing tunable fractional precision to place precision
        where it is needed'."""
        wide = HPParams(6, 1)   # 5 whole words: huge range
        deep = HPParams(6, 5)   # 5 fraction words: fine resolution
        assert wide.max_value > 1e90 and deep.smallest < 1e-90
        assert wide.total_bits == deep.total_bits

    def test_eliminates_aliasing(self):
        """'...eliminating the aliasing problem of the original method':
        equal HP values <=> equal words; Hallberg aliases."""
        from repro.core.hpnum import HPNumber
        from repro.hallberg.hbnum import HallbergNumber

        p = HPParams(3, 2)
        hb = HallbergParams(10, 38)
        a = HPNumber.from_double(0.5, p) + HPNumber.from_double(0.5, p)
        assert a.words == HPNumber.from_double(1.0, p).words
        b = HallbergNumber.from_double(0.5, hb) + HallbergNumber.from_double(
            0.5, hb
        )
        assert b.digits != HallbergNumber.from_double(1.0, hb).digits

    def test_eliminates_storage_overhead(self):
        """'...eliminating the storage overhead': all bits but one are
        precision, vs Hallberg's sign+carry bits per word."""
        hp = HPParams(8, 4)
        hb = HallbergParams(10, 52)
        assert hp.precision_bits == hp.total_bits - 1
        assert hb.precision_bits == 520 < hb.storage_bits == 640
        # Equal precision in fewer words:
        assert hp.precision_bits >= 511 and hp.n < hb.n

    def test_outperforms_beyond_one_million_summands(self):
        """'...outperforms the previous state-of-the-art for larger
        problems involving over one million summands at high precision'
        — on the modeled Fig. 4 curve."""
        points = {pt.n: pt.speedup for pt in fig4_model_sweep(
            [2**10, 2**24]
        )}
        assert points[2**10] < 1.0 < points[2**24]

    def test_speedup_grows_as_m_shrinks(self):
        """Eq. (6)'s structural consequence."""
        assert speedup_bound_eq6(37) > speedup_bound_eq6(52)


class TestSection2Claims:
    def test_error_grows_linearly_not_sqrt(self):
        """Sec. II.A: 'the observed error in the sum increases linearly
        with the number of additions performed'."""
        from repro.experiments.rounding import run_fig1

        res = run_fig1(set_sizes=(128, 512), n_trials=256, seed=11)
        by_n = {r.n: r.double_stats.stdev for r in res.rows}
        # Linear predicts 4x; sqrt predicts 2x.  Require clearly super-sqrt.
        assert by_n[512] / by_n[128] > 2.5

    def test_hallberg_budget_is_hard(self):
        """Sec. II.B: exceeding the planned summand count is
        'catastrophic' — we turn it into an exception."""
        from repro.errors import SummandLimitError

        tight = equivalent_hallberg(512, 100)
        method = HallbergMethod(tight)
        data = np.full(tight.max_summands + 1, 1e-3)
        with pytest.raises(SummandLimitError):
            method.local_reduce(data)


class TestSection4Claims:
    def test_precision_equivalency_table2(self):
        """Sec. IV.A: the Table 2 configurations really do match 512-bit
        HP within a few bits."""
        hp_bits = HPParams(8, 4).precision_bits  # 511
        for n, m in ((10, 52), (12, 43), (14, 37)):
            hb_bits = HallbergParams(n, m).precision_bits
            assert abs(hb_bits - hp_bits) <= 9

    def test_gpu_memory_op_argument(self):
        """Sec. IV.B: 7/6 vs 2/1 word traffic => >= 4.3x bound."""
        from repro.perfmodel import double_mem, hp_mem

        ratio = hp_mem(HPParams(6, 3)).total / double_mem().total
        assert ratio >= 4.3

    def test_sum_32m_at_reduced_scale(self, rng):
        """The Figs. 5-8 workload at 1/256 scale, exact and invariant."""
        data = rng.uniform(-0.5, 0.5, (1 << 25) // 256)
        p = HPParams(6, 3)
        words = batch_sum_doubles(data, p)
        assert to_double(words, p) == math.fsum(data)
