"""End-to-end tests for ``repro profile``: the cost table, the export
artifacts, and the measured-anchor calibration feedback."""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.observability.profile import parse_collapsed, validate_speedscope
from repro.perfmodel.calibration import MEASURED_SCHEMA


@pytest.fixture(autouse=True)
def clean_gates():
    from repro.observability import metrics, profile, tracing
    from repro.observability.metrics import REGISTRY
    from repro.observability.tracing import TRACER

    yield
    metrics.disable()
    tracing.disable()
    profile.disable()
    REGISTRY.clear()
    TRACER.reset()


class TestProfileCommand:
    def test_serial_superacc_renders_cost_table(self, capsys):
        status = main(["profile", "--engine", "hp-superacc",
                       "--n", "50000", "--no-sample"])
        assert status == 0
        out = capsys.readouterr().out
        assert "superacc.scatter" in out
        assert "% wall" in out
        assert "of wall, master self-time" in out

    def test_json_output_attributes_most_of_the_wall(self, capsys):
        status = main(["profile", "--engine", "hp-superacc",
                       "--n", "200000", "--no-sample", "--json"])
        assert status == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["kind"] == "profile"
        names = {row["phase"] for row in doc["phases"]}
        assert {"superacc.scatter", "hp.round", "hp.finalize"} <= names
        # The acceptance bar: named phases explain >= 90% of the run.
        assert doc["attributed_fraction"] >= 0.9

    def test_artifacts_are_written_and_valid(self, tmp_path, capsys):
        fg = tmp_path / "profile.collapsed"
        ss = tmp_path / "profile.speedscope.json"
        pf = tmp_path / "profile.perfetto.json"
        status = main(["profile", "--engine", "hp-superacc",
                       "--n", "300000", "--sample-hz", "500",
                       "--flamegraph", str(fg), "--speedscope", str(ss),
                       "--perfetto", str(pf)])
        assert status == 0
        stacks = parse_collapsed(fg.read_text())
        assert stacks and sum(stacks.values()) > 0
        doc = json.loads(ss.read_text())
        assert validate_speedscope(doc) == []
        trace = json.loads(pf.read_text())
        kinds = {ev["ph"] for ev in trace["traceEvents"]}
        assert {"X", "C"} <= kinds

    def test_double_and_hallberg_engines(self, capsys):
        assert main(["profile", "--engine", "double", "--n", "10000",
                     "--no-sample"]) == 0
        assert main(["profile", "--engine", "hallberg", "--n", "10000",
                     "--no-sample"]) == 0
        out = capsys.readouterr().out
        assert "hallberg.convert" in out

    def test_threads_substrate(self, capsys):
        status = main(["profile", "--engine", "hp-superacc",
                       "--n", "50000", "--substrate", "threads",
                       "--pes", "2", "--no-sample", "--json"])
        assert status == 0
        doc = json.loads(capsys.readouterr().out)
        names = {row["phase"] for row in doc["phases"]}
        assert {"threads.partition", "threads.compute",
                "threads.combine"} <= names

    def test_procs_substrate_has_worker_rows(self, capsys):
        status = main(["profile", "--engine", "hp-superacc",
                       "--n", "50000", "--substrate", "procs",
                       "--pes", "2", "--no-sample", "--json"])
        assert status == 0
        doc = json.loads(capsys.readouterr().out)
        workers = {row["worker"] for row in doc["phases"]}
        assert sum(1 for w in workers if w.startswith("pid=")) == 2

    def test_prom_out_carries_profile_metrics(self, tmp_path, capsys):
        prom = tmp_path / "metrics.prom"
        status = main(["profile", "--engine", "hp-superacc",
                       "--n", "20000", "--no-sample",
                       "--prom-out", str(prom)])
        assert status == 0
        text = prom.read_text()
        assert "profile_phase_seconds" in text
        assert 'phase="superacc.scatter"' in text


class TestProfileCalibrate:
    def test_residual_table_and_cost_file(self, tmp_path, capsys):
        out = tmp_path / "measured.json"
        status = main(["profile", "--calibrate", "--n", "20000",
                       "--repeats", "1", "--calibrate-out", str(out)])
        assert status == 0
        text = capsys.readouterr().out
        assert "measured/model" in text
        assert "superacc / double ratio" in text
        doc = json.loads(out.read_text())
        assert doc["schema"] == MEASURED_SCHEMA
        assert set(doc["measured"]) == {"double", "hp-superacc", "hallberg"}
        assert all(v > 0 for v in doc["measured"].values())

    def test_measured_file_feeds_measured_anchors(self, tmp_path, capsys):
        out = tmp_path / "measured.json"
        main(["profile", "--calibrate", "--n", "20000", "--repeats", "1",
              "--calibrate-out", str(out)])
        from repro.perfmodel.calibration import measured_anchors

        doc = json.loads(out.read_text())
        anchors = measured_anchors(doc["measured"], n=doc["n"])
        assert len(anchors) == 3
        assert all(a.residual > 0 for a in anchors)
