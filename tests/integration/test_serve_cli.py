"""Integration tests for the live-telemetry CLI surface.

Covers the ``serve-metrics`` daemon (subprocess: real HTTP scrape of a
real workload, the CI live-telemetry job's recipe), the
``--serve-metrics`` flag on compute subcommands, the ``--prom-out`` /
``--perfetto-out`` file exporters, and ``repro top``.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import time
import urllib.error
import urllib.request
from pathlib import Path

import numpy as np
import pytest

from repro.cli import main
from repro.observability import metrics, tracing
from repro.observability.export import parse_prometheus_text
from repro.observability.metrics import REGISTRY
from repro.observability.monitor import MONITOR
from repro.observability.tracing import TRACER

REPO_ROOT = Path(__file__).resolve().parents[2]


@pytest.fixture(autouse=True)
def clean_observability():
    """The CLI enables the global gates; leave no state behind."""
    yield
    metrics.disable()
    tracing.disable()
    MONITOR.disarm()
    MONITOR.reset()
    REGISTRY.clear()
    TRACER.reset()


def _spawn(args: list[str]) -> subprocess.Popen:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    return subprocess.Popen(
        [sys.executable, "-m", "repro", *args],
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
        env=env,
        cwd=str(REPO_ROOT),
    )


def _read_url(proc: subprocess.Popen, timeout: float = 30.0) -> str:
    """The serve paths print exactly one ``serving telemetry on <url>``
    line on stdout; parse the URL from it."""
    line = proc.stdout.readline()
    assert "serving telemetry on http://" in line, (
        f"unexpected first line: {line!r} "
        f"(stderr: {proc.stderr.read() if proc.poll() is not None else ''!r})"
    )
    return line.strip().rsplit(" ", 1)[-1]


def _scrape(url: str, timeout: float = 5.0) -> bytes:
    with urllib.request.urlopen(url, timeout=timeout) as resp:
        return resp.read()


def _wait_for(predicate, deadline_s: float = 60.0, what: str = "condition"):
    deadline = time.time() + deadline_s
    while time.time() < deadline:
        value = predicate()
        if value is not None:
            return value
        time.sleep(0.2)
    raise AssertionError(f"timed out waiting for {what}")


def _terminate(proc: subprocess.Popen) -> None:
    proc.terminate()
    try:
        proc.wait(timeout=15)
    except subprocess.TimeoutExpired:
        proc.kill()
        proc.wait(timeout=15)
    proc.stdout.close()
    proc.stderr.close()


class TestServeMetricsDaemon:
    def test_daemon_serves_workload_telemetry(self):
        """The acceptance-criterion scrape: a procs workload behind
        ``serve-metrics`` exposes valid Prometheus text with procpool.*
        and drift.* families, and the HP path shows zero ULP drift."""
        proc = _spawn([
            "serve-metrics", "--port", "0", "--workload", "20000",
            "--substrate", "procs", "--pes", "2", "--method", "hp-superacc",
            "--interval", "0.2",
        ])
        try:
            url = _read_url(proc)

            health = json.loads(_scrape(url + "/healthz"))
            assert health["status"] == "ok"

            def drift_visible():
                text = _scrape(url + "/metrics").decode()
                return text if "drift_ulp_error_count" in text else None

            text = _wait_for(drift_visible, what="drift metrics in scrape")
            families = parse_prometheus_text(text)

            assert families["global_sum_calls"]["type"] == "counter"
            assert families["procpool_reduces"]["type"] == "counter"
            assert families["procpool_tasks"]["type"] == "counter"

            drift = families["drift_ulp_error"]
            assert drift["type"] == "histogram"
            paths = {l.get("path") for _, l, _ in drift["samples"]}
            assert {"float64", "hp-superacc"} <= paths
            # The delivered HP value never drifts: its ULP histogram sum
            # stays exactly zero no matter how many samples landed.
            hp_sum = next(
                v for n, l, v in drift["samples"]
                if n.endswith("_sum") and l.get("path") == "hp-superacc"
            )
            assert hp_sum == 0
            violations = [
                v for n, l, v in families.get(
                    "drift_order_invariance_violations",
                    {"samples": []},
                )["samples"]
                if l.get("path") == "hp-superacc"
            ]
            assert all(v == 0 for v in violations)

            snapshot = json.loads(_scrape(url + "/snapshot"))
            assert snapshot["kind"] == "live_snapshot"
            assert snapshot["samples"] >= 1
        finally:
            _terminate(proc)

    def test_404_and_request_accounting(self):
        proc = _spawn(["serve-metrics", "--port", "0"])
        try:
            url = _read_url(proc)
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                _scrape(url + "/favicon.ico")
            assert excinfo.value.code == 404
            _scrape(url + "/metrics")
            health = json.loads(_scrape(url + "/healthz"))
            assert health["requests"] >= 1
        finally:
            _terminate(proc)


class TestServeMetricsFlag:
    def test_sum_exposes_metrics_while_running(self, tmp_path):
        """``repro sum --substrate procs --serve-metrics PORT`` is
        scrapeable during the run (the linger keeps the endpoint up)."""
        data = tmp_path / "data.npy"
        rng = np.random.default_rng(23)
        np.save(data, rng.uniform(-1, 1, 50_000))
        proc = _spawn([
            "sum", str(data), "--substrate", "procs", "--pes", "2",
            "--serve-metrics", "0", "--serve-linger", "30",
        ])
        try:
            url = _read_url(proc)

            def families_ready():
                text = _scrape(url + "/metrics").decode()
                if "procpool_reduces" in text and "drift_ulp_error" in text:
                    return parse_prometheus_text(text)
                return None

            families = _wait_for(families_ready, what="sum-run families")
            assert families["procpool_reduces"]["samples"][0][2] >= 1
            last_ulp = {
                l["path"]: v
                for _, l, v in families["drift_last_ulp_error"]["samples"]
            }
            assert last_ulp["hp-superacc"] == 0
        finally:
            _terminate(proc)


class TestFileExporters:
    def test_prom_out_and_perfetto_out(self, tmp_path):
        data = tmp_path / "data.npy"
        rng = np.random.default_rng(29)
        np.save(data, rng.uniform(-1, 1, 20_000))
        prom = tmp_path / "metrics.prom"
        trace = tmp_path / "trace.perfetto.json"
        code = main([
            "sum", str(data), "--substrate", "threads", "--pes", "2",
            "--prom-out", str(prom), "--perfetto-out", str(trace),
        ])
        assert code == 0

        families = parse_prometheus_text(prom.read_text())
        assert families["global_sum_calls"]["type"] == "counter"
        assert families["global_sum_summands"]["samples"][0][2] == 20_000

        doc = json.loads(trace.read_text())
        names = {e["name"] for e in doc["traceEvents"] if e["ph"] == "X"}
        assert "global_sum" in names

    def test_prom_out_procs_includes_worker_tracks(self, tmp_path):
        data = tmp_path / "data.npy"
        rng = np.random.default_rng(31)
        np.save(data, rng.uniform(-1, 1, 20_000))
        trace = tmp_path / "trace.json"
        code = main([
            "sum", str(data), "--substrate", "procs", "--pes", "2",
            "--perfetto-out", str(trace),
        ])
        assert code == 0
        doc = json.loads(trace.read_text())
        pids = {e["pid"] for e in doc["traceEvents"] if e["ph"] == "X"}
        assert len(pids) >= 2  # master lane + >= 1 worker lane


class TestTopCommand:
    def test_top_renders_one_frame_from_live_server(self, capsys):
        from repro.observability.server import MetricsServer

        REGISTRY.counter("global_sum.calls", substrate="serial").inc()
        with MetricsServer(port=0, interval=0.05) as server:
            code = main([
                "top", "--url", server.url, "--iterations", "1",
                "--interval", "0.01", "--no-clear",
            ])
        assert code == 0
        out = capsys.readouterr().out
        assert "repro top —" in out
        assert "global_sum.calls" in out

    def test_top_unreachable_exits_nonzero(self, capsys):
        code = main([
            "top", "--url", "http://127.0.0.1:9", "--iterations", "1",
            "--interval", "0.01", "--no-clear",
        ])
        assert code == 1
