"""Integration tests for ``repro stats`` and the shared observability
flags: the run must emit schema-valid JSON with non-zero carry/CAS
metrics, and ``--validate`` must accept/reject files correctly."""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.observability import metrics, tracing
from repro.observability.metrics import REGISTRY
from repro.observability.schema import validate_file
from repro.observability.tracing import TRACER


@pytest.fixture(autouse=True)
def clean_observability():
    """The CLI enables the global gates; leave no state behind."""
    metrics.disable()
    tracing.disable()
    REGISTRY.clear()
    TRACER.reset()
    yield
    metrics.disable()
    tracing.disable()
    REGISTRY.clear()
    TRACER.reset()


def _metric_value(doc, name, **labels):
    want = {k: str(v) for k, v in labels.items()}
    total = 0
    found = False
    for m in doc["metrics"]:
        if m["name"] != name:
            continue
        if all(m["labels"].get(k) == v for k, v in want.items()):
            found = True
            total += m.get("value", m.get("count", 0))
    return total if found else None


class TestStatsRun:
    def test_stats_emits_valid_nonzero_metrics(self, tmp_path, capsys):
        mpath = tmp_path / "metrics.json"
        tpath = tmp_path / "trace.json"
        code = main([
            "stats", "--n", "20000", "--pes", "4",
            "--metrics-out", str(mpath), "--trace-out", str(tpath),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "metrics:" in out and "spans (by total time):" in out

        kind, errs = validate_file(str(mpath))
        assert (kind, errs) == ("metrics", [])
        kind, errs = validate_file(str(tpath))
        assert (kind, errs) == ("trace", [])

        doc = json.loads(mpath.read_text())
        # Carries from every instrumented path the stats run drives.
        assert _metric_value(doc, "hp.carry_words", path="scalar") > 0
        assert _metric_value(doc, "hp.carry_words", path="accumulator") > 0
        assert _metric_value(doc, "hp.carry_words", path="atomic") > 0
        # CAS traffic from the atomic-contention stage.
        assert _metric_value(doc, "atomic.word_adds") > 0
        assert _metric_value(doc, "atomic.cas_attempts_per_add") > 0
        assert _metric_value(doc, "global_sum.calls", method="hp") == 1

        trace = json.loads(tpath.read_text())
        names = {s["name"] for s in trace["spans"]}
        assert {"stats.workload", "stats.scalar_reference",
                "stats.atomic_contention", "global_sum"} <= names

    def test_stats_json_output(self, capsys):
        code = main(["stats", "--n", "5000", "--pes", "2", "--json"])
        assert code == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["kind"] == "run_report"
        assert doc["run"] == "repro-stats"
        assert doc["events"] >= 3
        span_names = {row["name"] for row in doc["spans"]}
        assert "stats.workload" in span_names


class TestValidateMode:
    def test_validate_accepts_good_files(self, tmp_path, capsys):
        mpath = tmp_path / "m.json"
        main(["stats", "--n", "2000", "--pes", "2", "--json",
              "--metrics-out", str(mpath)])
        capsys.readouterr()
        code = main(["stats", "--validate", str(mpath)])
        out = capsys.readouterr().out
        assert code == 0
        assert f"{mpath}: ok (metrics)" in out

    def test_validate_rejects_bad_and_missing(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text('{"kind": "trace", "schema_version": 99}')
        code = main(["stats", "--validate", str(bad),
                     "--validate", str(tmp_path / "nope.json")])
        out = capsys.readouterr().out
        assert code == 1
        assert "INVALID" in out


class TestSharedFlags:
    def test_sum_subcommand_emits_valid_files(self, tmp_path, capsys):
        """The shared flags hang off every compute subcommand; the
        vectorized ``sum`` path is carry-free by design, so the emitted
        docs may be sparse but must still match the schema."""
        f = tmp_path / "values.txt"
        f.write_text(" ".join(str(0.1 * i) for i in range(64)) + "\n")
        mpath = tmp_path / "metrics.json"
        tpath = tmp_path / "trace.json"
        code = main(["sum", str(f), "--metrics-out", str(mpath),
                     "--trace-out", str(tpath)])
        assert code == 0
        kind, errs = validate_file(str(mpath))
        assert (kind, errs) == ("metrics", [])
        kind, errs = validate_file(str(tpath))
        assert (kind, errs) == ("trace", [])

    def test_trace_out_alone_keeps_metrics_gate_off(self, tmp_path, capsys):
        f = tmp_path / "values.txt"
        f.write_text("1 2 3\n")
        tpath = tmp_path / "trace.json"
        code = main(["sum", str(f), "--trace-out", str(tpath)])
        assert code == 0
        kind, errs = validate_file(str(tpath))
        assert (kind, errs) == ("trace", [])
        assert len(REGISTRY) == 0  # metrics gate stayed off
