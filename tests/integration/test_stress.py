"""Stress and cross-feature integration tests.

Larger multisets, every extension interacting with every substrate, and
randomized cross-checks that tie the whole library together: any route
from the same multiset of doubles to HP words must land on the same
bits.
"""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.accumulator import HPAccumulator
from repro.core.convert_format import convert_words
from repro.core.io import number_from_bytes, number_from_hex, number_to_bytes, number_to_hex
from repro.core.hpnum import HPNumber
from repro.core.multi import HPMultiAccumulator
from repro.core.params import HPParams
from repro.core.streaming import AdaptiveAccumulator
from repro.core.vectorized import batch_sum_doubles
from repro.hallberg.interop import hallberg_to_hp
from repro.hallberg.params import HallbergParams
from repro.hallberg.vectorized import hb_batch_sum_doubles
from repro.parallel.drivers import global_sum
from repro.util.rng import default_rng

P = HPParams(6, 3)
HB = HallbergParams(10, 38)


class TestQuarterMillion:
    """256K summands end to end (the largest fast-suite scale)."""

    @pytest.fixture(scope="class")
    def data(self):
        return default_rng(2025).uniform(-0.5, 0.5, 1 << 18)

    @pytest.fixture(scope="class")
    def reference(self, data):
        return batch_sum_doubles(data, P)

    def test_value_is_exact(self, data, reference):
        from repro.core.scalar import to_double

        assert to_double(reference, P) == math.fsum(data)

    def test_substrates_at_scale(self, data, reference):
        for substrate, pes in [("threads", 16), ("mpi", 32),
                               ("mpi-scatter", 8), ("phi", 240)]:
            r = global_sum(data, "hp", substrate, pes, params=P)
            assert r.words == reference, substrate

    def test_hallberg_route_lands_on_same_bits(self, data, reference):
        digits = hb_batch_sum_doubles(data, HB)
        assert hallberg_to_hp(digits, HB, P) == reference

    def test_serialization_route(self, data, reference):
        number = HPNumber(reference, P)
        assert number_from_hex(number_to_hex(number)).words == reference
        assert number_from_bytes(number_to_bytes(number))[0].words == (
            reference
        )

    def test_format_conversion_route(self, data, reference):
        wide = convert_words(reference, P, HPParams(8, 4))
        back = convert_words(wide, HPParams(8, 4), P)
        assert back == reference

    def test_adaptive_route(self, data, reference):
        acc = AdaptiveAccumulator()
        # chunked adds keep the Python loop bounded
        for chunk in np.array_split(data, 64):
            shard = AdaptiveAccumulator()
            shard.extend(chunk.tolist())
            acc.merge(shard)
        assert acc.snapshot(P).words == reference


class TestRandomizedCrossChecks:
    @given(st.integers(min_value=0, max_value=2**32 - 1))
    @settings(max_examples=15, deadline=None)
    def test_all_routes_agree(self, seed):
        """For arbitrary seeds: vectorized, scalar, banked, adaptive and
        Hallberg-imported words are one bit pattern."""
        data = np.random.default_rng(seed).uniform(-1.0, 1.0, 257)
        reference = batch_sum_doubles(data, P)

        acc = HPAccumulator(P)
        acc.extend(data.tolist())
        assert acc.words == reference

        bank = HPMultiAccumulator(8, P)
        bank.add_at(np.arange(257) % 8, data)
        assert bank.total_words() == reference

        adaptive = AdaptiveAccumulator()
        adaptive.extend(data.tolist())
        assert adaptive.snapshot(P).words == reference

        digits = hb_batch_sum_doubles(data, HB)
        assert hallberg_to_hp(digits, HB, P) == reference

    @given(st.integers(min_value=0, max_value=2**32 - 1),
           st.integers(min_value=1, max_value=40))
    @settings(max_examples=15, deadline=None)
    def test_facade_pes_never_matter(self, seed, pes):
        data = np.random.default_rng(seed).uniform(-1.0, 1.0, 123)
        assert global_sum(data, "hp", "mpi", pes, params=P).words == (
            batch_sum_doubles(data, P)
        )
