"""Isolation for observability tests: every test starts with disabled
gates and an empty registry/tracer/journal, and leaves no state behind."""

from __future__ import annotations

import pytest

from repro.observability import journal, metrics, profile, tracing
from repro.observability.journal import JOURNAL
from repro.observability.metrics import REGISTRY
from repro.observability.monitor import MONITOR
from repro.observability.recorder import RECORDER
from repro.observability.tracing import TRACER


def _scrub():
    metrics.disable()
    tracing.disable()
    profile.disable()
    journal.disable()
    MONITOR.disarm()
    MONITOR.reset()
    REGISTRY.clear()
    TRACER.reset()
    JOURNAL.reset()
    RECORDER.uninstall()


@pytest.fixture(autouse=True)
def clean_observability():
    _scrub()
    yield
    _scrub()
