"""Isolation for observability tests: every test starts with disabled
gates and an empty registry/tracer, and leaves no state behind."""

from __future__ import annotations

import pytest

from repro.observability import metrics, profile, tracing
from repro.observability.metrics import REGISTRY
from repro.observability.monitor import MONITOR
from repro.observability.tracing import TRACER


@pytest.fixture(autouse=True)
def clean_observability():
    metrics.disable()
    tracing.disable()
    profile.disable()
    MONITOR.disarm()
    MONITOR.reset()
    REGISTRY.clear()
    TRACER.reset()
    yield
    metrics.disable()
    tracing.disable()
    profile.disable()
    MONITOR.disarm()
    MONITOR.reset()
    REGISTRY.clear()
    TRACER.reset()
