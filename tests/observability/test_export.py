"""Prometheus text exposition: sanitization, escaping, determinism,
cumulative histograms, and the round-trip through our own parser."""

from __future__ import annotations

import math

import pytest

from repro.observability import metrics
from repro.observability.export import (
    HELP_TEXT,
    escape_label_value,
    parse_prometheus_text,
    prometheus_text,
    sanitize_metric_name,
)
from repro.observability.export import _unescape_label_value
from repro.observability.metrics import REGISTRY, MetricsRegistry


class TestSanitizeMetricName:
    def test_dots_become_underscores(self):
        assert sanitize_metric_name("hp.carry_words") == "hp_carry_words"

    def test_already_valid_unchanged(self):
        assert sanitize_metric_name("global_sum_calls") == "global_sum_calls"
        assert sanitize_metric_name("a:b") == "a:b"  # colons are legal

    def test_leading_digit_gets_underscore(self):
        assert sanitize_metric_name("9lives") == "_9lives"

    def test_arbitrary_punctuation(self):
        assert sanitize_metric_name("drift.ulp-error/2") == "drift_ulp_error_2"

    def test_empty_name(self):
        assert sanitize_metric_name("") == "_"


class TestLabelEscaping:
    @pytest.mark.parametrize(
        "raw,escaped",
        [
            ('say "hi"', r"say \"hi\""),
            ("a\nb", r"a\nb"),
            ("back\\slash", r"back\\slash"),
            ("\\\n\"", r'\\\n\"'),
            ("plain", "plain"),
        ],
    )
    def test_escape(self, raw, escaped):
        assert escape_label_value(raw) == escaped

    @pytest.mark.parametrize(
        "raw", ['say "hi"', "a\nb", "back\\slash", "\\\n\"", "plain", ""]
    )
    def test_escape_round_trip(self, raw):
        assert _unescape_label_value(escape_label_value(raw)) == raw

    def test_unknown_escape_kept_verbatim(self):
        assert _unescape_label_value(r"a\tb") == r"a\tb"


class TestPrometheusText:
    def test_empty_registry_empty_text(self):
        assert prometheus_text(MetricsRegistry()) == ""

    def test_counter_and_gauge_lines(self):
        reg = MetricsRegistry()
        reg.counter("global_sum.calls", substrate="serial").inc(3)
        reg.gauge("drift.last_ulp_error", path="hp").set(0)
        text = prometheus_text(reg)
        assert "# TYPE global_sum_calls counter" in text
        assert 'global_sum_calls{substrate="serial"} 3' in text
        assert "# TYPE drift_last_ulp_error gauge" in text
        assert 'drift_last_ulp_error{path="hp"} 0' in text

    def test_help_catalog_used_for_known_families(self):
        reg = MetricsRegistry()
        reg.counter("hp.carry_words").inc()
        text = prometheus_text(reg)
        assert f"# HELP hp_carry_words {HELP_TEXT['hp_carry_words']}" in text

    def test_unknown_family_gets_generic_help(self):
        reg = MetricsRegistry()
        reg.counter("made.up").inc()
        assert "# HELP made_up repro metric made.up (counter)." in \
            prometheus_text(reg)

    def test_label_ordering_deterministic(self):
        """Registration order of labels must not leak into the wire
        format: same series, two call orders, byte-identical scrapes."""
        a = MetricsRegistry()
        a.counter("m", zeta="1", alpha="2").inc(5)
        b = MetricsRegistry()
        b.counter("m", alpha="2", zeta="1").inc(5)
        assert prometheus_text(a) == prometheus_text(b)
        assert 'm{alpha="2",zeta="1"} 5' in prometheus_text(a)

    def test_scrapes_of_same_state_are_byte_identical(self):
        reg = MetricsRegistry()
        for substrate in ("threads", "procs", "serial"):
            reg.counter("global_sum.calls", substrate=substrate).inc()
        reg.histogram("h", buckets=(1, 2)).observe(1.5)
        assert prometheus_text(reg) == prometheus_text(reg)

    def test_families_sorted_by_sanitized_name(self):
        reg = MetricsRegistry()
        reg.counter("zz.last").inc()
        reg.counter("aa.first").inc()
        text = prometheus_text(reg)
        assert text.index("aa_first") < text.index("zz_last")

    def test_label_values_escaped_on_the_wire(self):
        reg = MetricsRegistry()
        reg.counter("m", path='quo"te\nnew\\line').inc()
        text = prometheus_text(reg)
        assert r'm{path="quo\"te\nnew\\line"} 1' in text
        # The raw control characters never appear inside the braces.
        sample = [l for l in text.splitlines() if l.startswith("m{")][0]
        assert "\n" not in sample

    def test_histogram_cumulative_with_inf_terminator(self):
        reg = MetricsRegistry()
        h = reg.histogram("drift.ulp_error", buckets=(1, 10, 100), path="f")
        for v in (0, 5, 5, 50, 1e6):
            h.observe(v)
        text = prometheus_text(reg)
        assert 'drift_ulp_error_bucket{path="f",le="1"} 1' in text
        assert 'drift_ulp_error_bucket{path="f",le="10"} 3' in text
        assert 'drift_ulp_error_bucket{path="f",le="100"} 4' in text
        assert 'drift_ulp_error_bucket{path="f",le="+Inf"} 5' in text
        assert 'drift_ulp_error_count{path="f"} 5' in text
        assert "# TYPE drift_ulp_error histogram" in text

    def test_inf_bucket_count_equals_count_sample(self):
        reg = MetricsRegistry()
        h = reg.histogram("h", buckets=(1,))
        for v in (0.5, 2.0, 3.0):
            h.observe(v)
        families = parse_prometheus_text(prometheus_text(reg))
        samples = families["h"]["samples"]
        inf_bucket = next(
            v for n, labels, v in samples
            if n == "h_bucket" and labels["le"] == "+Inf"
        )
        count = next(v for n, _, v in samples if n == "h_count")
        assert inf_bucket == count == 3

    def test_histogram_ladder_monotone(self):
        reg = MetricsRegistry()
        h = reg.histogram("h", buckets=(1, 2, 5, 10))
        for v in (0, 1, 3, 7, 100, 2, 2):
            h.observe(v)
        ladder = [
            v for n, _, v in
            parse_prometheus_text(prometheus_text(reg))["h"]["samples"]
            if n == "h_bucket"
        ]
        assert ladder == sorted(ladder)

    def test_integral_floats_render_short(self):
        reg = MetricsRegistry()
        reg.gauge("g").set(4.0)
        assert "g 4\n" in prometheus_text(reg)

    def test_nonintegral_value_round_trips(self):
        reg = MetricsRegistry()
        reg.gauge("g").set(0.1)
        families = parse_prometheus_text(prometheus_text(reg))
        assert families["g"]["samples"][0][2] == 0.1


class TestParsePrometheusText:
    def test_round_trip_full_registry(self):
        reg = MetricsRegistry()
        reg.counter("global_sum.calls", substrate="procs").inc(7)
        reg.counter("global_sum.calls", substrate="serial").inc(2)
        reg.gauge("drift.last_ulp_error", path="hp-superacc").set(0)
        h = reg.histogram(
            "drift.ulp_error", buckets=(0, 1, 100), path='we"ird\npath'
        )
        for v in (0, 0, 40, 1e9):
            h.observe(v)
        families = parse_prometheus_text(prometheus_text(reg))

        calls = families["global_sum_calls"]
        assert calls["type"] == "counter"
        assert (
            "global_sum_calls", {"substrate": "procs"}, 7.0
        ) in calls["samples"]
        assert (
            "global_sum_calls", {"substrate": "serial"}, 2.0
        ) in calls["samples"]

        hist = families["drift_ulp_error"]
        assert hist["type"] == "histogram"
        # Escaped label values come back exactly.
        labels = [l for _, l, _ in hist["samples"]]
        assert {"path": 'we"ird\npath', "le": "+Inf"} in labels
        counts = {
            l["le"]: v for n, l, v in hist["samples"] if n.endswith("_bucket")
        }
        assert counts == {"0": 2.0, "1": 2.0, "100": 3.0, "+Inf": 4.0}

    def test_help_and_type_captured(self):
        families = parse_prometheus_text(
            "# HELP m the help text here\n# TYPE m counter\nm 1\n"
        )
        assert families["m"]["help"] == "the help text here"
        assert families["m"]["type"] == "counter"

    def test_special_values(self):
        families = parse_prometheus_text(
            "# TYPE g gauge\ng{k=\"a\"} +Inf\ng{k=\"b\"} -Inf\n"
            "g{k=\"c\"} NaN\n"
        )
        vals = {l["k"]: v for _, l, v in families["g"]["samples"]}
        assert vals["a"] == math.inf
        assert vals["b"] == -math.inf
        assert math.isnan(vals["c"])

    def test_malformed_sample_raises(self):
        with pytest.raises(ValueError, match="unparseable"):
            parse_prometheus_text("not a metric line at all {\n")

    def test_unknown_type_raises(self):
        with pytest.raises(ValueError, match="unknown type"):
            parse_prometheus_text("# TYPE m sparkline\n")

    def test_unterminated_label_raises(self):
        with pytest.raises(ValueError):
            parse_prometheus_text('m{k="oops 1\n')

    def test_bucket_samples_attach_to_histogram_family(self):
        reg = MetricsRegistry()
        reg.histogram("h", buckets=(1,)).observe(0.5)
        # A *separate* counter whose name merely ends in _count must not
        # be folded into the histogram.
        reg.counter("other_count").inc()
        families = parse_prometheus_text(prometheus_text(reg))
        assert set(families) == {"h", "other_count"}
        names = {n for n, _, _ in families["h"]["samples"]}
        assert names == {"h_bucket", "h_sum", "h_count"}


class TestDefaultRegistryExport:
    def test_module_default_targets_global_registry(self):
        metrics.enable()
        REGISTRY.counter("global_sum.calls", substrate="serial").inc()
        assert 'global_sum_calls{substrate="serial"} 1' in prometheus_text()


class TestHelpCatalogAudit:
    """Satellite contract: every metric family the source tree registers
    has a curated ``# HELP`` entry — an instrumented scrape never ships
    an undocumented series."""

    @staticmethod
    def _registered_families():
        """(static names, dynamic prefix -> suffixes) found by walking
        every ``.counter/.gauge/.histogram`` registration in src."""
        import ast
        import pathlib

        src = pathlib.Path(__file__).resolve().parents[2] / "src"
        names: set[str] = set()
        dynamic: dict[pathlib.Path, set[str]] = {}
        kwarg_suffixes: dict[pathlib.Path, set[str]] = {}
        for path in sorted(src.rglob("*.py")):
            tree = ast.parse(path.read_text())
            for node in ast.walk(tree):
                if not isinstance(node, ast.Call):
                    continue
                for kw in node.keywords:
                    if (kw.arg == "counter"
                            and isinstance(kw.value, ast.Constant)
                            and isinstance(kw.value.value, str)):
                        kwarg_suffixes.setdefault(path, set()).add(
                            kw.value.value
                        )
                func = node.func
                if not (isinstance(func, ast.Attribute)
                        and func.attr in ("counter", "gauge", "histogram")):
                    continue
                if not node.args:
                    continue
                arg = node.args[0]
                if isinstance(arg, ast.Constant) and isinstance(
                        arg.value, str):
                    names.add(arg.value)
                elif isinstance(arg, ast.JoinedStr):
                    # f"prefix.{suffix}" — record the constant prefix;
                    # suffixes come from counter= kwargs in the same file.
                    head = arg.values[0] if arg.values else None
                    if isinstance(head, ast.Constant):
                        dynamic.setdefault(path, set()).add(
                            str(head.value)
                        )
        for path, prefixes in dynamic.items():
            for prefix in prefixes:
                for suffix in kwarg_suffixes.get(path, ()):
                    names.add(prefix + suffix)
        return names, dynamic

    def test_every_registered_family_is_cataloged(self):
        names, _ = self._registered_families()
        assert names, "source scan found no metric registrations"
        missing = sorted(
            n for n in names if sanitize_metric_name(n) not in HELP_TEXT
        )
        assert missing == [], (
            f"metric families without a HELP_TEXT entry: {missing}; "
            "add curated help strings in repro.observability.export"
        )

    def test_dynamic_prefixes_have_coverage(self):
        _, dynamic = self._registered_families()
        for path, prefixes in dynamic.items():
            for prefix in prefixes:
                want = sanitize_metric_name(prefix + "x")[:-1]
                assert any(k.startswith(want) for k in HELP_TEXT), (
                    f"{path}: dynamic family prefix {prefix!r} has no "
                    "HELP_TEXT entries"
                )

    def test_scrape_never_emits_generic_fallback(self):
        import numpy as np

        from repro.core.planner import planned_sum
        from repro.observability import journal
        from repro.observability.slo import slo_report
        from repro.parallel.drivers import global_sum

        metrics.enable()
        journal.enable()
        xs = np.linspace(-1.0, 1.0, 512)
        global_sum(xs, "hp", "threads", pes=2)
        planned_sum(xs, 0.0)
        slo_report()
        text = prometheus_text()
        fallback = [
            line for line in text.splitlines()
            if line.startswith("# HELP") and "repro metric " in line
        ]
        assert fallback == [], (
            "scrape produced generic fallback HELP lines (uncatalogued "
            f"families): {fallback}"
        )
