"""The structured event journal: gating, ring bounds, trace stamping,
spill, worker absorption, and the exported document's schema."""

from __future__ import annotations

import json
import os
import threading

import pytest

from repro.observability import journal
from repro.observability.journal import (
    DEFAULT_CAPACITY,
    EventJournal,
    JOURNAL,
    JOURNAL_SCHEMA_VERSION,
)
from repro.observability.schema import (
    validate_journal_doc,
    validate_journal_event,
    validate_jsonl_file,
)
from repro.observability.tracing import TraceContext, activate_context


class TestGating:
    def test_disabled_emit_is_a_noop(self):
        assert journal.emit("request.start") is None
        assert len(JOURNAL) == 0

    def test_enable_disable_roundtrip(self):
        journal.enable()
        assert journal.emit("request.start") is not None
        journal.disable()
        assert journal.emit("request.start") is None
        assert len(JOURNAL) == 1

    def test_absorb_gated_off(self):
        assert JOURNAL.absorb([{"event": "x"}]) == 0


class TestEmission:
    def test_record_shape(self):
        journal.enable()
        record = journal.emit("plan.decision", engine="small", target=0.0)
        assert record["kind"] == "journal_event"
        assert record["schema_version"] == JOURNAL_SCHEMA_VERSION
        assert record["event"] == "plan.decision"
        assert record["pid"] == os.getpid()
        assert record["engine"] == "small"
        assert validate_journal_event(record) == []

    def test_seq_is_monotonic(self):
        journal.enable()
        seqs = [journal.emit("e")["seq"] for _ in range(5)]
        assert seqs == [0, 1, 2, 3, 4]

    def test_non_jsonable_fields_are_stringified(self):
        journal.enable()
        record = journal.emit("e", obj=object(), xs=(1, 2), d={"k": set()})
        json.dumps(record)  # must not raise
        assert record["xs"] == [1, 2]

    def test_trace_context_is_stamped_when_active(self):
        journal.enable()
        ctx = TraceContext.new()
        ctx.span_id = 7
        with activate_context(ctx):
            record = journal.emit("e")
        assert record["trace_id"] == ctx.trace_id
        assert record["span_id"] == 7
        bare = journal.emit("e")
        assert "trace_id" not in bare

    def test_explicit_trace_id_wins(self):
        journal.enable()
        ctx = TraceContext.new()
        with activate_context(ctx):
            record = journal.emit("e", trace_id="override", span_id=3)
        assert record["trace_id"] == "override"
        assert record["span_id"] == 3


class TestRing:
    def test_capacity_bounds_and_counts_drops(self):
        journal.enable()
        j = EventJournal(capacity=4)
        for i in range(7):
            j.emit("e", i=i)
        assert len(j) == 4
        assert j.dropped == 3
        assert [r["i"] for r in j.events()] == [3, 4, 5, 6]

    def test_default_capacity(self):
        assert EventJournal()._ring.maxlen == DEFAULT_CAPACITY

    def test_drain_empties_the_ring(self):
        journal.enable()
        j = EventJournal()
        j.emit("a")
        j.emit("b")
        records = j.drain()
        assert [r["event"] for r in records] == ["a", "b"]
        assert len(j) == 0

    def test_filters(self):
        journal.enable()
        j = EventJournal()
        j.emit("worker.start", trace_id="t1", span_id=1)
        j.emit("worker.task", trace_id="t2", span_id=1)
        j.emit("merge", trace_id="t1", span_id=1)
        assert [r["event"] for r in j.events(event="worker.")] == [
            "worker.start", "worker.task",
        ]
        assert [r["event"] for r in j.events(trace_id="t1")] == [
            "worker.start", "merge",
        ]
        assert j.stats() == {"merge": 1, "worker.start": 1,
                             "worker.task": 1}
        assert [r["event"] for r in j.tail(2)] == ["worker.task", "merge"]

    def test_concurrent_emit_keeps_unique_seqs(self):
        journal.enable()
        j = EventJournal(capacity=4096)

        def worker():
            for _ in range(100):
                j.emit("e")

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        seqs = [r["seq"] for r in j.events()]
        assert len(seqs) == 800
        assert len(set(seqs)) == 800


class TestAbsorb:
    def test_worker_records_kept_verbatim(self):
        journal.enable()
        j = EventJournal()
        worker_records = [
            {"kind": "journal_event",
             "schema_version": JOURNAL_SCHEMA_VERSION,
             "event": "worker.task", "time_unix": 1.0, "pid": 99999,
             "seq": 0, "trace_id": "abc"},
        ]
        assert j.absorb(worker_records) == 1
        record = j.events()[0]
        assert record["pid"] == 99999  # origin pid survives
        assert record["seq"] == 0


class TestSpill:
    def test_jsonl_spill_validates(self, tmp_path):
        journal.enable()
        j = EventJournal()
        path = tmp_path / "journal.jsonl"
        j.spill_to(path)
        assert j.spill_path == str(path)
        j.emit("request.start", n=10)
        j.emit("request.finish", ok=True)
        j.close_spill()
        checked, problems = validate_jsonl_file(str(path))
        assert checked == 2
        assert problems == []

    def test_spill_appends(self, tmp_path):
        journal.enable()
        j = EventJournal()
        path = tmp_path / "journal.jsonl"
        j.spill_to(path)
        j.emit("a")
        j.close_spill()
        j.spill_to(path)
        j.emit("b")
        j.close_spill()
        events = [json.loads(line) for line in path.read_text().splitlines()]
        assert [e["event"] for e in events] == ["a", "b"]


class TestExport:
    def test_document_validates(self):
        journal.enable()
        JOURNAL.emit("request.start")
        JOURNAL.emit("request.finish")
        doc = JOURNAL.export()
        assert doc["kind"] == "journal"
        assert validate_journal_doc(doc) == []

    def test_reset_clears_everything(self, tmp_path):
        journal.enable()
        JOURNAL.spill_to(tmp_path / "j.jsonl")
        JOURNAL.emit("e")
        JOURNAL.reset()
        assert len(JOURNAL) == 0
        assert JOURNAL.dropped == 0
        assert JOURNAL.spill_path is None

    def test_bad_document_rejected(self):
        doc = {"kind": "journal", "schema_version": JOURNAL_SCHEMA_VERSION,
               "generated_unix": 0.0, "dropped": -1,
               "events": [{"kind": "journal_event"}]}
        problems = validate_journal_doc(doc)
        assert any("dropped" in p for p in problems)
        assert any("events[0]" in p for p in problems)
