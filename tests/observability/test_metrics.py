"""Unit tests for the metrics registry: labels, thread-safety, gating."""

from __future__ import annotations

import json
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.observability import metrics
from repro.observability.metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NULL_METRIC,
    REGISTRY,
)
from repro.observability.schema import validate_metrics_doc


class TestCounter:
    def test_inc_default_and_amount(self):
        c = Counter("x")
        c.inc()
        c.inc(41)
        assert c.value == 42

    def test_negative_increment_rejected(self):
        with pytest.raises(ValueError):
            Counter("x").inc(-1)

    def test_to_dict(self):
        c = Counter("hits", (("n", "4"),))
        c.inc(3)
        assert c.to_dict() == {
            "name": "hits", "type": "counter",
            "labels": {"n": "4"}, "value": 3,
        }


class TestGauge:
    def test_set_add(self):
        g = Gauge("depth")
        g.set(3)
        g.add(-1.5)
        assert g.value == 1.5


class TestHistogram:
    def test_bucketing(self):
        h = Histogram("lat", buckets=(1, 10, 100))
        for v in (0.5, 1, 5, 99, 1e6):
            h.observe(v)
        d = h.to_dict()
        counts = [b["count"] for b in d["buckets"]]
        assert counts == [2, 1, 1, 1]  # le=1, le=10, le=100, overflow
        assert d["buckets"][-1]["le"] is None
        assert d["count"] == 5
        assert d["min"] == 0.5 and d["max"] == 1e6
        assert h.mean == pytest.approx(d["sum"] / 5)

    def test_unsorted_buckets_rejected(self):
        with pytest.raises(ValueError):
            Histogram("h", buckets=(10, 1))


class TestRegistry:
    def test_get_or_create_is_idempotent(self):
        reg = MetricsRegistry()
        assert reg.counter("a", n=4) is reg.counter("a", n=4)
        assert len(reg) == 1

    def test_labels_fork_series(self):
        reg = MetricsRegistry()
        reg.counter("hp.carry_words", n=4, k=2).inc(7)
        reg.counter("hp.carry_words", n=6, k=3).inc(9)
        assert reg.value("hp.carry_words", n=4, k=2) == 7
        assert reg.value("hp.carry_words", n=6, k=3) == 9
        assert len(reg) == 2

    def test_label_order_and_stringification_irrelevant(self):
        reg = MetricsRegistry()
        a = reg.counter("m", n=4, k=2)
        b = reg.counter("m", k="2", n="4")
        assert a is b

    def test_type_conflict_rejected(self):
        reg = MetricsRegistry()
        reg.counter("m")
        with pytest.raises(TypeError):
            reg.gauge("m")

    def test_reset_zeroes_but_keeps_registrations(self):
        reg = MetricsRegistry()
        c = reg.counter("m")
        c.inc(5)
        reg.reset()
        assert c.value == 0
        assert reg.get("m") is c  # cached references stay live

    def test_snapshot_validates_against_schema(self):
        reg = MetricsRegistry()
        reg.counter("c", n=4).inc(3)
        reg.gauge("g").set(1.5)
        reg.histogram("h", buckets=DEFAULT_BUCKETS).observe(7)
        doc = json.loads(json.dumps(reg.snapshot()))  # through JSON
        assert validate_metrics_doc(doc) == []

    def test_collect_prefix_filter(self):
        reg = MetricsRegistry()
        reg.counter("hp.adds").inc()
        reg.counter("simmpi.messages").inc()
        names = [m["name"] for m in reg.collect("hp.")]
        assert names == ["hp.adds"]

    def test_counter_thread_safety(self):
        reg = MetricsRegistry()
        c = reg.counter("hammer")

        def spin(_):
            for _ in range(10_000):
                c.inc()

        with ThreadPoolExecutor(max_workers=8) as pool:
            list(pool.map(spin, range(8)))
        assert c.value == 80_000

    def test_histogram_thread_safety(self):
        reg = MetricsRegistry()
        h = reg.histogram("hist", buckets=(5,))

        def spin(_):
            for i in range(5_000):
                h.observe(i % 10)

        with ThreadPoolExecutor(max_workers=8) as pool:
            list(pool.map(spin, range(8)))
        assert h.count == 40_000
        counts = [b["count"] for b in h.to_dict()["buckets"]]
        assert sum(counts) == 40_000

    def test_concurrent_get_or_create(self):
        reg = MetricsRegistry()

        def make(i):
            reg.counter("shared", lane=i % 4).inc()

        with ThreadPoolExecutor(max_workers=8) as pool:
            list(pool.map(make, range(400)))
        assert len(reg) == 4
        total = sum(reg.value("shared", lane=i) for i in range(4))
        assert total == 400


class TestDisabledMode:
    def test_module_helpers_return_null_when_disabled(self):
        assert not metrics.ENABLED
        c = metrics.counter("nope", n=1)
        assert c is NULL_METRIC
        c.inc()  # no-op, no error
        metrics.gauge("nope").set(3)
        metrics.histogram("nope").observe(1)
        assert len(REGISTRY) == 0  # nothing registered

    def test_module_helpers_register_when_enabled(self):
        metrics.enable()
        metrics.counter("yes").inc()
        assert REGISTRY.value("yes") == 1

    def test_instrumented_hot_path_silent_when_disabled(self):
        from repro.core.accumulator import HPAccumulator
        from repro.core.params import HPParams

        acc = HPAccumulator(HPParams(3, 2))
        for x in (0.5, -0.25, 1.75):
            acc.add(x)
        assert len(REGISTRY) == 0

    def test_instrumented_hot_path_counts_when_enabled(self):
        from repro.core.accumulator import HPAccumulator
        from repro.core.params import HPParams

        metrics.enable()
        acc = HPAccumulator(HPParams(3, 2))
        acc.add(-0.25)  # negative: two's complement guarantees carries
        acc.add(0.5)
        assert REGISTRY.value("hp.accumulator.adds", n=3, k=2) == 2
        assert REGISTRY.value("hp.carry_words", n=3,
                              path="accumulator") > 0
        assert REGISTRY.value("hp.overflow_checks",
                              path="accumulator") == 2

    def test_enabled_and_disabled_paths_produce_identical_words(self, rng):
        from repro.core.accumulator import HPAccumulator
        from repro.core.params import HPParams

        xs = rng.uniform(-1, 1, 200)
        plain = HPAccumulator(HPParams(4, 2))
        for x in xs:
            plain.add(float(x))
        metrics.enable()
        metered = HPAccumulator(HPParams(4, 2))
        for x in xs:
            metered.add(float(x))
        assert plain.words == metered.words

    def test_scalar_add_words_identical_under_metering(self, rng):
        from repro.core.params import HPParams
        from repro.core.scalar import add_words, from_double

        p = HPParams(3, 2)
        a = from_double(float(rng.uniform(-1, 1)), p)
        b = from_double(float(rng.uniform(-1, 1)), p)
        plain = add_words(a, b)
        metrics.enable()
        assert add_words(a, b) == plain
        assert REGISTRY.value("hp.scalar.adds", n=3) == 1


class TestResetScrapeHammer:
    """Scrape hygiene under fire: collect()/reset() hold the registry
    lock for their whole walk, so a scrape racing a reset must see the
    registry wholly-before or wholly-after the wipe — every snapshot
    validates, every histogram ladder is internally consistent."""

    def test_concurrent_observe_reset_scrape(self):
        from repro.observability.export import (
            parse_prometheus_text,
            prometheus_text,
        )

        reg = MetricsRegistry()
        rounds = 200

        def writer(worker: int):
            for i in range(rounds):
                reg.counter("hammer.events", worker=worker).inc()
                reg.histogram(
                    "hammer.sizes", buckets=(1, 10, 100), worker=worker
                ).observe(i % 150)

        def resetter():
            for _ in range(rounds // 4):
                reg.reset()

        def scraper():
            problems = []
            for _ in range(rounds // 4):
                doc = reg.snapshot()
                problems.extend(validate_metrics_doc(doc))
                families = parse_prometheus_text(prometheus_text(reg))
                for family in families.values():
                    if family["type"] != "histogram":
                        continue
                    by_labels: dict = {}
                    for name, labels, value in family["samples"]:
                        if name.endswith("_bucket"):
                            key = tuple(sorted(
                                (k, v) for k, v in labels.items()
                                if k != "le"
                            ))
                            by_labels.setdefault(key, []).append(value)
                        # cumulative ladders never decrease
                    for ladder in by_labels.values():
                        if ladder != sorted(ladder):
                            problems.append(f"non-monotone ladder {ladder}")
            return problems

        with ThreadPoolExecutor(max_workers=8) as pool:
            writers = [pool.submit(writer, w) for w in range(4)]
            resets = [pool.submit(resetter) for _ in range(2)]
            scrapes = [pool.submit(scraper) for _ in range(2)]
            for f in writers + resets:
                f.result()
            for f in scrapes:
                assert f.result() == []

    def test_reset_during_scrape_no_partial_wipe(self):
        """Single-threaded sanity for the same guarantee: a snapshot
        taken right after reset() shows *every* series zeroed."""
        reg = MetricsRegistry()
        for i in range(50):
            reg.counter("c", i=i).inc(i + 1)
        reg.reset()
        doc = reg.snapshot()
        assert len(doc["metrics"]) == 50
        assert all(m["value"] == 0 for m in doc["metrics"])
