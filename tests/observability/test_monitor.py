"""DriftMonitor: shadow sums, ULP drift, permutation probes, thresholds.

The acceptance-criteria tests live here: the HP path must show zero ULP
error and zero order-invariance violations, while the float64 shadow
must show nonzero drift at n >= 1M summands.
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.observability import metrics
from repro.observability import monitor as monitor_mod
from repro.observability.metrics import REGISTRY
from repro.observability.monitor import (
    MONITOR,
    DriftMonitor,
    monitoring,
)
from repro.parallel.drivers import make_method


@pytest.fixture
def armed():
    metrics.enable()
    mon = DriftMonitor(seed=7)
    mon.arm()
    return mon


def _spread(rng, n):
    """Exponent-spread workload: float64 naive summation visibly drifts."""
    return rng.uniform(-1.0, 1.0, n) * np.exp2(rng.uniform(-30, 30, n))


class TestGating:
    def test_disarmed_is_noop(self):
        metrics.enable()
        mon = DriftMonitor()
        assert mon.observe(np.ones(4), 4.0, make_method("double"), "s") is None
        assert len(REGISTRY) == 0

    def test_metrics_gate_off_is_noop(self):
        mon = DriftMonitor()
        mon.arm()
        assert mon.observe(np.ones(4), 4.0, make_method("double"), "s") is None
        assert len(REGISTRY) == 0

    def test_empty_batch_skipped(self, armed):
        assert armed.observe(
            np.empty(0), 0.0, make_method("double"), "s"
        ) is None

    def test_sample_period(self, armed):
        armed.sample_period = 3
        method = make_method("double")
        seen = [
            armed.observe(np.ones(2), 2.0, method, "s") is not None
            for _ in range(7)
        ]
        assert seen == [True, False, False, True, False, False, True]
        assert armed.summary()["calls"] == 7
        assert armed.summary()["samples"] == 3

    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            DriftMonitor(sample_period=0)
        with pytest.raises(ValueError):
            DriftMonitor(sample_limit=0)

    def test_arm_rejects_unknown_setting(self):
        with pytest.raises(AttributeError, match="typo"):
            DriftMonitor().arm(typo=1)


class TestShadowSums:
    def test_cumsum_is_the_naive_left_to_right_sum(self):
        """The monitor's float64 shadow (np.cumsum last element) must be
        bit-identical to the repo's sequential naive_sum — the pinned
        equivalence the monitor's fast path relies on."""
        from repro.summation.naive import naive_sum

        rng = np.random.default_rng(11)
        xs = _spread(rng, 5000)
        assert float(np.cumsum(xs)[-1]) == naive_sum(xs)

    def test_hp_path_zero_ulp(self, armed):
        """Acceptance: the delivered exact value sits 0 ULP from the
        correctly-rounded reference."""
        rng = np.random.default_rng(3)
        xs = _spread(rng, 20_000)
        method = make_method("hp-superacc")
        value = method.finalize(method.local_reduce(xs))
        record = armed.observe(xs, value, method, "serial")
        assert record["value_ulp"] == 0
        assert REGISTRY.value("drift.last_ulp_error", path="hp-superacc") == 0
        hist = REGISTRY.get("drift.ulp_error", path="hp-superacc")
        # every observation landed in the le=0 bucket
        assert hist.cumulative_buckets()[0] == (0.0, hist.count)

    def test_float64_shadow_nonzero_at_one_million(self, armed):
        """Acceptance: at n >= 1M the float64 naive shadow has drifted."""
        rng = np.random.default_rng(20160523)
        xs = rng.uniform(-1.0, 1.0, 1 << 20)
        method = make_method("hp-superacc")
        value = method.finalize(method.local_reduce(xs))
        record = armed.observe(xs, value, method, "serial")
        assert record["n"] >= 1_000_000
        assert record["float64_ulp"] > 0
        assert record["value_ulp"] == 0  # HP stays exact at the same n
        hist = REGISTRY.get("drift.ulp_error", path="float64")
        assert hist.sum > 0

    def test_relative_error_histogram_published(self, armed):
        rng = np.random.default_rng(4)
        xs = _spread(rng, 4000)
        method = make_method("double")
        value = method.finalize(method.local_reduce(xs))
        armed.observe(xs, value, method, "serial")
        assert REGISTRY.get("drift.relative_error", path="float64").count == 1
        assert REGISTRY.get("drift.relative_error", path="double").count == 1

    def test_sample_limit_skips_delivered_comparison(self, armed):
        armed.sample_limit = 100
        xs = np.ones(500)
        record = armed.observe(xs, 500.0, make_method("double"), "serial")
        assert record["shadowed"] == 100
        assert "value_ulp" not in record
        # the float64 shadow of the prefix is still published
        assert "float64_ulp" in record

    def test_shadow_summand_accounting(self, armed):
        armed.permute_period = 0
        armed.observe(np.ones(64), 64.0, make_method("double"), "s")
        assert REGISTRY.value("drift.shadow_summands") == 64
        assert REGISTRY.value(
            "drift.samples", path="double", substrate="s"
        ) == 1

    def test_nan_traffic_does_not_crash(self, armed):
        xs = np.array([1.0, math.nan, 2.0])
        record = armed.observe(xs, math.nan, make_method("double"), "s")
        assert record is not None  # published into the overflow bucket


class TestPermutationProbe:
    def test_exact_method_is_order_invariant(self, armed):
        """Acceptance: zero order-invariance violations for the HP path,
        probe after probe."""
        armed.permute_period = 1
        rng = np.random.default_rng(9)
        method = make_method("hp-superacc")
        for _ in range(5):
            xs = _spread(rng, 3000)
            value = method.finalize(method.local_reduce(xs))
            record = armed.observe(xs, value, method, "serial")
            assert record["probe"]["invariant"] is True
        assert REGISTRY.value(
            "drift.permutation_probes", path="hp-superacc"
        ) == 5
        assert REGISTRY.value(
            "drift.order_invariance_violations", path="hp-superacc"
        ) == 0
        assert armed.summary()["order_invariance_violations"] == {}

    def test_float64_violates_as_positive_control(self, armed):
        """The double path *should* trip the probe — proving the probe
        can detect reordering at all."""
        armed.permute_period = 1
        rng = np.random.default_rng(10)
        xs = _spread(rng, 50_000)
        method = make_method("double")
        value = method.finalize(method.local_reduce(xs))
        record = armed.observe(xs, value, method, "serial")
        assert record["probe"]["invariant"] is False
        assert REGISTRY.value(
            "drift.order_invariance_violations", path="double"
        ) == 1
        assert armed.summary()["order_invariance_violations"] == {"double": 1}

    def test_probe_period_and_disable(self, armed):
        armed.permute_period = 2
        method = make_method("double")
        records = [
            armed.observe(np.ones(8), 8.0, method, "s") for _ in range(4)
        ]
        assert ["probe" in r for r in records] == [False, True, False, True]
        armed.permute_period = 0
        assert "probe" not in armed.observe(np.ones(8), 8.0, method, "s")

    def test_inexact_violation_does_not_breach(self, armed):
        """Reordering drift on the float64 path is expected behaviour,
        not an alarm."""
        events = []
        armed.on_breach.append(events.append)
        armed.permute_period = 1
        armed.ulp_threshold = None  # isolate the probe from value drift
        rng = np.random.default_rng(12)
        xs = _spread(rng, 50_000)
        method = make_method("double")
        value = method.finalize(method.local_reduce(xs))
        armed.observe(xs, value, method, "serial")
        assert events == []


class TestThresholds:
    def test_delivered_drift_breaches(self, armed):
        """An inexact delivered value past ulp_threshold=0 must fire the
        callback and count the breach."""
        events = []
        armed.on_breach.append(events.append)
        armed.permute_period = 0
        rng = np.random.default_rng(13)
        xs = _spread(rng, 50_000)
        method = make_method("double")
        value = method.finalize(method.local_reduce(xs))
        record = armed.observe(xs, value, method, "serial")
        assert record["value_ulp"] > 0
        (event,) = events
        assert event["kind"] == "accuracy_drift"
        assert event["path"] == "double"
        assert event["ulp"] == record["value_ulp"]
        assert REGISTRY.value(
            "drift.threshold_breaches", path="double", kind="accuracy_drift"
        ) == 1

    def test_exact_value_never_breaches(self, armed):
        events = []
        armed.on_breach.append(events.append)
        rng = np.random.default_rng(14)
        xs = _spread(rng, 10_000)
        method = make_method("hp-superacc")
        value = method.finalize(method.local_reduce(xs))
        armed.observe(xs, value, method, "serial")
        assert events == []

    def test_thresholds_disabled_with_none(self, armed):
        armed.ulp_threshold = None
        armed.rel_threshold = None
        armed.permute_period = 0
        rng = np.random.default_rng(15)
        xs = _spread(rng, 50_000)
        method = make_method("double")
        value = method.finalize(method.local_reduce(xs))
        armed.observe(xs, value, method, "serial")
        assert REGISTRY.get(
            "drift.threshold_breaches", path="double", kind="accuracy_drift"
        ) is None


class TestLifecycle:
    def test_summary_digest(self, armed):
        armed.permute_period = 0
        method = make_method("double")
        armed.observe(np.ones(4), 4.0, method, "s")
        digest = armed.summary()
        assert digest["calls"] == 1
        assert digest["samples"] == 1
        assert digest["worst_ulp_by_path"] == {"float64": 0, "double": 0}
        assert digest["sample_period"] == armed.sample_period

    def test_reset_clears_tallies(self, armed):
        armed.observe(np.ones(4), 4.0, make_method("double"), "s")
        armed.reset()
        digest = armed.summary()
        assert digest["calls"] == 0 and digest["samples"] == 0
        assert digest["worst_ulp_by_path"] == {}

    def test_module_enable_disable(self):
        metrics.enable()
        monitor_mod.enable(sample_period=5)
        try:
            assert MONITOR.armed and MONITOR.sample_period == 5
        finally:
            monitor_mod.disable()
        assert not MONITOR.armed

    def test_monitoring_context_restores_state(self):
        metrics.enable()
        MONITOR.sample_period = 2
        assert not MONITOR.armed
        with monitoring(sample_period=9) as mon:
            assert mon is MONITOR
            assert MONITOR.armed and MONITOR.sample_period == 9
        assert not MONITOR.armed
        assert MONITOR.sample_period == 2


class TestWiring:
    """The call sites: global_sum, threads, procs — each must observe
    exactly once per reduction."""

    def test_serial_global_sum_observes_once(self):
        from repro.parallel.drivers import global_sum

        metrics.enable()
        MONITOR.arm(permute_period=0)
        rng = np.random.default_rng(16)
        global_sum(rng.uniform(-1, 1, 2000), method="hp-superacc",
                   substrate="serial", pes=1)
        assert REGISTRY.value(
            "drift.samples", path="hp-superacc", substrate="serial"
        ) == 1

    def test_threads_substrate_observes_once(self):
        from repro.parallel.drivers import global_sum

        metrics.enable()
        MONITOR.arm(permute_period=0)
        rng = np.random.default_rng(17)
        global_sum(rng.uniform(-1, 1, 2000), method="hp-superacc",
                   substrate="threads", pes=2)
        assert REGISTRY.value(
            "drift.samples", path="hp-superacc", substrate="threads"
        ) == 1

    def test_procs_substrate_observes_once_with_zero_ulp(self):
        from repro.parallel.drivers import global_sum

        metrics.enable()
        MONITOR.arm(permute_period=0)
        rng = np.random.default_rng(18)
        global_sum(rng.uniform(-1, 1, 4000), method="hp-superacc",
                   substrate="procs", pes=2)
        assert REGISTRY.value(
            "drift.samples", path="hp-superacc", substrate="procs"
        ) == 1
        assert REGISTRY.value(
            "drift.last_ulp_error", path="hp-superacc"
        ) == 0

    def test_unarmed_global_sum_records_nothing(self):
        from repro.parallel.drivers import global_sum

        metrics.enable()
        rng = np.random.default_rng(19)
        global_sum(rng.uniform(-1, 1, 1000), method="double",
                   substrate="serial", pes=1)
        assert REGISTRY.get("drift.samples", path="double",
                            substrate="serial") is None
