"""DriftMonitor under concurrency: alarm callbacks and threshold
bookkeeping must hold up when many threads observe at once.

The monitor's contract: every breaching observation fires the
``on_breach`` callbacks exactly once (no lost alarms, no duplicates),
the ``drift.threshold_breaches`` / ``planner.bound_breaches`` counters
agree with the callback count, and a callback that itself reads monitor
or registry state must not deadlock — ``_breach`` runs outside both the
monitor's lock and the registry's lock.
"""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.core import planner
from repro.observability import journal, metrics
from repro.observability.metrics import REGISTRY
from repro.observability.monitor import DriftMonitor
from repro.parallel.drivers import make_method

THREADS = 8
ROUNDS = 25


def _counter_total(name: str) -> int:
    return int(sum(
        m["value"] for m in REGISTRY.collect(prefix=name)
        if m["name"] == name
    ))


def _run_threads(worker, count=THREADS):
    """Start ``count`` threads on ``worker``, release them together,
    join with a deadlock-catching timeout, and re-raise any failure."""
    start = threading.Barrier(count)
    errors: list[BaseException] = []

    def wrapped(rank):
        try:
            start.wait(timeout=10)
            worker(rank)
        except BaseException as exc:  # pragma: no cover - failure path
            errors.append(exc)

    threads = [
        threading.Thread(target=wrapped, args=(rank,))
        for rank in range(count)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=60)
    assert not any(t.is_alive() for t in threads), (
        "worker threads did not finish — deadlock between the monitor "
        "lock and a breach callback?"
    )
    if errors:
        raise errors[0]


@pytest.fixture
def armed_monitor():
    metrics.enable()
    mon = DriftMonitor(permute_period=0)  # no probes: deterministic counts
    mon.arm()
    return mon


class TestConcurrentObserve:
    def test_every_breaching_observation_alarms_exactly_once(
        self, armed_monitor
    ):
        mon = armed_monitor
        alarms: list[dict] = []
        alarm_lock = threading.Lock()

        def on_breach(event):
            with alarm_lock:
                alarms.append(event)

        mon.on_breach.append(on_breach)
        method = make_method("double")
        xs = np.linspace(-1.0, 1.0, 64)
        reference = float(np.cumsum(xs)[-1])

        def worker(rank):
            for _ in range(ROUNDS):
                # Deliver a value 1.0 off the reference: guaranteed
                # past the default ulp_threshold=0 on every call.
                mon.observe(xs, reference + 1.0, method, "test")

        _run_threads(worker)

        expected = THREADS * ROUNDS
        assert len(alarms) == expected, (
            f"lost or duplicated alarms: {len(alarms)} != {expected}"
        )
        assert _counter_total("drift.threshold_breaches") == expected
        assert _counter_total("drift.samples") == expected
        assert all(e["kind"] == "accuracy_drift" for e in alarms)

    def test_non_breaching_traffic_fires_nothing(self, armed_monitor):
        mon = armed_monitor
        alarms: list[dict] = []
        mon.on_breach.append(alarms.append)
        method = make_method("hp")
        xs = np.linspace(-1.0, 1.0, 64)
        import math

        exact = math.fsum(xs)

        def worker(rank):
            for _ in range(ROUNDS):
                mon.observe(xs, exact, method, "test")

        _run_threads(worker)
        assert alarms == []
        assert _counter_total("drift.threshold_breaches") == 0

    def test_callback_reading_monitor_and_registry_does_not_deadlock(
        self, armed_monitor
    ):
        mon = armed_monitor
        seen = []

        def nosy_callback(event):
            # Reads that take the monitor lock and the registry lock —
            # legal because _breach holds neither while dispatching.
            summary = mon.summary()
            families = REGISTRY.collect(prefix="drift.")
            seen.append((summary["samples"], len(families)))

        mon.on_breach.append(nosy_callback)
        method = make_method("double")
        xs = np.linspace(-1.0, 1.0, 64)
        bad = float(np.cumsum(xs)[-1]) + 1.0

        def worker(rank):
            for _ in range(ROUNDS):
                mon.observe(xs, bad, method, "test")

        _run_threads(worker)
        assert len(seen) == THREADS * ROUNDS


class TestConcurrentObservePlanned:
    def test_breach_accounting_is_exact_under_contention(
        self, armed_monitor
    ):
        mon = armed_monitor
        alarms: list[dict] = []
        alarm_lock = threading.Lock()

        def on_breach(event):
            with alarm_lock:
                alarms.append(event)

        mon.on_breach.append(on_breach)
        journal.enable()
        xs = np.linspace(-1.0, 1.0, 64)
        decision = planner.plan(len(xs), target=1e-12)
        assert not decision.exact

        def worker(rank):
            for _ in range(ROUNDS):
                # error of 1.0 dwarfs any 1e-12 mass-relative bound
                mon.observe_planned(xs, 1.0, decision)

        try:
            _run_threads(worker)
        finally:
            planner.reset_escalations()

        expected = THREADS * ROUNDS
        assert len(alarms) == expected
        assert all(e["kind"] == "planner_bound" for e in alarms)
        assert _counter_total("planner.validations") == expected
        assert _counter_total("planner.bound_breaches") == expected
        # Every breach journals one alarm event alongside its callback.
        alarm_events = journal.JOURNAL.events(event="alarm")
        checks = journal.JOURNAL.events(event="bound.check")
        assert len(checks) == expected
        # The ring holds the tail; nothing beyond capacity is expected
        # here (ROUNDS*THREADS*2 fits in the default ring).
        assert len(alarm_events) == expected

    def test_mixed_observe_paths_keep_independent_tallies(
        self, armed_monitor
    ):
        mon = armed_monitor
        alarms: list[dict] = []
        alarm_lock = threading.Lock()

        def on_breach(event):
            with alarm_lock:
                alarms.append(event)

        mon.on_breach.append(on_breach)
        method = make_method("double")
        xs = np.linspace(-1.0, 1.0, 64)
        bad = float(np.cumsum(xs)[-1]) + 1.0
        decision = planner.plan(len(xs), target=1e-12)

        def worker(rank):
            for _ in range(ROUNDS):
                if rank % 2:
                    mon.observe(xs, bad, method, "test")
                else:
                    mon.observe_planned(xs, 1.0, decision)

        try:
            _run_threads(worker)
        finally:
            planner.reset_escalations()

        half = (THREADS // 2) * ROUNDS
        kinds = {}
        for e in alarms:
            kinds[e["kind"]] = kinds.get(e["kind"], 0) + 1
        assert kinds == {
            "accuracy_drift": half,
            "planner_bound": half,
        }
        assert _counter_total("planner.bound_breaches") == half
        assert _counter_total("drift.threshold_breaches") == 2 * half
