"""Chrome trace-event / Perfetto export: track assignment for master and
procpool-worker spans, nesting after ``record_imported``, metadata."""

from __future__ import annotations

import json

import pytest

from repro.observability import tracing
from repro.observability.export import (
    MASTER_PID,
    MASTER_TID,
    chrome_trace,
    write_chrome_trace,
)
from repro.observability.tracing import TRACER, Tracer


def _events(doc, ph="X"):
    return [e for e in doc["traceEvents"] if e["ph"] == ph]


def _worker_batch(worker_pid: int, lo: int, hi: int) -> list:
    """Replay the procpool worker protocol: a worker measures spans in
    its *own* tracer (with the pid attribute the worker task stamps),
    exports them, and the master re-homes them via record_imported."""
    worker_tracer = Tracer()
    with worker_tracer.span(
        "procpool.worker", pid=worker_pid, lo=lo, hi=hi, n=hi - lo
    ):
        with worker_tracer.span("superacc.absorb", chunk=hi - lo):
            pass
    return Tracer.import_spans(worker_tracer.export())


class TestMasterTrack:
    def test_plain_spans_on_master_track(self):
        tracing.enable()
        with TRACER.span("global_sum", substrate="serial"):
            with TRACER.span("superacc.absorb"):
                pass
        doc = chrome_trace()
        events = _events(doc)
        assert len(events) == 2
        assert all(e["pid"] == MASTER_PID for e in events)
        assert all(e["tid"] == MASTER_TID for e in events)

    def test_event_shape(self):
        tracing.enable()
        with TRACER.span("simmpi.reduce", algo="binomial"):
            pass
        (event,) = _events(chrome_trace())
        assert event["ph"] == "X"
        assert event["name"] == "simmpi.reduce"
        assert event["cat"] == "simmpi"
        assert event["args"]["algo"] == "binomial"
        assert event["ts"] > 0  # wall clock in microseconds
        assert event["dur"] >= 0

    def test_error_spans_carry_error_arg(self):
        tracing.enable()
        with pytest.raises(RuntimeError):
            with TRACER.span("boom"):
                raise RuntimeError("kaput")
        (event,) = _events(chrome_trace())
        assert "RuntimeError" in event["args"]["error"]

    def test_unfinished_spans_excluded(self):
        tracing.enable()
        ctx = TRACER.span("open.region")
        ctx.__enter__()
        assert _events(chrome_trace()) == []

    def test_master_metadata_names(self):
        tracing.enable()
        with TRACER.span("x"):
            pass
        doc = chrome_trace(process_name="repro-test")
        meta = {e["name"]: e for e in _events(doc, ph="M")}
        assert meta["process_name"]["args"]["name"] == "repro-test"
        assert meta["thread_name"]["args"]["name"] == "main"


class TestWorkerTracks:
    def test_worker_spans_on_distinct_tracks(self):
        """Two workers' spans must land on two separate pid/tid lanes,
        distinct from the master lane."""
        tracing.enable()
        with TRACER.span("procpool.reduce", pes=2) as parent:
            pass
        TRACER.record_imported(_worker_batch(1001, 0, 50), parent=parent)
        TRACER.record_imported(_worker_batch(1002, 50, 100), parent=parent)

        events = _events(chrome_trace())
        tracks = {e["name"]: (e["pid"], e["tid"]) for e in events
                  if e["name"] == "procpool.reduce"}
        worker_tracks = {
            (e["pid"], e["tid"]) for e in events
            if e["name"] == "procpool.worker"
        }
        assert tracks["procpool.reduce"] == (MASTER_PID, MASTER_TID)
        assert worker_tracks == {(1001, 1001), (1002, 1002)}

    def test_nested_worker_spans_inherit_worker_track(self):
        """A worker's inner engine span has no pid attribute of its own;
        after record_imported it must follow its parent onto the worker
        lane instead of polluting the master lane."""
        tracing.enable()
        with TRACER.span("procpool.reduce") as parent:
            pass
        TRACER.record_imported(_worker_batch(4242, 0, 10), parent=parent)

        events = {e["name"]: e for e in _events(chrome_trace())}
        worker = events["procpool.worker"]
        inner = events["superacc.absorb"]
        assert (worker["pid"], worker["tid"]) == (4242, 4242)
        assert (inner["pid"], inner["tid"]) == (4242, 4242)

    def test_nesting_preserved_after_record_imported(self):
        """record_imported remaps ids; the exported parent/child timing
        containment is what Perfetto renders, so the worker span must
        still enclose its child."""
        tracing.enable()
        with TRACER.span("procpool.reduce") as parent:
            pass
        spans = TRACER.record_imported(
            _worker_batch(7, 0, 10), parent=parent
        )
        by_name = {s.name: s for s in spans}
        worker, inner = by_name["procpool.worker"], by_name["superacc.absorb"]
        assert inner.parent_id == worker.span_id
        assert worker.parent_id == parent.span_id

    def test_worker_metadata_tracks(self):
        tracing.enable()
        with TRACER.span("procpool.reduce") as parent:
            pass
        TRACER.record_imported(_worker_batch(31, 0, 5), parent=parent)
        doc = chrome_trace()
        thread_names = {
            (e["pid"], e["tid"]): e["args"]["name"]
            for e in _events(doc, ph="M") if e["name"] == "thread_name"
        }
        assert thread_names[(MASTER_PID, MASTER_TID)] == "main"
        assert thread_names[(31, 31)] == "worker pid=31"

    def test_real_procs_reduction_spans_multiple_tracks(self):
        """End to end: a real process-pool reduction exports at least one
        non-master worker lane."""
        np = pytest.importorskip("numpy")
        from repro.parallel.drivers import global_sum

        tracing.enable()
        rng = np.random.default_rng(5)
        global_sum(rng.uniform(-1, 1, 4000), method="hp-superacc",
                   substrate="procs", pes=2)
        doc = chrome_trace()
        pids = {e["pid"] for e in _events(doc)}
        assert MASTER_PID in pids
        assert len(pids) >= 2  # at least one real worker lane


class TestWriteChromeTrace:
    def test_written_document_is_json_loadable(self, tmp_path):
        tracing.enable()
        with TRACER.span("a"):
            pass
        path = tmp_path / "trace.json"
        doc = write_chrome_trace(str(path))
        on_disk = json.loads(path.read_text())
        assert on_disk == json.loads(json.dumps(doc))
        assert on_disk["displayTimeUnit"] == "ms"
