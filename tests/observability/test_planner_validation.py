"""Planner bound validation through the drift monitor.

``observe_planned`` closes the loop the planner promises: every routed
sum is checked against its a-priori bound, margins land in metrics, and
a breach escalates the engine so subsequent plans reroute.  The breach
paths are exercised with synthetic lying plans (a real kernel breaching
its real bound would be a different bug).
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core import bounds, planner
from repro.observability import metrics
from repro.observability.metrics import REGISTRY
from repro.observability.monitor import MONITOR


@pytest.fixture(autouse=True)
def clean_planner_state():
    planner.reset_escalations()
    yield
    planner.reset_escalations()


def arm():
    metrics.enable()
    MONITOR.arm()


def make_plan(engine: str, n: int, coefficient: float) -> planner.EnginePlan:
    return planner.EnginePlan(
        n=n,
        target=coefficient,
        mode="deterministic",
        engine=engine,
        bound=bounds.ErrorBound(
            model="compensated", mode="deterministic", n=n,
            coefficient=coefficient,
        ),
        predicted_cost=float(n),
        exact=coefficient == 0.0,
    )


def counter_value(name: str, **labels) -> float:
    return REGISTRY.counter(name, **labels).value


class TestObservePlanned:
    def test_disarmed_is_noop(self):
        xs = np.ones(10)
        plan = make_plan("comp-neumaier", 10, 1e-15)
        assert MONITOR.observe_planned(xs, 10.0, plan) is None

    def test_within_bound_records_margin(self):
        arm()
        rng = np.random.default_rng(41)
        xs = rng.standard_normal(10_000)
        result = planner.planned_sum(xs, 1e-12)
        record = MONITOR.observe_planned(
            xs, result.value, result.plan
        )
        assert record is not None
        assert not record["breached"]
        assert 0.0 <= record["margin"] < 1.0
        assert record["reference"] == math.fsum(xs)
        assert counter_value(
            "planner.validations", engine=result.plan.engine
        ) >= 1
        assert planner.escalated_engines() == {}

    def test_breach_counts_escalates_and_fires_callbacks(self):
        arm()
        events = []
        MONITOR.on_breach.append(events.append)
        try:
            xs = np.ones(100)
            # A lying plan: promises essentially zero error from an
            # inexact tier, then delivers a value that is off by 1.
            plan = make_plan("comp-neumaier", 100, 1e-30)
            record = MONITOR.observe_planned(xs, 101.0, plan)
        finally:
            MONITOR.on_breach.clear()
        assert record["breached"]
        assert record["margin"] > 1.0
        assert counter_value(
            "planner.bound_breaches", engine="comp-neumaier"
        ) == 1
        assert planner.escalated_engines() == {"comp-neumaier": 1}
        assert len(events) == 1 and events[0]["kind"] == "planner_bound"
        # The escalation reroutes the next plan off the breached tier.
        assert planner.plan(
            4 * 1024 * 1024, 1e-12
        ).engine != "comp-neumaier"

    def test_exact_plan_has_zero_budget(self):
        arm()
        xs = np.array([1.0, 2.0, 3.0])
        plan = make_plan("small", 3, 0.0)
        ok = MONITOR.observe_planned(xs, 6.0, plan)
        assert not ok["breached"] and ok["margin"] == 0.0
        bad = MONITOR.observe_planned(xs, 6.0000001, plan)
        assert bad["breached"] and bad["margin"] == math.inf
        # Exact engines are counted but never escalated away.
        assert planner.escalated_engines() == {}
        assert planner.plan(10, 0.0).engine  # still servable

    def test_capped_batch_validates_prefix_via_recompute(self):
        arm()
        MONITOR.sample_limit = 1 << 10
        try:
            rng = np.random.default_rng(42)
            xs = rng.standard_normal(5_000)
            plan = make_plan("comp-neumaier", 5_000, 1e-14)
            seen = {}

            def recompute(sample):
                seen["n"] = len(sample)
                return math.fsum(sample)

            record = MONITOR.observe_planned(xs, 123.0, plan, recompute)
            assert seen["n"] == 1 << 10
            assert record["validated"] == 1 << 10
            assert not record["breached"]  # recomputed value is exact
            # Without a recompute closure the capped batch is skipped.
            assert MONITOR.observe_planned(xs, 123.0, plan) is None
        finally:
            MONITOR.sample_limit = 1 << 21

    def test_planned_sum_self_reports_when_armed(self):
        arm()
        rng = np.random.default_rng(43)
        xs = rng.standard_normal(2_000)
        result = planner.planned_sum(xs, 1e-12)
        engine = result.plan.engine
        assert counter_value("planner.validations", engine=engine) == 1
        assert counter_value("planner.bound_breaches", engine=engine) == 0

    def test_empty_batch_skipped(self):
        arm()
        plan = make_plan("comp-neumaier", 0, 1e-15)
        assert MONITOR.observe_planned(np.array([]), 0.0, plan) is None


class TestJournalOnlyAudit:
    """With only the journal gate on, the promise-vs-measurement audit
    still runs — it lands solely as the ``bound.check`` journal row, no
    ``planner.*`` metrics, no breach escalation."""

    def test_emits_bound_check_without_metrics(self):
        from repro.observability import journal

        journal.enable()
        xs = np.ones(10)
        plan = make_plan("comp-neumaier", 10, 1e-15)
        record = MONITOR.observe_planned(xs, 10.0, plan)
        assert record is not None and not record["breached"]
        (event,) = journal.JOURNAL.events(event="bound.check")
        assert event["engine"] == "comp-neumaier"
        assert event["margin"] == record["margin"]
        assert not event["breached"]
        assert REGISTRY.collect(prefix="planner") == []

    def test_breach_is_journaled_but_not_escalated(self):
        from repro.observability import journal

        journal.enable()
        xs = np.ones(10)
        plan = make_plan("comp-neumaier", 10, 1e-30)
        record = MONITOR.observe_planned(xs, 10.5, plan)
        assert record["breached"]
        (event,) = journal.JOURNAL.events(event="bound.check")
        assert event["breached"] is True
        # Escalation is the armed monitor's job; a journal-only run
        # records the breach without rerouting subsequent plans.
        assert planner.escalated_engines() == {}
        assert REGISTRY.collect(prefix="planner") == []

    def test_all_gates_off_is_noop(self):
        from repro.observability.journal import JOURNAL

        plan = make_plan("comp-neumaier", 10, 1e-15)
        assert MONITOR.observe_planned(np.ones(10), 10.0, plan) is None
        assert JOURNAL.stats() == {}


class TestValidateRouted:
    """``validate_routed`` re-attaches a substrate-executed value to its
    plan — the CLI's ``--target-accuracy --substrate`` path."""

    def test_audits_through_armed_monitor(self):
        arm()
        rng = np.random.default_rng(44)
        xs = rng.standard_normal(2_000)
        decision = planner.plan(xs.size, 1e-12)
        planner.validate_routed(xs, math.fsum(xs), decision)
        assert counter_value(
            "planner.validations", engine=decision.engine) == 1
        assert counter_value(
            "planner.bound_breaches", engine=decision.engine) == 0

    def test_exact_plan_recomputes_with_exact_engine(self):
        arm()
        MONITOR.sample_limit = 256
        try:
            rng = np.random.default_rng(45)
            xs = rng.standard_normal(1_000)
            decision = planner.plan(xs.size, 0.0)
            assert decision.exact
            # Above the sample limit the prefix is re-run through the
            # chosen exact engine; it must match fsum bit-for-bit.
            planner.validate_routed(xs, 0.0, decision)
            assert counter_value(
                "planner.validations", engine=decision.engine) == 1
            assert counter_value(
                "planner.bound_breaches", engine=decision.engine) == 0
        finally:
            MONITOR.sample_limit = 1 << 21

    def test_noop_when_gates_off(self):
        from repro.observability.journal import JOURNAL

        decision = planner.plan(100, 1e-12)
        planner.validate_routed(np.ones(100), 100.0, decision)
        assert JOURNAL.stats() == {}
        assert REGISTRY.collect(prefix="planner") == []
