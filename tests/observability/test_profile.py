"""The profiling layer: phase markers, the cost table, the sampling
profiler, and the flamegraph/speedscope/Perfetto/Prometheus exports.

The synthetic-span tests build :class:`Span` trees via ``from_dict``
with hand-picked durations so self/cumulative arithmetic is asserted
exactly; the end-to-end tests drive real reductions (including a real
``procs`` pool) and assert the structural invariants instead.
"""

from __future__ import annotations

import json
import time

import numpy as np
import pytest

from repro.observability import metrics, profile, tracing
from repro.observability.export import parse_prometheus_text, prometheus_text
from repro.observability.metrics import REGISTRY
from repro.observability.profile import (
    MASTER_WORKER,
    PHASE_PREFIX,
    RUN_SPAN,
    ProfileReport,
    SamplingProfiler,
    chrome_trace_with_phases,
    parse_collapsed,
    phase,
    phase_counter_events,
    profiled,
    speedscope_document,
    validate_speedscope,
)
from repro.observability.tracing import TRACER, Span


def _span(name, span_id, parent_id=None, duration=0.0, start=0.0, **attrs):
    return Span.from_dict({
        "span_id": span_id,
        "parent_id": parent_id,
        "name": name,
        "attrs": attrs,
        "start_unix": start,
        "duration_s": duration,
        "error": None,
    })


class TestPhaseGate:
    def test_disabled_returns_shared_noop(self):
        # One singleton, not a fresh object per call: the disabled cost
        # at a hot call site is a global load and a falsy test.
        assert phase("superacc.scatter") is phase("superacc.fold")

    def test_disabled_records_nothing_even_with_tracing_on(self):
        tracing.enable()
        metrics.enable()
        with phase("superacc.scatter"):
            pass
        assert TRACER.spans() == []
        assert REGISTRY.collect("profile.") == []

    def test_enabled_records_span_and_metrics(self):
        metrics.enable()
        profile.enable()
        with phase("superacc.scatter", chunk=4):
            pass
        (sp,) = TRACER.spans()
        assert sp.name == PHASE_PREFIX + "superacc.scatter"
        assert sp.attrs["chunk"] == 4
        assert sp.finished
        assert REGISTRY.value(
            "profile.phase_calls", phase="superacc.scatter"
        ) == 1
        assert REGISTRY.value(
            "profile.phase_seconds", phase="superacc.scatter"
        ) >= 0.0
        hist = REGISTRY.get(
            "profile.phase_call_seconds", phase="superacc.scatter"
        )
        assert hist is not None and hist.count == 1

    def test_enable_arms_tracing_too(self):
        profile.enable()
        assert tracing.ENABLED

    def test_phase_without_metrics_records_span_only(self):
        profile.enable()
        with phase("hp.round"):
            pass
        assert len(TRACER.spans()) == 1
        assert REGISTRY.collect("profile.") == []

    def test_profiled_restores_all_gates(self):
        assert not (profile.ENABLED or tracing.ENABLED or metrics.ENABLED)
        with profiled():
            assert profile.ENABLED and tracing.ENABLED and metrics.ENABLED
        assert not (profile.ENABLED or tracing.ENABLED or metrics.ENABLED)

    def test_profiled_restores_on_exception(self):
        with pytest.raises(RuntimeError):
            with profiled():
                raise RuntimeError("boom")
        assert not profile.ENABLED


class TestProfileReport:
    def test_self_time_subtracts_nested_phases(self):
        spans = [
            _span(RUN_SPAN, 1, duration=1.0),
            _span(PHASE_PREFIX + "outer", 2, parent_id=1, duration=0.6),
            # A non-phase span between the two phases: the walk must
            # attribute 'inner' to 'outer' straight through it.
            _span("intermediate", 3, parent_id=2, duration=0.5),
            _span(PHASE_PREFIX + "inner", 4, parent_id=3, duration=0.2),
        ]
        report = ProfileReport.from_spans(spans)
        rows = {r.phase: r for r in report.rows}
        assert report.wall_s == pytest.approx(1.0)
        assert rows["outer"].cum_s == pytest.approx(0.6)
        assert rows["outer"].self_s == pytest.approx(0.4)
        assert rows["inner"].self_s == pytest.approx(0.2)
        assert report.attributed_s == pytest.approx(0.6)
        assert report.attributed_fraction == pytest.approx(0.6)

    def test_rows_aggregate_calls_and_sort_by_self_time(self):
        spans = [
            _span(PHASE_PREFIX + "a", 1, duration=0.1, start=10.0),
            _span(PHASE_PREFIX + "a", 2, duration=0.2, start=10.1),
            _span(PHASE_PREFIX + "b", 3, duration=0.5, start=10.3),
        ]
        report = ProfileReport.from_spans(spans)
        assert [r.phase for r in report.rows] == ["b", "a"]
        a = report.rows[1]
        assert a.calls == 2 and a.cum_s == pytest.approx(0.3)
        # No RUN_SPAN: wall is the time range the phases cover.
        assert report.wall_s == pytest.approx(0.8)

    def test_worker_attribution_via_pid_ancestor(self):
        spans = [
            _span(RUN_SPAN, 1, duration=1.0),
            _span("procpool.worker", 2, parent_id=1, duration=0.9, pid=7),
            _span(PHASE_PREFIX + "procs.compute", 3, parent_id=2,
                  duration=0.8),
            _span(PHASE_PREFIX + "procs.combine", 4, parent_id=1,
                  duration=0.05),
        ]
        report = ProfileReport.from_spans(spans)
        by_phase = {r.phase: r for r in report.rows}
        assert by_phase["procs.compute"].worker == "pid=7"
        assert by_phase["procs.combine"].worker == MASTER_WORKER
        # Worker self-time must not inflate the master-clock fraction.
        assert report.attributed_s == pytest.approx(0.05)
        assert report.workers() == ["pid=7", MASTER_WORKER]
        totals = report.phase_totals()
        assert totals["procs.compute"] == pytest.approx(0.8)

    def test_unfinished_spans_are_ignored(self):
        open_span = _span(PHASE_PREFIX + "x", 1, duration=0.0)
        open_span.duration_s = None
        report = ProfileReport.from_spans([open_span])
        assert report.rows == [] and report.wall_s == 0.0
        assert report.attributed_fraction == 0.0

    def test_to_dict_and_render(self):
        spans = [
            _span(RUN_SPAN, 1, duration=0.5),
            _span(PHASE_PREFIX + "fold", 2, parent_id=1, duration=0.25),
        ]
        report = ProfileReport.from_spans(spans)
        doc = report.to_dict()
        assert doc["kind"] == "profile" and doc["schema_version"] == 1
        assert doc["phases"][0] == {
            "phase": "fold", "worker": MASTER_WORKER, "calls": 1,
            "cum_s": pytest.approx(0.25), "self_s": pytest.approx(0.25),
        }
        text = report.render()
        assert "fold" in text and "% wall" in text
        assert "50.0% of wall" in text

    def test_from_tracer_end_to_end(self):
        with profiled():
            with TRACER.span(RUN_SPAN):
                with phase("outer"):
                    with phase("inner"):
                        time.sleep(0.01)
        report = ProfileReport.from_tracer()
        rows = {r.phase: r for r in report.rows}
        assert set(rows) == {"outer", "inner"}
        assert rows["inner"].cum_s >= 0.01
        assert 0.0 < report.attributed_fraction <= 1.0


class TestSamplingProfiler:
    def test_rejects_bad_interval(self):
        with pytest.raises(ValueError):
            SamplingProfiler(interval_s=0.0)

    def test_rejects_double_start(self):
        p = SamplingProfiler(interval_s=0.01)
        with p:
            with pytest.raises(RuntimeError):
                p.start()

    def test_samples_a_busy_main_thread(self):
        with SamplingProfiler(interval_s=0.002) as p:
            deadline = time.perf_counter() + 0.15
            while time.perf_counter() < deadline:
                sum(range(1000))
        assert p.samples > 0
        stacks = p.merged()
        assert sum(stacks.values()) == p.samples
        for stack in stacks:
            assert stack  # never an empty tuple
            assert all(";" not in frame for frame in stack)

    def test_collapsed_round_trips_exact_weights(self):
        p = SamplingProfiler(interval_s=0.002)
        p.stacks = {("mod:main", "mod:inner"): 5, ("mod:main",): 2}
        p.samples = 7
        text = p.collapsed()
        assert text.endswith("\n")
        assert "mod:main;mod:inner 5" in text
        assert parse_collapsed(text) == p.stacks

    def test_parse_collapsed_rejects_garbage(self):
        with pytest.raises(ValueError):
            parse_collapsed("no-trailing-count\n")
        with pytest.raises(ValueError):
            parse_collapsed("a;;b 3\n")

    def test_records_sample_counter_when_metrics_on(self):
        metrics.enable()
        with SamplingProfiler(interval_s=0.002):
            time.sleep(0.05)
        assert REGISTRY.value("profile.samples") > 0


class TestSpeedscope:
    STACKS = {("a", "b"): 4, ("a", "c"): 1}

    def test_document_validates_and_dedups_frames(self):
        doc = speedscope_document(self.STACKS, interval_s=0.01)
        assert validate_speedscope(doc) == []
        names = [f["name"] for f in doc["shared"]["frames"]]
        assert sorted(names) == ["a", "b", "c"]  # 'a' deduplicated
        prof = doc["profiles"][0]
        assert prof["unit"] == "seconds"
        assert sum(prof["weights"]) == pytest.approx(0.05)
        assert prof["endValue"] == pytest.approx(0.05)
        # Parallel arrays, indices resolve to the right labels.
        for stack, indexed in zip(sorted(self.STACKS), prof["samples"]):
            assert tuple(names[i] for i in indexed) == stack

    def test_document_survives_json_round_trip(self):
        doc = json.loads(json.dumps(speedscope_document(self.STACKS)))
        assert validate_speedscope(doc) == []

    def test_validate_flags_corruption(self):
        doc = speedscope_document(self.STACKS)
        assert validate_speedscope({"$schema": "nope"}) != []
        broken = json.loads(json.dumps(doc))
        broken["profiles"][0]["weights"] = [1.0]
        assert any("samples" in p for p in validate_speedscope(broken))
        broken = json.loads(json.dumps(doc))
        broken["profiles"][0]["samples"][0] = [999]
        assert any("out-of-range" in p for p in validate_speedscope(broken))


class TestPrometheusRoundTrip:
    def test_profile_metrics_survive_exposition(self):
        with profiled():
            with phase("superacc.scatter"):
                time.sleep(0.001)
            with phase("superacc.scatter"):
                pass
            with phase("hp.round"):
                pass
        text = prometheus_text(REGISTRY)
        assert "# TYPE profile_phase_calls counter" in text
        assert "# TYPE profile_phase_call_seconds histogram" in text
        parsed = parse_prometheus_text(text)
        calls = parsed["profile_phase_calls"]
        assert calls["type"] == "counter"
        values = {
            labels["phase"]: value
            for _, labels, value in calls["samples"]
        }
        assert values["superacc.scatter"] == 2
        assert values["hp.round"] == 1
        hist = parsed["profile_phase_call_seconds"]
        assert hist["type"] == "histogram"
        counts = {
            labels["phase"]: value
            for name, labels, value in hist["samples"]
            if name.endswith("_count")
        }
        assert counts["superacc.scatter"] == 2


class TestPerfettoCounters:
    def test_counter_events_are_cumulative_per_phase(self):
        with profiled():
            for _ in range(3):
                with phase("fold"):
                    pass
        events = phase_counter_events()
        assert len(events) == 3
        seen = 0.0
        for ev in events:
            assert ev["ph"] == "C"
            assert ev["name"] == "phase_seconds.fold"
            assert ev["args"]["seconds"] >= seen
            seen = ev["args"]["seconds"]
        stamps = [ev["ts"] for ev in events]
        assert stamps == sorted(stamps)

    def test_chrome_trace_with_phases_merges_both_kinds(self):
        with profiled():
            with TRACER.span(RUN_SPAN):
                with phase("fold"):
                    pass
        doc = chrome_trace_with_phases()
        kinds = {ev["ph"] for ev in doc["traceEvents"]}
        assert {"X", "C"} <= kinds
        json.dumps(doc)  # must be serializable as-is


class TestProcsRehoming:
    def test_worker_phases_rehome_under_master_trace(self):
        # A real process pool: worker-side phase spans travel back in
        # the result meta and must land on pid= rows of the report.
        from repro.parallel.drivers import make_method
        from repro.parallel.procpool import procpool_reduce

        xs = np.linspace(-1.0, 1.0, 20_000)
        with profiled():
            with TRACER.span(RUN_SPAN, substrate="procs"):
                result = procpool_reduce(xs, make_method("hp-superacc"), 2)
        assert result.pes == 2
        report = ProfileReport.from_tracer()
        workers = {
            r.worker for r in report.rows if r.phase == "procs.compute"
        }
        assert len(workers) == 2
        assert all(w.startswith("pid=") for w in workers)
        master_phases = {
            r.phase for r in report.rows if r.worker == MASTER_WORKER
        }
        assert {"procs.partition", "procs.dispatch",
                "procs.combine"} <= master_phases
        # Worker scatter phases re-homed with their procpool ancestry.
        assert any(
            r.phase == "superacc.scatter" and r.worker.startswith("pid=")
            for r in report.rows
        )
        assert 0.0 < report.attributed_fraction <= 1.0
