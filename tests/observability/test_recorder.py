"""The crash flight recorder: one-shot bundle writes, hook lifecycle,
and the forensics document's schema."""

from __future__ import annotations

import json
import sys

import pytest

from repro.observability import journal, metrics, tracing
from repro.observability.recorder import (
    FORENSICS_SCHEMA_VERSION,
    FlightRecorder,
    RECORDER,
)
from repro.observability.schema import (
    validate_document,
    validate_forensics_doc,
)


@pytest.fixture
def recorder(tmp_path):
    rec = FlightRecorder()
    path = tmp_path / "forensics.json"
    yield rec, path
    rec.uninstall()


class TestFlush:
    def test_disarmed_flush_writes_nothing(self, tmp_path):
        rec = FlightRecorder()
        assert rec.flush("exit") is None

    def test_flush_writes_schema_valid_bundle(self, recorder):
        rec, path = recorder
        metrics.enable()
        journal.enable()
        journal.emit("request.start", n=10)
        rec.install(path)
        assert rec.flush("test") == str(path)
        doc = json.loads(path.read_text())
        assert doc["kind"] == "forensics_bundle"
        assert doc["schema_version"] == FORENSICS_SCHEMA_VERSION
        assert doc["reason"] == "test"
        assert validate_forensics_doc(doc) == []
        assert validate_document(doc) == ("forensics_bundle", [])
        events = [e["event"] for e in doc["journal"]["events"]]
        assert "request.start" in events

    def test_first_reason_wins(self, recorder):
        rec, path = recorder
        rec.install(path)
        rec.flush("exception: boom")
        rec.flush("exit")  # atexit after excepthook: must not overwrite
        doc = json.loads(path.read_text())
        assert doc["reason"] == "exception: boom"

    def test_force_rewrites(self, recorder):
        rec, path = recorder
        rec.install(path)
        rec.flush("first")
        assert rec.flush("second", force=True) == str(path)
        assert json.loads(path.read_text())["reason"] == "second"

    def test_active_spans_are_captured(self, recorder):
        rec, path = recorder
        tracing.enable()
        rec.install(path)
        with tracing.span("global_sum"):
            with tracing.span("procpool.reduce"):
                rec.flush("signal: SIGTERM")
        doc = json.loads(path.read_text())
        names = [s["name"] for s in doc["active_spans"]]
        assert names == ["global_sum", "procpool.reduce"]
        assert validate_forensics_doc(doc) == []


class TestLifecycle:
    def test_install_is_idempotent(self, recorder):
        rec, path = recorder
        rec.install(path)
        hook = sys.excepthook
        rec.install(path)
        assert sys.excepthook is hook
        assert rec.installed

    def test_uninstall_restores_excepthook(self, recorder):
        rec, path = recorder
        prev = sys.excepthook
        rec.install(path)
        assert sys.excepthook is not prev
        rec.uninstall()
        assert sys.excepthook is prev
        assert not rec.installed

    def test_rearming_resets_the_one_shot_latch(self, recorder):
        rec, path = recorder
        rec.install(path)
        rec.flush("first")
        rec.install(path)  # re-arm: a fresh run gets a fresh bundle
        assert rec.flush("second") == str(path)
        assert json.loads(path.read_text())["reason"] == "second"

    def test_excepthook_chains_to_previous(self, recorder):
        rec, path = recorder
        seen = []
        prev = sys.excepthook
        sys.excepthook = lambda *a: seen.append(a)
        try:
            rec.install(path)
            try:
                raise ValueError("boom")
            except ValueError:
                sys.excepthook(*sys.exc_info())
        finally:
            rec.uninstall()
            sys.excepthook = prev
        assert len(seen) == 1
        doc = json.loads(path.read_text())
        assert doc["reason"].startswith("exception: ValueError: boom")

    def test_global_recorder_starts_disarmed(self):
        assert not RECORDER.installed
        assert RECORDER.flush("exit") is None or RECORDER.path is not None


class TestAtomicity:
    def test_no_tmp_file_left_behind(self, recorder):
        rec, path = recorder
        rec.install(path)
        rec.flush("exit")
        leftovers = [
            p for p in path.parent.iterdir()
            if p.name.endswith(".forensics.tmp")
        ]
        assert leftovers == []

    def test_unwritable_target_fails_quietly(self, tmp_path):
        rec = FlightRecorder()
        rec.install(tmp_path / "missing-dir" / "forensics.json")
        try:
            assert rec.flush("exit") is None
        finally:
            rec.uninstall()
