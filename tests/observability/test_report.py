"""Run-report tests: JSON-lines event log, summary schema, file writers."""

from __future__ import annotations

import io
import json

from repro.observability import metrics, tracing
from repro.observability.metrics import REGISTRY
from repro.observability.report import RunReport, write_metrics, write_trace
from repro.observability.schema import (
    validate_file,
    validate_run_report_doc,
)
from repro.observability.tracing import span


class TestEvents:
    def test_events_stream_as_json_lines(self):
        buf = io.StringIO()
        report = RunReport("t", stream=buf)
        report.event("start", n=100)
        report.event("stage", name="reduce", value=1.5)
        lines = [json.loads(l) for l in buf.getvalue().splitlines()]
        assert [l["event"] for l in lines] == ["start", "stage"]
        assert [l["seq"] for l in lines] == [0, 1]
        assert lines[0]["n"] == 100
        assert lines[1]["run"] == "t"
        assert all(l["kind"] == "event" for l in lines)

    def test_non_jsonable_fields_coerced(self):
        report = RunReport("t")
        line = report.event("x", params=object(), xs=(1, 2))
        assert isinstance(line["params"], str)
        assert line["xs"] == [1, 2]
        json.dumps(line)  # must be serializable


class TestSummary:
    def test_summary_embeds_metrics_and_spans(self):
        metrics.enable()
        tracing.enable()
        REGISTRY.counter("hp.carry_words", n=4).inc(7)
        with span("stage.a"):
            pass
        with span("stage.a"):
            pass
        report = RunReport("t")
        report.event("only")
        doc = json.loads(json.dumps(report.summary(value=1.25)))
        assert validate_run_report_doc(doc) == []
        assert doc["events"] == 1
        assert doc["value"] == 1.25
        names = [m["name"] for m in doc["metrics"]]
        assert "hp.carry_words" in names
        (row,) = doc["spans"]
        assert row["name"] == "stage.a" and row["count"] == 2

    def test_summary_appended_to_stream(self):
        buf = io.StringIO()
        report = RunReport("t", stream=buf)
        report.event("e")
        report.summary()
        lines = [json.loads(l) for l in buf.getvalue().splitlines()]
        assert [l["kind"] for l in lines] == ["event", "run_report"]


class TestWriters:
    def test_write_and_validate_files(self, tmp_path):
        metrics.enable()
        tracing.enable()
        REGISTRY.histogram("atomic.cas_attempts_per_add").observe(2)
        with span("s"):
            pass
        mpath = tmp_path / "metrics.json"
        tpath = tmp_path / "trace.json"
        write_metrics(str(mpath))
        write_trace(str(tpath))
        kind, errs = validate_file(str(mpath))
        assert (kind, errs) == ("metrics", [])
        kind, errs = validate_file(str(tpath))
        assert (kind, errs) == ("trace", [])

    def test_validate_file_rejects_garbage(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text('{"kind": "metrics", "schema_version": 999}')
        kind, errs = validate_file(str(bad))
        assert kind == "metrics" and errs
        missing = tmp_path / "missing.json"
        kind, errs = validate_file(str(missing))
        assert kind == "unreadable" and errs
