"""SnapshotRing sampling/rates and the MetricsServer HTTP endpoints."""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request

import pytest

from repro.observability import metrics
from repro.observability.export import parse_prometheus_text
from repro.observability.metrics import REGISTRY, MetricsRegistry
from repro.observability.server import MetricsServer, SnapshotRing, serve_metrics


def _get(url: str):
    with urllib.request.urlopen(url, timeout=5) as resp:
        return resp.status, resp.headers.get("Content-Type"), resp.read()


class TestSnapshotRing:
    def test_capacity_validation(self):
        with pytest.raises(ValueError, match=">= 2 slots"):
            SnapshotRing(MetricsRegistry(), capacity=1)
        with pytest.raises(ValueError, match="interval"):
            SnapshotRing(MetricsRegistry(), interval=0)

    def test_manual_samples_accumulate(self):
        reg = MetricsRegistry()
        ring = SnapshotRing(reg, capacity=3, interval=0.01)
        assert len(ring) == 0 and ring.latest() is None
        ring.sample()
        assert len(ring) == 1
        assert ring.latest()["kind"] == "metrics"

    def test_ring_is_bounded(self):
        ring = SnapshotRing(MetricsRegistry(), capacity=3, interval=0.01)
        for _ in range(10):
            ring.sample()
        assert len(ring) == 3

    def test_rates_need_two_samples(self):
        ring = SnapshotRing(MetricsRegistry(), capacity=4)
        ring.sample()
        assert ring.rates() == []

    def test_rates_reflect_counter_movement(self):
        reg = MetricsRegistry()
        c = reg.counter("global_sum.summands", substrate="procs")
        ring = SnapshotRing(reg, capacity=4)
        ring.sample()
        time.sleep(0.02)
        c.inc(1000)
        ring.sample()
        (rate,) = ring.rates()
        assert rate["name"] == "global_sum.summands"
        assert rate["labels"] == {"substrate": "procs"}
        window = ring.window()
        expected = 1000 / (window[1] - window[0])
        assert rate["per_second"] == pytest.approx(expected)

    def test_unmoved_counters_and_gauges_omitted(self):
        reg = MetricsRegistry()
        reg.counter("still").inc(5)
        reg.gauge("moving").set(1)
        ring = SnapshotRing(reg, capacity=4)
        ring.sample()
        time.sleep(0.01)
        reg.gauge("moving").set(99)  # gauges never produce rates
        ring.sample()
        assert ring.rates() == []

    def test_reset_mid_window_never_reports_negative_rate(self):
        reg = MetricsRegistry()
        c = reg.counter("c")
        c.inc(500)
        ring = SnapshotRing(reg, capacity=4)
        ring.sample()
        time.sleep(0.01)
        reg.reset()
        ring.sample()
        assert all(r["per_second"] > 0 for r in ring.rates())
        assert ring.rates() == []

    def test_background_sampler_runs_and_stops(self):
        reg = MetricsRegistry()
        ring = SnapshotRing(reg, capacity=50, interval=0.01)
        ring.start()
        try:
            deadline = time.time() + 5
            while len(ring) < 3 and time.time() < deadline:
                time.sleep(0.01)
            assert len(ring) >= 3
        finally:
            ring.stop()
        settled = len(ring)
        time.sleep(0.05)
        assert len(ring) == settled

    def test_payload_shape(self):
        reg = MetricsRegistry()
        reg.counter("c").inc()
        ring = SnapshotRing(reg, capacity=4, interval=0.5)
        ring.sample()
        payload = ring.payload()
        assert payload["kind"] == "live_snapshot"
        assert payload["schema_version"] == 1
        assert payload["samples"] == 1
        assert payload["interval_s"] == 0.5
        assert payload["latest"]["metrics"][0]["name"] == "c"
        assert payload["rates"] == []
        json.dumps(payload)  # must be JSON-serializable as-is


class TestMetricsServer:
    def test_ephemeral_port_and_url(self):
        with MetricsServer(port=0) as server:
            assert server.port > 0
            assert server.url == f"http://127.0.0.1:{server.port}"

    def test_metrics_endpoint_serves_exposition(self):
        reg = MetricsRegistry()
        reg.counter("global_sum.calls", substrate="threads").inc(2)
        with MetricsServer(port=0, registry=reg) as server:
            status, ctype, body = _get(server.url + "/metrics")
        assert status == 200
        assert ctype == "text/plain; version=0.0.4; charset=utf-8"
        families = parse_prometheus_text(body.decode())
        assert (
            "global_sum_calls", {"substrate": "threads"}, 2.0
        ) in families["global_sum_calls"]["samples"]

    def test_healthz(self):
        with MetricsServer(port=0, registry=MetricsRegistry()) as server:
            status, ctype, body = _get(server.url + "/healthz")
            health = json.loads(body)
        assert status == 200
        assert ctype == "application/json"
        assert health["status"] == "ok"
        assert health["uptime_s"] >= 0
        assert health["snapshots"] >= 1  # baseline sample at start()

    def test_snapshot_endpoint(self):
        reg = MetricsRegistry()
        reg.counter("c").inc(3)
        with MetricsServer(port=0, registry=reg) as server:
            _, _, body = _get(server.url + "/snapshot")
        payload = json.loads(body)
        assert payload["kind"] == "live_snapshot"
        names = {m["name"] for m in payload["latest"]["metrics"]}
        assert "c" in names

    def test_unknown_path_404(self):
        with MetricsServer(port=0, registry=MetricsRegistry()) as server:
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                _get(server.url + "/nope")
            assert excinfo.value.code == 404

    def test_requests_counted_in_health_and_metric(self):
        metrics.enable()
        with MetricsServer(port=0) as server:
            _get(server.url + "/metrics")
            _get(server.url + "/metrics")
            _, _, body = _get(server.url + "/healthz")
        assert json.loads(body)["requests"] >= 2
        assert REGISTRY.value("obsserver.requests", path="/metrics") == 2

    def test_request_metric_not_registered_while_gate_off(self):
        with MetricsServer(port=0) as server:
            _get(server.url + "/metrics")
        assert REGISTRY.get("obsserver.requests", path="/metrics") is None

    def test_query_strings_ignored(self):
        with MetricsServer(port=0, registry=MetricsRegistry()) as server:
            status, _, _ = _get(server.url + "/healthz?verbose=1")
        assert status == 200

    def test_close_is_idempotent_and_frees_port(self):
        server = MetricsServer(port=0, registry=MetricsRegistry()).start()
        url = server.url
        server.close()
        server.close()
        with pytest.raises(urllib.error.URLError):
            _get(url + "/healthz")

    def test_serve_metrics_helper_returns_running_server(self):
        server = serve_metrics(port=0, registry=MetricsRegistry())
        try:
            status, _, _ = _get(server.url + "/healthz")
            assert status == 200
        finally:
            server.close()

    def test_live_scrape_sees_concurrent_updates(self):
        reg = MetricsRegistry()
        with MetricsServer(port=0, registry=reg, interval=0.01) as server:
            reg.counter("c").inc(1)
            _, _, first = _get(server.url + "/metrics")
            reg.counter("c").inc(41)
            _, _, second = _get(server.url + "/metrics")
        assert "c 1" in first.decode()
        assert "c 42" in second.decode()


class TestSloEndpoint:
    def test_slo_endpoint_serves_the_report(self):
        metrics.enable()
        reg = MetricsRegistry()
        reg.counter("planner.validations", engine="small").inc(5)
        with MetricsServer(port=0, registry=reg) as server:
            status, ctype, body = _get(server.url + "/slo")
        doc = json.loads(body)
        assert status == 200
        assert ctype == "application/json"
        assert doc["kind"] == "slo"
        from repro.observability.schema import validate_slo_doc

        assert validate_slo_doc(doc) == []
        accuracy = next(
            o for o in doc["objectives"] if o["objective"] == "accuracy"
        )
        assert accuracy["total"] == 5
        assert accuracy["compliance"] == 1.0

    def test_slo_scrape_publishes_gauges_into_the_registry(self):
        metrics.enable()
        reg = MetricsRegistry()
        with MetricsServer(port=0, registry=reg) as server:
            _get(server.url + "/slo")
            _, _, body = _get(server.url + "/metrics")
        families = parse_prometheus_text(body.decode())
        assert "slo_compliance" in families
