"""The SLO engine: compliance/burn-rate arithmetic, exact-engine
filtering, gauge publication, and the exported document's schema."""

from __future__ import annotations

import math

import pytest

from repro.observability import journal, metrics
from repro.observability.journal import EventJournal
from repro.observability.metrics import MetricsRegistry
from repro.observability.slo import (
    DEFAULT_LATENCY_THRESHOLD_S,
    DEFAULT_TARGETS,
    SloStatus,
    compute_slos,
    publish,
    slo_report,
)
from repro.observability.schema import validate_document, validate_slo_doc


def _by_name(statuses):
    return {s.objective: s for s in statuses}


class TestSloStatus:
    def test_no_events_is_vacuously_healthy(self):
        s = SloStatus("accuracy", target=0.999, good=0, total=0)
        assert s.compliance is None
        assert s.burn_rate == 0.0
        assert s.healthy

    def test_compliance_and_burn_rate(self):
        # 99 of 100 good against a 99.9% target: error rate 1e-2,
        # budget 1e-3 → burning budget 10x faster than allowed.
        s = SloStatus("accuracy", target=0.999, good=99, total=100)
        assert s.compliance == pytest.approx(0.99)
        assert s.burn_rate == pytest.approx(10.0)
        assert not s.healthy

    def test_zero_budget_burn_rate_is_infinite(self):
        # Exactness admits no error budget: one bad event → burn None.
        s = SloStatus("exactness", target=1.0, good=9, total=10)
        assert s.burn_rate is None
        assert not s.healthy
        clean = SloStatus("exactness", target=1.0, good=10, total=10)
        assert clean.burn_rate == 0.0
        assert clean.healthy


class TestComputeSlos:
    def test_accuracy_from_planner_counters(self):
        metrics.enable()
        reg = MetricsRegistry()
        reg.counter("planner.validations", engine="small").inc(10)
        reg.counter("planner.bound_breaches", engine="small").inc(2)
        acc = _by_name(compute_slos(registry=reg, journal=EventJournal()))[
            "accuracy"
        ]
        assert acc.total == 10
        assert acc.good == 8
        assert acc.detail == {"validations": 10, "bound_breaches": 2}

    def test_exactness_excludes_inexact_paths(self):
        metrics.enable()
        reg = MetricsRegistry()
        # "double" is the probe's positive control — must not count.
        reg.counter("drift.permutation_probes", path="double").inc(5)
        reg.counter("drift.order_invariance_violations", path="double").inc(3)
        reg.counter("drift.permutation_probes", path="hp").inc(7)
        ex = _by_name(compute_slos(registry=reg, journal=EventJournal()))[
            "exactness"
        ]
        assert ex.total == 7
        assert ex.good == 7
        assert ex.healthy
        assert ex.detail["violations"] == 0

    def test_exactness_violation_on_exact_engine_breaches(self):
        metrics.enable()
        reg = MetricsRegistry()
        reg.counter("drift.permutation_probes", path="hp").inc(4)
        reg.counter("drift.order_invariance_violations", path="hp").inc(1)
        ex = _by_name(compute_slos(registry=reg, journal=EventJournal()))[
            "exactness"
        ]
        assert ex.total == 4
        assert ex.good == 3
        assert not ex.healthy
        assert ex.burn_rate is None  # zero budget, one violation

    def test_latency_from_journal_finish_events(self):
        journal.enable()
        j = EventJournal()
        j.emit("request.finish", duration_s=0.1)
        j.emit("request.finish", duration_s=5.0)
        j.emit("request.finish")  # no duration: ignored
        lat = _by_name(
            compute_slos(registry=MetricsRegistry(), journal=j)
        )["latency"]
        assert lat.total == 2
        assert lat.good == 1
        assert lat.detail["worst_s"] == 5.0
        assert lat.detail["threshold_s"] == DEFAULT_LATENCY_THRESHOLD_S

    def test_target_overrides(self):
        statuses = _by_name(compute_slos(
            registry=MetricsRegistry(), journal=EventJournal(),
            targets={"latency": 0.5},
        ))
        assert statuses["latency"].target == 0.5
        assert statuses["accuracy"].target == DEFAULT_TARGETS["accuracy"]


class TestPublish:
    def test_gauges_cover_every_objective(self):
        metrics.enable()
        reg = MetricsRegistry()
        statuses = compute_slos(registry=reg, journal=EventJournal())
        publish(statuses, registry=reg)
        families = {m["name"] for m in reg.collect(prefix="slo.")}
        assert families == {
            "slo.target", "slo.compliance", "slo.burn_rate", "slo.events",
        }
        objectives = {
            m["labels"]["objective"]
            for m in reg.collect(prefix="slo.target")
        }
        assert objectives == {"accuracy", "exactness", "latency"}

    def test_infinite_burn_publishes_minus_one(self):
        metrics.enable()
        reg = MetricsRegistry()
        bad = SloStatus("exactness", target=1.0, good=0, total=1)
        publish([bad], registry=reg)
        burn = [
            m for m in reg.collect(prefix="slo.burn_rate")
            if m["labels"]["objective"] == "exactness"
        ]
        assert burn[0]["value"] == -1.0

    def test_vacuous_compliance_publishes_one(self):
        metrics.enable()
        reg = MetricsRegistry()
        publish([SloStatus("accuracy", 0.999, 0, 0)], registry=reg)
        values = [m["value"] for m in reg.collect(prefix="slo.compliance")]
        assert values == [1.0]


class TestSloReport:
    def test_document_validates(self):
        doc = slo_report(registry=MetricsRegistry(), journal=EventJournal())
        assert doc["kind"] == "slo"
        assert validate_slo_doc(doc) == []
        assert validate_document(doc) == ("slo", [])
        assert {o["objective"] for o in doc["objectives"]} == {
            "accuracy", "exactness", "latency",
        }

    def test_report_publishes_gauges_when_metrics_on(self):
        metrics.enable()
        reg = MetricsRegistry()
        slo_report(registry=reg, journal=EventJournal())
        assert reg.collect(prefix="slo.") != []

    def test_report_skips_gauges_when_metrics_off(self):
        reg = MetricsRegistry()
        slo_report(registry=reg, journal=EventJournal())
        assert reg.collect(prefix="slo.") == []

    def test_bad_document_rejected(self):
        doc = slo_report(registry=MetricsRegistry(), journal=EventJournal())
        doc["objectives"][0]["healthy"] = "yes"
        assert validate_slo_doc(doc) != []
