"""The ``repro top`` dashboard: pure rendering plus the poll loop
against a real MetricsServer."""

from __future__ import annotations

import io

from repro.observability.metrics import MetricsRegistry
from repro.observability.monitor import ULP_BUCKETS
from repro.observability.server import MetricsServer, SnapshotRing
from repro.observability.top import fetch_snapshot, render_top, run_top


def _payload():
    """A /snapshot payload with every section populated, built from a
    real ring over a real registry."""
    reg = MetricsRegistry()
    ring = SnapshotRing(reg, capacity=4)
    ring.sample()
    reg.counter("global_sum.summands", substrate="procs").inc(1_000_000)
    reg.counter("procpool.reduces").inc(3)
    reg.histogram("drift.ulp_error", buckets=ULP_BUCKETS,
                  path="hp-superacc").observe(0)
    reg.histogram("drift.ulp_error", buckets=ULP_BUCKETS,
                  path="float64").observe(120)
    reg.counter("drift.order_invariance_violations", path="float64").inc(2)
    reg.histogram("procpool.task_seconds", buckets=(0.01, 0.1),
                  method="hp-superacc").observe(0.004)
    reg.histogram("profile.phase_call_seconds", buckets=(0.01, 0.1),
                  phase="superacc.scatter").observe(0.02)
    import time

    time.sleep(0.01)  # nonzero window so rates are well-defined
    ring.sample()
    return ring.payload()


class TestRenderTop:
    def test_all_sections_render(self):
        frame = render_top(_payload(), url="http://127.0.0.1:9")
        assert "repro top — http://127.0.0.1:9" in frame
        assert "global_sum.summands{substrate=procs}" in frame
        assert "path=hp-superacc" in frame
        assert "path=float64" in frame
        assert "order-invariance violations: 2 (float64=2)" in frame
        assert "procpool.reduces" in frame
        assert "procpool task seconds:" in frame
        assert "method=hp-superacc" in frame
        assert "profiled phases (per-call latency):" in frame
        assert "superacc.scatter" in frame

    def test_rates_section_scales_units(self):
        frame = render_top(_payload())
        # 1M summands over a ~10ms window: rendered with an M or G suffix
        assert "M/s" in frame or "G/s" in frame

    def test_empty_payload_renders_placeholders(self):
        frame = render_top({"latest": None, "rates": [], "samples": 0,
                            "window_s": 0.0, "interval_s": 1.0})
        assert "(need two ring samples" in frame
        assert "(drift monitor idle" in frame
        assert "(none yet)" in frame


class TestRunTop:
    def test_run_top_against_live_server(self):
        reg = MetricsRegistry()
        reg.counter("procpool.reduces").inc()
        with MetricsServer(port=0, registry=reg, interval=0.05) as server:
            payload = fetch_snapshot(server.url)
            assert payload["kind"] == "live_snapshot"
            out = io.StringIO()
            status = run_top(server.url, interval=0.01, iterations=2,
                             clear=False, out=out)
        assert status == 0
        assert out.getvalue().count("repro top —") == 2
        assert "\x1b[" not in out.getvalue()  # clear=False: no ANSI

    def test_clear_writes_ansi_home(self):
        with MetricsServer(port=0, registry=MetricsRegistry()) as server:
            out = io.StringIO()
            run_top(server.url, interval=0.01, iterations=1, clear=True,
                    out=out)
        assert out.getvalue().startswith("\x1b[H\x1b[J")

    def test_unreachable_server_exits_nonzero(self, capsys):
        status = run_top("http://127.0.0.1:9", interval=0.01, iterations=1,
                         clear=False, out=io.StringIO())
        assert status == 1
        assert "cannot fetch" in capsys.readouterr().err


class TestSparseSnapshots:
    """Satellite: the dashboard must degrade gracefully when fed a
    sparse or partially-populated snapshot (older server, forensics
    bundle, registry that never saw a subsystem) instead of stack-
    tracing."""

    def test_missing_top_level_keys(self):
        frame = render_top({})
        assert "repro top" in frame
        assert "(need two ring samples" in frame
        assert "(drift monitor idle" in frame
        assert "(none yet)" in frame

    def test_latest_without_metrics_key(self):
        frame = render_top({"latest": {}, "samples": 1, "window_s": 0.5,
                            "interval_s": 1.0})
        assert "(none yet)" in frame

    def test_non_dict_entries_are_skipped(self):
        payload = {
            "latest": {"metrics": ["garbage", None, 42,
                                   {"name": "procpool.reduces",
                                    "type": "counter", "value": 3}]},
            "rates": ["also-garbage", {"name": "x"}],
            "samples": 2, "window_s": 1.0, "interval_s": 1.0,
        }
        frame = render_top(payload)
        assert "procpool.reduces" in frame

    def test_metrics_missing_numeric_fields(self):
        payload = {
            "latest": {"metrics": [
                {"name": "drift.ulp_error", "type": "histogram",
                 "labels": {"path": "hp"}},  # no count/sum/max
                {"name": "planner.bound_margin", "type": "histogram"},
                {"name": "procpool.task_seconds", "type": "histogram"},
                {"name": "profile.phase_call_seconds", "type": "histogram"},
                {"name": "global_sum.calls", "type": "counter"},
            ]},
            "rates": [{"name": "global_sum.calls"}],  # no per_second
            "samples": 2, "window_s": 1.0, "interval_s": 1.0,
        }
        frame = render_top(payload)
        assert "path=hp" in frame
        assert "engine=?" in frame

    def test_labels_of_wrong_type_are_tolerated(self):
        payload = {
            "latest": {"metrics": [
                {"name": "drift.order_invariance_violations",
                 "type": "counter", "value": 1, "labels": "not-a-dict"},
                {"name": "drift.ulp_error", "type": "histogram",
                 "count": 1, "sum": 0.0, "max": 0.0, "labels": None},
            ]},
            "samples": 2, "window_s": 1.0, "interval_s": 1.0,
        }
        frame = render_top(payload)
        assert "path=?" in frame
        assert "?=1" in frame


class TestSloPanel:
    @staticmethod
    def _gauges(objective, target, compliance, burn, good, total):
        def g(name, value, **labels):
            return {"name": name, "type": "gauge", "value": value,
                    "labels": {"objective": objective, **labels}}

        return [
            g("slo.target", target),
            g("slo.compliance", compliance),
            g("slo.burn_rate", burn),
            g("slo.events", good, status="good"),
            g("slo.events", total, status="total"),
        ]

    def _frame(self, gauges):
        return render_top({"latest": {"metrics": gauges}, "samples": 2,
                           "window_s": 1.0, "interval_s": 1.0})

    def test_absent_gauges_hide_the_panel(self):
        assert "service-level objectives" not in render_top({})

    def test_healthy_objective_reads_ok(self):
        frame = self._frame(
            self._gauges("accuracy", 0.999, 1.0, 0.0, 10, 10)
        )
        assert "service-level objectives:" in frame
        assert "accuracy" in frame
        assert "good/total=10/10" in frame
        assert "[OK]" in frame

    def test_breached_objective_reads_breached(self):
        frame = self._frame(
            self._gauges("accuracy", 0.999, 0.9, 100.0, 9, 10)
        )
        assert "[BREACHED]" in frame
        assert "burn=100.00x" in frame

    def test_infinite_burn_sentinel_renders_inf(self):
        frame = self._frame(
            self._gauges("exactness", 1.0, 0.5, -1.0, 1, 2)
        )
        assert "burn=   inf" in frame

    def test_no_events_standing(self):
        frame = self._frame(
            self._gauges("latency", 0.95, 1.0, 0.0, 0, 0)
        )
        assert "[no events]" in frame
