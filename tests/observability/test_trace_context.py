"""TraceContext: dict/header wire forms, thread-local activation, and
the disjoint span-id block machinery that makes remote spans adoptable
verbatim."""

from __future__ import annotations

import pytest

from repro.observability import tracing
from repro.observability.tracing import (
    ID_BLOCK,
    Span,
    TRACER,
    TraceContext,
    Tracer,
    activate_context,
    current_context,
)


class TestWireForms:
    def test_new_mints_random_hex(self):
        a, b = TraceContext.new(), TraceContext.new()
        assert len(a.trace_id) == 16
        int(a.trace_id, 16)  # must be hex
        assert a.trace_id != b.trace_id
        assert a.span_id is None

    def test_dict_roundtrip(self):
        ctx = TraceContext("abcdef0123456789", span_id=42, id_base=ID_BLOCK)
        back = TraceContext.from_dict(ctx.to_dict())
        assert back.trace_id == ctx.trace_id
        assert back.span_id == 42
        assert back.id_base == ID_BLOCK

    def test_from_dict_rejects_empty(self):
        assert TraceContext.from_dict(None) is None
        assert TraceContext.from_dict({}) is None
        assert TraceContext.from_dict({"trace_id": ""}) is None

    def test_child_reparents_within_the_trace(self):
        ctx = TraceContext.new()
        kid = ctx.child(span_id=7, id_base=2 * ID_BLOCK)
        assert kid.trace_id == ctx.trace_id
        assert kid.span_id == 7
        assert kid.id_base == 2 * ID_BLOCK

    def test_header_roundtrip(self):
        ctx = TraceContext("abcdef0123456789", span_id=42)
        payload = ctx.to_header() + b"body-bytes"
        back, body = TraceContext.from_header(payload)
        assert body == b"body-bytes"
        assert back.trace_id == ctx.trace_id
        assert back.span_id == 42

    def test_header_without_span_id(self):
        ctx = TraceContext("abcdef0123456789")
        back, _ = TraceContext.from_header(ctx.to_header())
        assert back.span_id is None

    def test_header_len_is_fixed(self):
        assert len(TraceContext.new().to_header()) == TraceContext.HEADER_LEN

    @pytest.mark.parametrize("payload", [
        b"",
        b"short",
        b"not-a-header-but-long-enough-to-fool-a-sloppy-parser",
        b"RTC1" + b"\xff" * 32,  # magic, garbage hex
    ])
    def test_garbage_payloads_pass_through(self, payload):
        ctx, body = TraceContext.from_header(payload)
        assert ctx is None
        assert body == payload


class TestActivation:
    def test_no_context_by_default(self):
        assert current_context() is None

    def test_activation_nests_and_unwinds(self):
        outer, inner = TraceContext.new(), TraceContext.new()
        with activate_context(outer):
            assert current_context() is outer
            with activate_context(inner):
                assert current_context() is inner
            assert current_context() is outer
        assert current_context() is None

    def test_activation_is_thread_local(self):
        import threading

        seen = []
        ctx = TraceContext.new()

        def probe():
            seen.append(current_context())

        with activate_context(ctx):
            t = threading.Thread(target=probe)
            t.start()
            t.join()
        assert seen == [None]


class TestIdBlocks:
    def test_blocks_are_disjoint(self):
        tracer = Tracer()
        blocks = [tracer.allocate_block() for _ in range(3)]
        assert blocks == [ID_BLOCK, 2 * ID_BLOCK, 3 * ID_BLOCK]

    def test_seeded_tracer_allocates_from_the_block(self):
        tracing.enable()
        master, worker = Tracer(), Tracer()
        base = master.allocate_block()
        worker.seed(base)
        with worker.span("worker.task"):
            pass
        with master.span("reduce"):
            pass
        worker_ids = {s.span_id for s in worker.spans()}
        master_ids = {s.span_id for s in master.spans()}
        assert worker_ids == {base}
        assert master_ids == {1}
        assert not worker_ids & master_ids

    def test_adopt_keeps_ids_verbatim(self):
        tracing.enable()
        master, worker = Tracer(), Tracer()
        worker.seed(master.allocate_block())
        with master.span("reduce") as reduce_span:
            with worker.span(
                "worker.task", parent_id=reduce_span.span_id
            ):
                pass
        shipped = worker.spans()
        adopted = master.adopt(shipped)
        assert adopted == shipped
        task = master.spans("worker.task")[0]
        assert task.span_id == ID_BLOCK
        assert task.parent_id == reduce_span.span_id

    def test_adopt_gated_off(self):
        tracer = Tracer()
        assert tracer.adopt([Span("x")]) == []


class TestActiveSpans:
    def test_active_lists_open_spans_in_open_order(self):
        tracing.enable()
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                names = [s.name for s in tracer.active()]
                assert names == ["outer", "inner"]
        assert tracer.active() == []

    def test_span_parent_id_links_under_remote_span(self):
        tracing.enable()
        tracer = Tracer()
        with tracer.span("child", parent_id=999) as sp:
            pass
        assert sp.parent_id == 999
