"""Unit tests for spans: nesting, threading, JSON round-trip, gating."""

from __future__ import annotations

import json
import threading

from repro.observability import tracing
from repro.observability.schema import validate_trace_doc
from repro.observability.tracing import Span, TRACER, span, traced


class TestNesting:
    def test_parent_child_linkage(self):
        tracing.enable()
        with span("outer") as outer:
            with span("inner") as inner:
                pass
        assert inner.parent_id == outer.span_id
        assert outer.parent_id is None
        assert TRACER.children(outer) == [inner]

    def test_sibling_spans_share_parent(self):
        tracing.enable()
        with span("outer") as outer:
            with span("a") as a:
                pass
            with span("b") as b:
                pass
        assert a.parent_id == outer.span_id
        assert b.parent_id == outer.span_id

    def test_current_tracks_stack(self):
        tracing.enable()
        assert TRACER.current() is None
        with span("outer") as outer:
            assert TRACER.current() is outer
            with span("inner") as inner:
                assert TRACER.current() is inner
            assert TRACER.current() is outer
        assert TRACER.current() is None

    def test_explicit_parent_override(self):
        tracing.enable()
        with span("root") as root:
            pass
        with span("adopted", parent=root) as child:
            pass
        assert child.parent_id == root.span_id

    def test_threads_get_independent_stacks(self):
        tracing.enable()
        seen = {}

        def work():
            with span("thread-root") as sp:
                seen["parent"] = sp.parent_id

        with span("main-root"):
            t = threading.Thread(target=work)
            t.start()
            t.join()
        # The other thread's span must NOT adopt this thread's open span.
        assert seen["parent"] is None


class TestTiming:
    def test_clocks_recorded(self):
        tracing.enable()
        with span("t") as sp:
            pass
        assert sp.finished
        assert sp.duration_s >= 0.0
        assert sp.start_unix > 0.0

    def test_error_captured(self):
        tracing.enable()
        try:
            with span("boom"):
                raise RuntimeError("kapow")
        except RuntimeError:
            pass
        sp = TRACER.spans("boom")[0]
        assert sp.error == "RuntimeError: kapow"
        assert sp.finished


class TestExport:
    def test_json_round_trip(self):
        tracing.enable()
        with span("outer", method="hp", pes=8):
            with span("inner"):
                pass
        doc = json.loads(json.dumps(TRACER.export()))
        assert validate_trace_doc(doc) == []
        back = TRACER.import_spans(doc)
        assert [s.to_dict() for s in back] == doc["spans"]
        by_name = {s.name: s for s in back}
        assert by_name["inner"].parent_id == by_name["outer"].span_id
        assert by_name["outer"].attrs == {"method": "hp", "pes": 8}

    def test_export_sorted_parents_first(self):
        tracing.enable()
        with span("a"):
            with span("b"):
                with span("c"):
                    pass
        ids = [s["span_id"] for s in TRACER.export()["spans"]]
        assert ids == sorted(ids)

    def test_non_jsonable_attrs_stringified(self):
        tracing.enable()
        with span("s", params=object()) as sp:
            pass
        assert isinstance(sp.to_dict()["attrs"]["params"], str)


class TestDecorator:
    def test_traced_names_and_records(self):
        tracing.enable()

        @traced("work.step", stage=1)
        def step(x):
            return x * 2

        assert step(21) == 42
        sp = TRACER.spans("work.step")[0]
        assert sp.attrs == {"stage": 1}

    def test_traced_default_name(self):
        tracing.enable()

        @traced()
        def helper():
            return 1

        helper()
        assert len(TRACER.spans()) == 1
        assert "helper" in TRACER.spans()[0].name


class TestDisabledMode:
    def test_spans_not_collected_but_still_timed(self):
        assert not tracing.ENABLED
        with span("ghost") as sp:
            pass
        assert len(TRACER) == 0
        assert sp.duration_s >= 0.0  # Timer semantics survive the gate
        assert sp.span_id is None

    def test_timer_wrapper_works_disabled_and_enabled(self):
        from repro.util.timing import Timer, repeat_timeit

        with Timer() as t:
            sum(range(100))
        assert t.elapsed >= 0.0
        assert len(TRACER) == 0

        tracing.enable()
        r = repeat_timeit(lambda: None, trials=3, warmup=0)
        assert len(r.times) == 3
        assert len(TRACER.spans("util.repeat_timeit.trial")) == 3
        parents = {s.parent_id for s in
                   TRACER.spans("util.repeat_timeit.trial")}
        (outer,) = TRACER.spans("util.repeat_timeit")
        assert parents == {outer.span_id}

    def test_mid_span_disable_does_not_unbalance(self):
        tracing.enable()
        with span("outer"):
            tracing.disable()
            with span("while-off"):
                pass
            tracing.enable()
        assert TRACER.current() is None
        names = {s.name for s in TRACER.spans()}
        assert names == {"outer"}
