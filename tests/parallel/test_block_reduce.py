"""Unit tests for the block-structured GPU reduction."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core.params import HPParams
from repro.hallberg.params import HallbergParams
from repro.parallel.gpu import gpu_sum
from repro.parallel.gpu.block_reduce import (
    SpinBarrier,
    gpu_block_sum,
    launch_blocks,
)
from repro.parallel.gpu.device import SimDevice

HP = HPParams(6, 3)
HB = HallbergParams(10, 38)


class TestSpinBarrier:
    def test_generation_advances_when_all_arrive(self):
        barrier = SpinBarrier(3)
        gens = [barrier.arrive() for _ in range(3)]
        assert gens == [0, 0, 0]
        assert all(barrier.passed(g) for g in gens)

    def test_blocks_until_last(self):
        barrier = SpinBarrier(2)
        g = barrier.arrive()
        assert not barrier.passed(g)
        barrier.arrive()
        assert barrier.passed(g)

    def test_reusable_across_generations(self):
        barrier = SpinBarrier(2)
        for _ in range(3):
            g1 = barrier.arrive()
            g2 = barrier.arrive()
            assert barrier.passed(g1) and barrier.passed(g2)

    def test_rejects_zero_parties(self):
        with pytest.raises(ValueError):
            SpinBarrier(0)


class TestLaunchBlocks:
    def test_blocks_scheduled_whole(self):
        """With a 4-thread ceiling, two 4-thread blocks with barriers
        must still finish — blocks are admitted atomically."""
        device = SimDevice(memory_words=1, max_concurrent_threads=4)
        barriers = [SpinBarrier(4), SpinBarrier(4)]
        done = []

        def worker(block, tid):
            yield
            gen = barriers[block].arrive()
            while not barriers[block].passed(gen):
                yield
            done.append((block, tid))
            yield

        blocks = [[worker(b, t) for t in range(4)] for b in range(2)]
        launch_blocks(device, blocks)
        assert sorted(done) == [(b, t) for b in range(2) for t in range(4)]


class TestGpuBlockSum:
    @pytest.mark.parametrize("method,params", [
        ("double", None), ("hp", HP), ("hallberg", HB),
    ])
    def test_correct_value(self, rng, method, params):
        data = rng.uniform(-0.5, 0.5, 500)
        r = gpu_block_sum(data, method, num_blocks=4, block_size=8,
                          params=params)
        if method == "double":
            assert r.value == pytest.approx(math.fsum(data), abs=1e-12)
        else:
            assert r.value == math.fsum(data)

    def test_hp_invariant_across_grid_shapes(self, rng):
        data = rng.uniform(-0.5, 0.5, 300)
        results = {
            gpu_block_sum(data, "hp", nb, bs, params=HP).value
            for nb, bs in [(1, 4), (2, 8), (8, 2), (4, 16)]
        }
        assert len(results) == 1

    def test_hp_matches_atomic_kernel(self, rng):
        """The strongest intra-device claim: two completely different
        kernels (atomic scatter vs block tree) produce identical HP
        words."""
        data = rng.uniform(-0.5, 0.5, 400)
        atomic = gpu_sum(data, "hp", num_threads=32, params=HP).value
        block = gpu_block_sum(data, "hp", 4, 8, params=HP).value
        assert atomic == block == math.fsum(data)

    def test_block_partials_recorded(self, rng):
        data = rng.uniform(-0.5, 0.5, 128)
        r = gpu_block_sum(data, "hp", num_blocks=4, block_size=4, params=HP)
        assert len(r.block_partials) == 4
        assert math.fsum(r.block_partials) == pytest.approx(
            r.value, abs=1e-12
        )

    def test_residency_ceiling_with_barriers(self, rng):
        """More blocks than fit: the ceiling admits whole blocks only,
        so barriers cannot deadlock."""
        data = rng.uniform(-0.5, 0.5, 200)
        r = gpu_block_sum(data, "hp", num_blocks=8, block_size=4,
                          params=HP, max_concurrent_threads=8)
        assert r.value == math.fsum(data)

    def test_rejects_bad_geometry(self, rng):
        with pytest.raises(ValueError):
            gpu_block_sum(rng.uniform(size=8), "double", 2, 3)  # not pow2
        with pytest.raises(ValueError):
            gpu_block_sum(rng.uniform(size=8), "double", 0, 4)

    def test_requires_params(self, rng):
        with pytest.raises(TypeError):
            gpu_block_sum(rng.uniform(size=8), "hp", 1, 4)

    def test_data_smaller_than_grid(self, rng):
        data = rng.uniform(-0.5, 0.5, 3)
        r = gpu_block_sum(data, "hp", num_blocks=4, block_size=8, params=HP)
        assert r.value == math.fsum(data)

    def test_empty_data(self):
        r = gpu_block_sum(np.array([], dtype=np.float64), "hp", 2, 4,
                          params=HP)
        assert r.value == 0.0


class TestAdversarialBlockScheduling:
    @pytest.mark.parametrize("seed", range(4))
    def test_exact_under_random_schedules(self, rng, seed):
        data = rng.uniform(-0.5, 0.5, 300)
        r = gpu_block_sum(data, "hp", num_blocks=4, block_size=8,
                          params=HP, schedule_seed=seed)
        assert r.value == math.fsum(data)

    def test_barriers_hold_under_random_order(self, rng):
        """Random intra-block service order must not break the
        __syncthreads semantics (no thread passes early)."""
        data = rng.uniform(-0.5, 0.5, 200)
        r = gpu_block_sum(data, "hp", num_blocks=8, block_size=4,
                          params=HP, max_concurrent_threads=8,
                          schedule_seed=99)
        assert r.value == math.fsum(data)
