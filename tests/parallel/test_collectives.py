"""Unit tests for the simulated-MPI collectives and SPMD driver."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.params import HPParams
from repro.parallel.methods import DoubleMethod, HPMethod
from repro.parallel.simmpi import (
    SimComm,
    bcast,
    distributed_sum,
    gatherv,
    scatterv,
)

HP = HPMethod(HPParams(6, 3))


class TestScatterv:
    @pytest.mark.parametrize("size", [1, 2, 3, 7, 16])
    def test_each_rank_gets_its_payload(self, size):
        comm = SimComm(size)
        payloads = [f"rank{i}".encode() * (i + 1) for i in range(size)]
        assert scatterv(comm, payloads) == payloads

    @pytest.mark.parametrize("root", [0, 1, 4])
    def test_nonzero_root(self, root):
        comm = SimComm(5)
        payloads = [bytes([i]) * 3 for i in range(5)]
        assert scatterv(comm, payloads, root=root) == payloads

    def test_logarithmic_hops(self):
        """Each byte travels at most ceil(log2 p) hops: total traffic is
        bounded by total_payload * log2(p) (plus framing)."""
        size = 16
        comm = SimComm(size)
        payloads = [b"x" * 1000 for _ in range(size)]
        scatterv(comm, payloads)
        assert comm.stats.bytes <= 16 * 1000 * 4 + comm.stats.messages * 16 * 16

    def test_payload_count_check(self):
        with pytest.raises(ValueError):
            scatterv(SimComm(3), [b"a", b"b"])

    def test_quiescent(self):
        comm = SimComm(8)
        scatterv(comm, [bytes([i]) for i in range(8)])
        assert comm.pending() == 0


class TestGatherv:
    @pytest.mark.parametrize("size", [1, 2, 5, 8, 13])
    def test_root_collects_everything(self, size):
        comm = SimComm(size)
        payloads = [f"data-{i}".encode() for i in range(size)]
        assert gatherv(comm, payloads) == payloads

    @pytest.mark.parametrize("root", [0, 2])
    def test_nonzero_root(self, root):
        comm = SimComm(4)
        payloads = [bytes([i]) * (i + 1) for i in range(4)]
        assert gatherv(comm, payloads, root=root) == payloads

    def test_roundtrip_with_scatter(self):
        payloads = [bytes(range(i + 1)) for i in range(9)]
        scattered = scatterv(SimComm(9), payloads)
        assert gatherv(SimComm(9), scattered) == payloads


class TestBcast:
    @pytest.mark.parametrize("size", [1, 2, 6, 16])
    def test_everyone_gets_identical_bytes(self, size):
        out = bcast(SimComm(size), b"the words", root=0)
        assert out == [b"the words"] * size

    def test_message_count(self):
        comm = SimComm(8)
        bcast(comm, b"x")
        assert comm.stats.messages == 7  # binomial: p-1 sends


class TestDistributedSum:
    @pytest.mark.parametrize("size", [1, 2, 4, 9, 32])
    def test_exact_and_invariant(self, rng, size):
        data = rng.uniform(-0.5, 0.5, 500)
        value, partial, _ = distributed_sum(data, HP, size)
        assert value == math.fsum(data)
        ref_value, ref_partial, _ = distributed_sum(data, HP, 1)
        assert partial == ref_partial

    def test_data_travels_as_bytes(self, rng):
        data = rng.uniform(-0.5, 0.5, 256)
        _, _, comm = distributed_sum(data, HP, 8)
        # At minimum the array itself crossed the wire once.
        assert comm.stats.bytes >= 256 * 8

    def test_double_varies_with_size(self, rng):
        data = np.concatenate(
            [rng.uniform(0, 1e-3, 2048), -rng.uniform(0, 1e-3, 2048)]
        )
        method = DoubleMethod(strict_serial=True)
        values = {distributed_sum(data, method, s)[0] for s in (1, 3, 8, 17)}
        assert len(values) > 1

    def test_nonzero_root(self, rng):
        data = rng.uniform(-0.5, 0.5, 100)
        value, partial, _ = distributed_sum(data, HP, 6, root=4)
        assert partial == distributed_sum(data, HP, 1)[1]

    @given(st.integers(min_value=1, max_value=24),
           st.integers(min_value=0, max_value=200))
    @settings(max_examples=30, deadline=None)
    def test_property_any_size_any_n(self, size, n):
        rng = np.random.default_rng(size * 1000 + n)
        data = rng.uniform(-1.0, 1.0, n)
        value, partial, _ = distributed_sum(data, HP, size)
        assert value == math.fsum(data)
