"""Compensated tiers across the parallel substrates.

The merge algebra travels: ``CompPartial`` pickles through the procs
pool, packs through the simmpi wire codec, and rank-order-combines on
threads — and on every substrate the global result stays inside the
tier's advertised bound with run-to-run determinism for a fixed
partition.  Bit-identity across *different* substrates or PE counts is
deliberately NOT asserted (the tiers carry no such contract).
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core import bounds
from repro.core import compensated as comp
from repro.parallel.drivers import global_sum, make_method
from repro.parallel.methods import CompensatedMethod
from repro.parallel.simmpi.datatypes import (
    CompensatedPartialType,
    datatype_for_method,
)

MODELS = {
    "comp-pairwise": "pairwise",
    "comp-kahan": "compensated",
    "comp-neumaier": "compensated",
}

SUBSTRATES = ("serial", "threads", "procs", "mpi", "mpi-scatter", "phi")


def make_data(n: int = 60_000, seed: int = 9) -> np.ndarray:
    rng = np.random.default_rng(seed)
    return rng.standard_normal(n) * np.exp(rng.uniform(-25, 25, size=n))


class TestAdapter:
    def test_make_method_resolves_registry_names(self):
        for name in MODELS:
            adapter = make_method(name)
            assert isinstance(adapter, CompensatedMethod)
            assert adapter.name == name
            assert not adapter.is_exact()
            assert adapter.partial_nbytes() == 32

    def test_alias_resolution_through_registry(self):
        # make_method takes adapter names; aliases resolve through the
        # registry (the CLI maps --engine pairwise -> adapter_name).
        from repro.core import engines

        for alias, canonical in (
            ("pairwise", "comp-pairwise"),
            ("neumaier", "comp-neumaier"),
        ):
            assert engines.get(alias).adapter_name == canonical
            assert make_method(canonical).name == canonical

    def test_unknown_kernel_rejected(self):
        with pytest.raises(ValueError, match="unknown compensated kernel"):
            CompensatedMethod(kernel="magic")

    def test_combine_rewraps_plain_tuples(self):
        # Wire partials may arrive as bare tuples; combine must accept
        # them and still run the two_sum merge.
        m = CompensatedMethod()
        a = (1e16, 0.0, 1, 1e16)
        b = (1.0, 0.0, 1, 1.0)
        merged = m.combine(a, b)
        assert merged == comp.CompPartial(1e16, 1.0, 2, 1e16)
        assert m.finalize(tuple(merged)) == 1e16 + 1.0


class TestGlobalSum:
    @pytest.mark.parametrize("method", sorted(MODELS))
    @pytest.mark.parametrize("substrate", SUBSTRATES)
    def test_within_bound_everywhere(self, method, substrate):
        xs = make_data()
        result = global_sum(xs, method=method, substrate=substrate, pes=4)
        assert result.words is None  # inexact: no bit pattern to carry
        reference = math.fsum(xs)
        mass = math.fsum(np.abs(xs))
        limit = bounds.coefficient(MODELS[method], len(xs)) * mass
        assert abs(result.value - reference) <= limit

    @pytest.mark.parametrize("substrate", ("threads", "mpi", "procs"))
    def test_fixed_partition_determinism(self, substrate):
        xs = make_data(40_000, seed=10)
        a = global_sum(xs, method="comp-neumaier", substrate=substrate,
                       pes=4)
        b = global_sum(xs, method="comp-neumaier", substrate=substrate,
                       pes=4)
        assert a.value == b.value  # bit-identical, run to run

    def test_gpu_refuses_compensated(self):
        with pytest.raises(ValueError, match="substrate 'gpu' has no"):
            global_sum(make_data(256), method="comp-neumaier",
                       substrate="gpu", pes=4)


class TestWireCodec:
    def test_roundtrip_is_exact(self):
        dt = CompensatedPartialType()
        assert dt.nbytes == 32
        partial = comp.CompPartial(-1.5e300, 7.25e-300, 123456789, 2.5e300)
        buf = dt.pack(partial)
        assert len(buf) == 32
        out = dt.unpack(buf)
        assert isinstance(out, comp.CompPartial)
        assert out == partial

    def test_roundtrip_accepts_plain_tuple(self):
        dt = CompensatedPartialType()
        assert dt.unpack(dt.pack((0.5, -0.25, 7, 0.5))) == comp.CompPartial(
            0.5, -0.25, 7, 0.5
        )

    def test_dispatch_from_method(self):
        assert isinstance(
            datatype_for_method(CompensatedMethod()),
            CompensatedPartialType,
        )

    def test_size_check(self):
        with pytest.raises(ValueError, match="32 bytes"):
            CompensatedPartialType().unpack(b"\x00" * 31)
