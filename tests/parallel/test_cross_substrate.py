"""Integration: the architecture-invariance theorem across substrates.

The paper's core claim (Sec. III.B.3): the HP sum is invariant "both with
respect to the order of the summation and to the architecture on which
the addition is performed".  These tests drive the *same* dataset through
every substrate — serial, threads, simulated MPI, the stepped GPU device,
and the offload model — at several PE counts each, and require a single
set of HP words from all of them.  Hallberg (within budget) must satisfy
the same property; double precision must not (that contrast is asserted
too, on cancellation-heavy data).
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core.params import HPParams
from repro.core.scalar import add_words
from repro.experiments.datasets import zero_sum_set
from repro.hallberg.params import HallbergParams
from repro.parallel.gpu import gpu_sum
from repro.parallel.methods import DoubleMethod, HallbergMethod, HPMethod
from repro.parallel.phi import offload_reduce
from repro.parallel.simmpi import mpi_reduce
from repro.parallel.threads import thread_reduce
from repro.util.rng import default_rng

HP_PARAMS = HPParams(6, 3)
HB_PARAMS = HallbergParams(10, 38)
N = 600


@pytest.fixture(scope="module")
def data() -> np.ndarray:
    return default_rng(99).uniform(-0.5, 0.5, N)


def _all_substrate_words(data: np.ndarray) -> dict[str, tuple]:
    """Collect HP words from every substrate/topology combination."""
    method = HPMethod(HP_PARAMS)
    out: dict[str, tuple] = {}
    out["serial"] = thread_reduce(data, method, 1).partial
    for p in (3, 8):
        out[f"threads p={p}"] = thread_reduce(data, method, p).partial
    for p in (4, 11):
        out[f"mpi p={p}"] = mpi_reduce(data, method, p).partial
    g = gpu_sum(data, "hp", num_threads=64, params=HP_PARAMS,
                max_concurrent_threads=32)
    total = (0,) * HP_PARAMS.n
    for part in g.partials:
        total = add_words(total, part)
    out["gpu t=64"] = total
    out["phi t=60"] = offload_reduce(data, method, 60).partial
    return out


class TestArchitectureInvariance:
    def test_hp_words_identical_everywhere(self, data):
        words = _all_substrate_words(data)
        reference = words["serial"]
        for name, w in words.items():
            assert w == reference, f"{name} diverged"

    def test_value_is_the_exact_sum(self, data):
        method = HPMethod(HP_PARAMS)
        assert thread_reduce(data, method, 5).value == math.fsum(data)

    def test_hallberg_invariant_within_budget(self, data):
        method = HallbergMethod(HB_PARAMS)
        digits = {
            thread_reduce(data, method, p).partial[0] for p in (1, 4, 9)
        } | {mpi_reduce(data, method, p).partial[0] for p in (2, 8)}
        assert len(digits) == 1

    def test_double_not_invariant_on_cancellation_data(self):
        """The contrast claim: on zero-sum data the double result depends
        on the reduction topology."""
        values = zero_sum_set(4096, default_rng(5))
        method = DoubleMethod(strict_serial=True)
        results = {thread_reduce(values, method, p).value for p in
                   (1, 2, 3, 5, 8, 13, 21, 34)}
        assert len(results) > 1

    def test_hp_exact_zero_on_cancellation_data(self):
        values = zero_sum_set(4096, default_rng(5))
        method = HPMethod(HPParams(3, 2))
        for p in (1, 7, 32):
            assert thread_reduce(values, method, p).value == 0.0
