"""Tests for the global_sum facade."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core.params import HPParams
from repro.hallberg.params import HallbergParams
from repro.parallel.drivers import (
    SUBSTRATES,
    GlobalSumResult,
    global_sum,
    make_method,
)
from repro.parallel.methods import DoubleMethod, HallbergMethod, HPMethod
from repro.parallel.schedule import Schedule


class TestMakeMethod:
    def test_paper_defaults(self):
        assert make_method("hp").params == HPParams(6, 3)
        assert make_method("hallberg").params == HallbergParams(10, 38)
        assert isinstance(make_method("double"), DoubleMethod)

    def test_explicit_params(self):
        assert make_method("hp", HPParams(3, 2)).params == HPParams(3, 2)

    def test_passthrough_adapter(self):
        m = HPMethod(HPParams(2, 1))
        assert make_method(m) is m

    def test_params_type_check(self):
        with pytest.raises(TypeError):
            make_method("hp", HallbergParams(10, 38))
        with pytest.raises(TypeError):
            make_method("hallberg", HPParams(6, 3))

    def test_unknown_method(self):
        with pytest.raises(ValueError):
            make_method("quad")


class TestGlobalSum:
    @pytest.fixture(scope="class")
    def data(self):
        return np.random.default_rng(55).uniform(-0.5, 0.5, 800)

    @pytest.mark.parametrize("substrate,pes", [
        ("serial", 1), ("threads", 4), ("mpi", 8), ("mpi-scatter", 5),
        ("phi", 16),
    ])
    def test_hp_exact_everywhere(self, data, substrate, pes):
        r = global_sum(data, "hp", substrate, pes)
        assert r.value == math.fsum(data)
        assert r.words is not None

    def test_gpu_substrate(self, data):
        r = global_sum(data[:200], "hp", "gpu", pes=16)
        assert r.value == math.fsum(data[:200])
        assert r.words is not None

    def test_words_identical_across_substrates(self, data):
        results = [
            global_sum(data, "hp", s, p)
            for s, p in [("serial", 1), ("threads", 3), ("mpi", 7),
                         ("mpi-scatter", 4), ("phi", 60)]
        ]
        for r in results[1:]:
            assert r.bitwise_equal(results[0])

    def test_hallberg_words(self, data):
        a = global_sum(data, "hallberg", "threads", 4)
        b = global_sum(data, "hallberg", "mpi", 8)
        assert a.bitwise_equal(b)
        assert a.value == math.fsum(data)

    def test_double_has_no_words(self, data):
        r = global_sum(data, "double", "threads", 4)
        assert r.words is None
        assert not r.bitwise_equal(r)

    def test_schedule_support(self, data):
        r = global_sum(data, "hp", "threads", 4,
                       schedule=Schedule("dynamic", 16))
        assert r.value == math.fsum(data)
        assert r.words == global_sum(data, "hp", "serial").words

    def test_unknown_substrate(self, data):
        with pytest.raises(ValueError, match="substrate"):
            global_sum(data, "hp", "quantum", 2)

    def test_result_metadata(self, data):
        r = global_sum(data, "hp", "threads", 6)
        assert (r.method, r.substrate, r.pes) == ("hp", "threads", 6)

    def test_kwargs_passthrough(self, data):
        r = global_sum(data, "hp", "threads", 4, engine="native")
        assert r.value == math.fsum(data)
