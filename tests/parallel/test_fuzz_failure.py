"""Adversarial-schedule fuzzing and failure injection.

Two families of robustness tests:

* **Scheduler fuzzing** — the simulated GPU's adversarial mode services
  threads in a fresh random order every step; exact kernels must return
  bit-identical results for every seed (the strongest executable form of
  the paper's atomicity claim, Sec. III.B.2).
* **Failure injection** — corrupted/truncated wire bytes and protocol
  misuse in the MPI substrate must fail loudly, never return a wrong
  sum silently.
"""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.params import HPParams
from repro.hallberg.params import HallbergParams
from repro.parallel.gpu import gpu_sum
from repro.parallel.methods import HPMethod
from repro.parallel.simmpi import (
    HPWordsType,
    SimComm,
    mpi_reduce_partials,
)

HP = HPParams(3, 2)
HB = HallbergParams(10, 38)


class TestScheduleFuzzing:
    @pytest.fixture(scope="class")
    def data(self):
        return np.random.default_rng(42).uniform(-0.5, 0.5, 250)

    @pytest.fixture(scope="class")
    def expected(self, data):
        return math.fsum(data)

    @pytest.mark.parametrize("seed", range(8))
    def test_hp_atomic_kernel_under_random_schedules(self, data, expected,
                                                     seed):
        g = gpu_sum(
            data, "hp", num_threads=48, params=HP,
            max_concurrent_threads=12, num_partials=4, schedule_seed=seed,
        )
        assert g.value == expected
        # The adversarial schedule must actually provoke contention,
        # otherwise the test proves nothing.
        assert g.run.memory.cas_failures > 0

    @pytest.mark.parametrize("seed", range(4))
    def test_hallberg_kernel_under_random_schedules(self, data, expected,
                                                    seed):
        g = gpu_sum(
            data, "hallberg", num_threads=48, params=HB,
            max_concurrent_threads=12, num_partials=4, schedule_seed=seed,
        )
        assert g.value == expected

    def test_double_kernel_schedule_sensitive(self, data):
        """The contrast: atomic double results depend on commit order."""
        values = {
            gpu_sum(
                data, "double", num_threads=48,
                max_concurrent_threads=12, num_partials=4,
                schedule_seed=seed,
            ).value
            for seed in range(10)
        }
        assert len(values) > 1

    @given(st.integers(min_value=0, max_value=10**6))
    @settings(max_examples=10, deadline=None)
    def test_property_any_seed_exact(self, seed):
        data = np.random.default_rng(7).uniform(-0.5, 0.5, 120)
        g = gpu_sum(
            data, "hp", num_threads=24, params=HP,
            max_concurrent_threads=6, num_partials=2, schedule_seed=seed,
        )
        assert g.value == math.fsum(data)


class TestWireFailureInjection:
    def _partials(self, comm_size):
        rng = np.random.default_rng(1)
        method = HPMethod(HP)
        return method, [
            method.local_reduce(rng.uniform(-0.5, 0.5, 50))
            for _ in range(comm_size)
        ]

    def test_truncated_message_detected(self):
        """A short read must raise, not decode to a wrong partial."""
        dtype = HPWordsType(HP)
        blob = dtype.pack((1, 2, 3))
        with pytest.raises(ValueError):
            dtype.unpack(blob[:-1])

    def test_corrupted_bytes_change_value_loudly_or_exactly(self):
        """Bit corruption cannot be *silently absorbed*: the decoded
        partial differs from the original in exactly the flipped bits,
        so end-to-end checksums (the count fields) or value checks can
        catch it.  This pins the codec as deterministic and injective."""
        dtype = HPWordsType(HP)
        original = (7, 8, 9)
        blob = bytearray(dtype.pack(original))
        blob[0] ^= 0x01
        decoded = dtype.unpack(bytes(blob))
        assert decoded != original
        assert decoded == (6, 8, 9)  # precisely the flipped low bit of word 0

    def test_wrong_size_comm_partials(self):
        method, partials = self._partials(4)
        comm = SimComm(4)
        with pytest.raises(ValueError):
            mpi_reduce_partials(comm, partials[:3], method)

    def test_recv_from_silent_rank_deadlocks_loudly(self):
        comm = SimComm(3)
        with pytest.raises(RuntimeError, match="deadlock"):
            comm.recv(0, 2)

    def test_reduce_leaves_no_stray_messages(self):
        method, partials = self._partials(8)
        comm = SimComm(8)
        mpi_reduce_partials(comm, partials, method)
        assert comm.pending() == 0

    def test_mixed_format_partial_rejected_by_op(self):
        """A partial from a different format fails in the combine, not
        silently merged."""
        from repro.errors import MixedParameterError

        method, partials = self._partials(2)
        bad = (0,) * 6  # wrong word count for HP(3,2)
        comm = SimComm(2)
        with pytest.raises((MixedParameterError, ValueError,
                            Exception)):
            mpi_reduce_partials(comm, [partials[0], bad], method)
