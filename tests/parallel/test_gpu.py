"""Unit tests for the simulated CUDA substrate."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core.params import HPParams
from repro.hallberg.params import HallbergParams
from repro.parallel.gpu import (
    DeviceMemory,
    K20M_MAX_CONCURRENT_THREADS,
    SimDevice,
    gpu_sum,
    gpu_sum_fast,
)
from repro.parallel.methods import HPMethod

HP = HPParams(3, 2)
HB = HallbergParams(10, 38)


class TestDeviceMemory:
    def test_load_store(self):
        mem = DeviceMemory(4)
        mem.store(2, 99)
        assert mem.load(2) == 99
        assert mem.stats.loads == 1 and mem.stats.stores == 1

    def test_cas_returns_observed(self):
        mem = DeviceMemory(1)
        mem.store(0, 7)
        ok, observed = mem.cas(0, 7, 8)
        assert ok and observed == 7 and mem.peek(0) == 8
        ok, observed = mem.cas(0, 7, 9)
        assert not ok and observed == 8 and mem.peek(0) == 8

    def test_read_write_accounting(self):
        mem = DeviceMemory(1)
        mem.cas(0, 0, 1)    # success: one write
        mem.cas(0, 0, 2)    # failure: one read
        assert mem.stats.writes == 1 and mem.stats.reads == 1

    def test_wraps_uint64(self):
        mem = DeviceMemory(1)
        mem.store(0, -1)
        assert mem.peek(0) == 2**64 - 1

    def test_bounds(self):
        mem = DeviceMemory(2)
        with pytest.raises(IndexError):
            mem.load(2)


class TestSimDevice:
    def test_runs_generators_to_completion(self):
        mem_writes = []

        def kernel(i):
            yield
            mem_writes.append(i)
            yield

        device = SimDevice(memory_words=1, max_concurrent_threads=2)
        run = device.launch(kernel(i) for i in range(5))
        assert sorted(mem_writes) == [0, 1, 2, 3, 4]
        assert run.launched_threads == 5
        assert run.occupancy_limited  # 5 > 2 resident

    def test_default_residency_is_k20m(self):
        device = SimDevice(memory_words=1)
        assert device.max_concurrent_threads == K20M_MAX_CONCURRENT_THREADS

    def test_interleaving_is_real(self):
        """Two threads racing a CAS on one cell must produce a retry."""
        device = SimDevice(memory_words=1, max_concurrent_threads=2)
        mem = device.memory

        def incrementer():
            old = mem.load(0)
            yield
            while True:
                ok, observed = mem.cas(0, old, (old + 1) % 2**64)
                yield
                if ok:
                    return
                old = observed

        run = device.launch([incrementer(), incrementer()])
        assert mem.peek(0) == 2  # both increments landed
        assert run.memory.cas_failures >= 1  # one thread had to retry


class TestGpuSum:
    @pytest.mark.parametrize("method,params", [
        ("double", None), ("hp", HP), ("hallberg", HB),
    ])
    def test_correct_value(self, rng, method, params):
        data = rng.uniform(-0.5, 0.5, 300)
        g = gpu_sum(data, method, num_threads=32, params=params)
        if method == "double":
            assert g.value == pytest.approx(math.fsum(data), abs=1e-12)
        else:
            assert g.value == math.fsum(data)

    def test_exact_methods_scheduling_invariant(self, rng):
        """Different thread counts, residency limits and partial counts
        never change the HP result."""
        data = rng.uniform(-0.5, 0.5, 250)
        reference = None
        for threads, resident, partials in [
            (8, 8, 256), (64, 16, 256), (97, 13, 16), (300, 64, 4),
        ]:
            g = gpu_sum(
                data, "hp", num_threads=threads, params=HP,
                max_concurrent_threads=resident, num_partials=partials,
            )
            if reference is None:
                reference = g.value
            assert g.value == reference, (threads, resident, partials)

    def test_fast_path_matches_simulation(self, rng):
        data = rng.uniform(-0.5, 0.5, 300)
        method = HPMethod(HP)
        sim = gpu_sum(data, "hp", num_threads=48, params=HP)
        assert gpu_sum_fast(data, method, 48) == sim.value

    def test_requires_params_for_fixed_point(self, rng):
        with pytest.raises(TypeError):
            gpu_sum(rng.uniform(size=4), "hp", num_threads=2)

    def test_unknown_method(self, rng):
        with pytest.raises(ValueError):
            gpu_sum(rng.uniform(size=4), "quad", num_threads=2)

    def test_memory_op_minimums(self, rng):
        """Zero contention: the per-add traffic equals the Sec. IV.B
        minimums (2R/1W double; <=(1+N)R/<=NW for HP)."""
        n = 128
        data = rng.uniform(-0.5, 0.5, n)
        g = gpu_sum(data, "double", num_threads=16)
        assert g.run.memory.reads == 2 * n
        assert g.run.memory.writes == n
        g = gpu_sum(data, "hp", num_threads=16, params=HP)
        assert g.run.memory.cas_failures == 0
        assert n < g.run.memory.reads <= (1 + HP.n) * n
        assert g.run.memory.writes <= HP.n * n
