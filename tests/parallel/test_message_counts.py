"""Integration tests: simmpi collective traffic matches the textbook
message-count formulas, both in ``TrafficStats`` and in the metrics
registry the observability subsystem mirrors them into.

* reduce-then-broadcast allreduce: ``(p-1)`` sends up the binomial tree
  plus ``(p-1)`` down the broadcast tree — ``2(p-1)`` total, any ``p``.
* recursive-doubling allreduce, power-of-two ``p``: every round all
  ``p`` ranks exchange pairwise — ``p·log2(p)`` messages.
"""

from __future__ import annotations

import math

import pytest

from repro.core.params import HPParams
from repro.observability import metrics
from repro.observability.metrics import REGISTRY
from repro.parallel.methods import HPMethod
from repro.parallel.simmpi import (
    SimComm,
    mpi_allreduce_partials,
    mpi_reduce_partials,
)
from repro.parallel.simmpi.reduce import mpi_allreduce_recursive_doubling

HP = HPMethod(HPParams(4, 2))


@pytest.fixture(autouse=True)
def metered():
    """Run each test with the registry enabled and clean."""
    metrics.enable()
    REGISTRY.clear()
    yield
    metrics.disable()
    REGISTRY.clear()


def _partials(p: int) -> list[tuple]:
    return [HP.local_reduce([float(r + 1), -0.5 * r]) for r in range(p)]


@pytest.mark.parametrize("p", [2, 3, 4, 5, 8, 13, 16])
def test_binomial_reduce_message_count(p):
    comm = SimComm(p)
    mpi_reduce_partials(comm, _partials(p), HP)
    assert comm.stats.messages == p - 1
    assert REGISTRY.value("simmpi.messages", size=p) == p - 1


@pytest.mark.parametrize("p", [2, 3, 4, 5, 8, 13, 16])
def test_allreduce_reduce_bcast_message_count(p):
    comm = SimComm(p)
    mpi_allreduce_partials(comm, _partials(p), HP)
    expected = 2 * (p - 1)
    assert comm.stats.messages == expected
    assert REGISTRY.value("simmpi.messages", size=p) == expected
    assert REGISTRY.value("simmpi.bytes", size=p) == expected * \
        HP.partial_nbytes()


@pytest.mark.parametrize("p", [2, 4, 8, 16])
def test_allreduce_recursive_doubling_message_count_pof2(p):
    comm = SimComm(p)
    mpi_allreduce_recursive_doubling(comm, _partials(p), HP)
    expected = p * int(math.log2(p))
    assert comm.stats.messages == expected
    assert REGISTRY.value("simmpi.messages", size=p) == expected


@pytest.mark.parametrize("p", [3, 5, 6, 13])
def test_allreduce_recursive_doubling_non_pof2(p):
    """Non-power-of-two adds one fold-in and one result send per excess
    rank on top of the power-of-two core."""
    comm = SimComm(p)
    mpi_allreduce_recursive_doubling(comm, _partials(p), HP)
    pof2 = 1 << (p.bit_length() - 1)
    rem = p - pof2
    expected = pof2 * int(math.log2(pof2)) + 2 * rem
    assert comm.stats.messages == expected


@pytest.mark.parametrize("p", [4, 8, 16])
def test_reduce_depth_gauges(p):
    comm = SimComm(p)
    mpi_reduce_partials(comm, _partials(p), HP)
    depth = REGISTRY.value("simmpi.reduce_depth", algo="binomial", size=p)
    assert depth == int(math.log2(p))

    comm2 = SimComm(p)
    mpi_allreduce_recursive_doubling(comm2, _partials(p), HP)
    depth2 = REGISTRY.value(
        "simmpi.reduce_depth", algo="recursive_doubling", size=p
    )
    assert depth2 == int(math.log2(p))


def test_both_allreduce_algorithms_agree_bitwise():
    """Traffic differs; with an exact method the words must not."""
    p = 8
    tree = mpi_allreduce_partials(SimComm(p), _partials(p), HP)
    rd = mpi_allreduce_recursive_doubling(SimComm(p), _partials(p), HP)
    assert set(tree) == set(rd) and len(set(rd)) == 1
