"""Unit tests for the ReductionMethod adapters."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core.params import HPParams
from repro.errors import SummandLimitError
from repro.hallberg.params import HallbergParams
from repro.parallel.methods import (
    DoubleMethod,
    HallbergMethod,
    HPMethod,
    HPSuperaccMethod,
    standard_methods,
)

ALL_ADAPTERS = standard_methods() + [
    HPSuperaccMethod(HPParams(6, 3)),
    DoubleMethod(strict_serial=True),
    HPMethod(HPParams(3, 2), vectorized=False),
    HallbergMethod(HallbergParams(10, 38), vectorized=False),
]


class TestDoubleMethod:
    def test_local_reduce(self, rng):
        xs = rng.uniform(-1.0, 1.0, 100)
        m = DoubleMethod()
        assert m.local_reduce(xs) == pytest.approx(math.fsum(xs), abs=1e-12)

    def test_strict_serial_semantics(self):
        xs = np.array([1e16] + [1.0] * 64)
        assert DoubleMethod(strict_serial=True).local_reduce(xs) == 1e16

    def test_not_exact(self):
        assert not DoubleMethod().is_exact()

    def test_wire_size(self):
        assert DoubleMethod().partial_nbytes() == 8


class TestHPMethod:
    def test_scalar_and_vectorized_paths_agree(self, rng):
        xs = rng.uniform(-1.0, 1.0, 200)
        p = HPParams(3, 2)
        assert HPMethod(p).local_reduce(xs) == HPMethod(
            p, vectorized=False
        ).local_reduce(xs)

    def test_combine_is_exact_addition(self, rng):
        xs = rng.uniform(-1.0, 1.0, 100)
        p = HPParams(3, 2)
        m = HPMethod(p)
        combined = m.combine(m.local_reduce(xs[:50]), m.local_reduce(xs[50:]))
        assert combined == m.local_reduce(xs)

    def test_finalize(self, rng):
        xs = rng.uniform(-1.0, 1.0, 100)
        m = HPMethod(HPParams(3, 2))
        assert m.finalize(m.local_reduce(xs)) == math.fsum(xs)

    def test_identity_is_neutral(self, rng):
        m = HPMethod(HPParams(3, 2))
        part = m.local_reduce(rng.uniform(-1.0, 1.0, 10))
        assert m.combine(m.identity(), part) == part

    def test_wire_size(self):
        assert HPMethod(HPParams(6, 3)).partial_nbytes() == 48


class TestHallbergMethod:
    def test_partial_carries_count(self, rng):
        xs = rng.uniform(-1.0, 1.0, 64)
        m = HallbergMethod(HallbergParams(10, 38))
        digits, count = m.local_reduce(xs)
        assert count == 64 and len(digits) == 10

    def test_combine_tracks_budget(self):
        tight = HallbergParams(2, 61)  # budget 3
        m = HallbergMethod(tight)
        a = m.local_reduce(np.array([0.5, 0.5]))
        b = m.local_reduce(np.array([0.5, 0.5]))
        with pytest.raises(SummandLimitError):
            m.combine(a, b)

    def test_scalar_and_vectorized_paths_agree(self, rng):
        xs = rng.uniform(-1.0, 1.0, 200)
        p = HallbergParams(10, 38)
        assert HallbergMethod(p).local_reduce(xs) == HallbergMethod(
            p, vectorized=False
        ).local_reduce(xs)

    def test_wire_size_includes_count(self):
        assert HallbergMethod(HallbergParams(10, 38)).partial_nbytes() == 88


class TestEmptyBlockIdentity:
    """p > n partitions hand some PEs zero-length slices; every adapter
    must treat one as the neutral element, or empty blocks would shift
    the answer."""

    @pytest.mark.parametrize(
        "method", ALL_ADAPTERS,
        ids=lambda m: f"{m.name}-{type(m).__name__}",
    )
    def test_empty_slice_is_identity(self, method):
        assert method.local_reduce(np.empty(0, dtype=np.float64)) == (
            method.identity()
        )

    @pytest.mark.parametrize(
        "method", ALL_ADAPTERS,
        ids=lambda m: f"{m.name}-{type(m).__name__}",
    )
    def test_identity_is_neutral_in_combine(self, method, rng):
        part = method.local_reduce(rng.uniform(-1.0, 1.0, 50))
        assert method.combine(method.identity(), part) == part
        assert method.combine(part, method.identity()) == part

    @pytest.mark.parametrize(
        "method", ALL_ADAPTERS,
        ids=lambda m: f"{m.name}-{type(m).__name__}",
    )
    def test_finalize_of_identity_is_zero(self, method):
        assert method.finalize(method.identity()) == 0.0


class TestStandardMethods:
    def test_paper_defaults(self):
        methods = standard_methods()
        assert [m.name for m in methods] == ["double", "hp", "hallberg"]
        assert methods[1].params == HPParams(6, 3)
        assert methods[2].params == HallbergParams(10, 38)

    def test_all_agree_on_friendly_data(self, rng):
        xs = rng.uniform(-0.5, 0.5, 500)
        results = {
            m.name: m.finalize(m.local_reduce(xs)) for m in standard_methods()
        }
        assert results["hp"] == results["hallberg"] == math.fsum(xs)
        assert results["double"] == pytest.approx(results["hp"], abs=1e-12)
