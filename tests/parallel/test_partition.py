"""Unit tests for workload partitioning."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.parallel.partition import (
    block_ranges,
    block_slices,
    round_robin_indices,
)


class TestBlockRanges:
    def test_even_split(self):
        assert block_ranges(8, 4) == [(0, 2), (2, 4), (4, 6), (6, 8)]

    def test_remainder_goes_first(self):
        assert block_ranges(10, 3) == [(0, 4), (4, 7), (7, 10)]

    def test_more_pes_than_work(self):
        ranges = block_ranges(2, 5)
        sizes = [hi - lo for lo, hi in ranges]
        assert sizes == [1, 1, 0, 0, 0]

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            block_ranges(10, 0)
        with pytest.raises(ValueError):
            block_ranges(-1, 2)

    @given(st.integers(0, 10**6), st.integers(1, 257))
    def test_partition_properties(self, n, p):
        ranges = block_ranges(n, p)
        assert len(ranges) == p
        assert ranges[0][0] == 0 and ranges[-1][1] == n
        # Contiguous, non-overlapping, balanced within one element.
        for (a, b), (c, d) in zip(ranges, ranges[1:]):
            assert b == c
        sizes = [hi - lo for lo, hi in ranges]
        assert max(sizes) - min(sizes) <= 1


class TestBlockSlices:
    def test_views_cover_data(self, rng):
        data = rng.uniform(size=17)
        parts = block_slices(data, 4)
        assert sum(len(p) for p in parts) == 17
        assert np.array_equal(np.concatenate(parts), data)

    def test_views_not_copies(self, rng):
        data = rng.uniform(size=8)
        parts = block_slices(data, 2)
        assert parts[0].base is data


class TestRoundRobin:
    def test_stride_layout(self):
        idx = round_robin_indices(10, 1, 3)
        assert idx.tolist() == [1, 4, 7]

    def test_threads_cover_everything(self):
        n, t = 100, 7
        all_indices = np.concatenate(
            [round_robin_indices(n, i, t) for i in range(t)]
        )
        assert sorted(all_indices.tolist()) == list(range(n))

    def test_rejects_bad_thread(self):
        with pytest.raises(ValueError):
            round_robin_indices(10, 3, 3)
