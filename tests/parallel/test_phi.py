"""Unit tests for the Xeon Phi offload substrate."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core.params import HPParams
from repro.parallel.methods import DoubleMethod, HPMethod
from repro.parallel.phi import PHI_MAX_THREADS, offload_reduce

HP = HPMethod(HPParams(6, 3))


class TestOffloadReduce:
    def test_exact_value(self, rng):
        data = rng.uniform(-0.5, 0.5, 1000)
        assert offload_reduce(data, HP, 60).value == math.fsum(data)

    @pytest.mark.parametrize("t", [1, 2, 17, 60, 240])
    def test_invariant_across_team_sizes(self, rng, t):
        data = rng.uniform(-0.5, 0.5, 777)
        assert offload_reduce(data, HP, t).partial == offload_reduce(
            data, HP, 1
        ).partial

    def test_thread_limit(self, rng):
        with pytest.raises(ValueError):
            offload_reduce(rng.uniform(size=4), HP, PHI_MAX_THREADS + 1)
        with pytest.raises(ValueError):
            offload_reduce(rng.uniform(size=4), HP, 0)

    def test_transfer_accounting(self, rng):
        data = rng.uniform(-0.5, 0.5, 512)
        r = offload_reduce(data, HP, 8)
        assert r.stats.bytes_to_device == 512 * 8
        assert r.stats.bytes_from_device == HP.partial_nbytes()
        assert r.stats.offload_launches == 1
        assert r.stats.total_bytes == 512 * 8 + 48

    def test_matches_host_reduction(self, rng):
        """Architecture invariance: the device byte-trip returns the same
        words the host substrate computes."""
        from repro.parallel.threads import thread_reduce

        data = rng.uniform(-0.5, 0.5, 900)
        assert offload_reduce(data, HP, 13).partial == thread_reduce(
            data, HP, 13
        ).partial

    def test_double_offload_value_close(self, rng):
        data = rng.uniform(-0.5, 0.5, 500)
        r = offload_reduce(data, DoubleMethod(), 60)
        assert r.value == pytest.approx(math.fsum(data), abs=1e-12)
