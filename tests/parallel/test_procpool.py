"""Tests for the true-multicore process-pool substrate.

The library-level claim under test: a reduction over real worker
*processes* — partials crossing actual process boundaries via pickle,
input crossing via shared memory or memmap — produces HP words
bit-identical to the serial engine, for every PE count, schedule,
chunking, start method, and input permutation.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.params import HPParams
from repro.parallel.drivers import global_sum
from repro.parallel.methods import (
    DoubleMethod,
    HallbergMethod,
    HPMethod,
    HPSuperaccMethod,
)
from repro.parallel.procpool import (
    ProcPool,
    _task_ranges,
    default_start_method,
    procpool_reduce,
)
from repro.parallel.schedule import Schedule

PARAMS = HPParams(6, 3)
N = 5000


@pytest.fixture(scope="module")
def data() -> np.ndarray:
    rng = np.random.default_rng(20160523)
    mantissas = rng.uniform(-1.0, 1.0, N)
    exponents = rng.uniform(-25.0, 25.0, N)
    return mantissas * np.exp2(exponents)


@pytest.fixture(scope="module")
def hp_words(data) -> tuple:
    return HPMethod(PARAMS).local_reduce(data)


def superacc_words(partial) -> tuple:
    return tuple(HPSuperaccMethod(PARAMS).words(partial))


class TestTaskRanges:
    def test_static_covers_in_order(self):
        ranges = _task_ranges(100, Schedule("static"), 4, None)
        assert ranges[0][0] == 0 and ranges[-1][1] == 100
        flat = [i for lo, hi in ranges for i in range(lo, hi)]
        assert sorted(flat) == list(range(100))

    def test_chunk_cap_splits(self):
        ranges = _task_ranges(100, Schedule("static"), 2, 7)
        assert all(hi - lo <= 7 for lo, hi in ranges)
        flat = [i for lo, hi in ranges for i in range(lo, hi)]
        assert sorted(flat) == list(range(100))

    def test_rejects_bad_chunk(self):
        with pytest.raises(ValueError):
            _task_ranges(10, Schedule("static"), 2, 0)


class TestProcsInvariance:
    @pytest.mark.parametrize("pes", [1, 2, 3, 8])
    def test_pe_count_invariance(self, data, hp_words, pes):
        """The headline: bit-identical words at every worker count."""
        r = procpool_reduce(data, HPSuperaccMethod(PARAMS), pes)
        assert superacc_words(r.partial) == hp_words
        assert r.pes == pes and r.source == "shm"

    @pytest.mark.parametrize(
        "schedule",
        [Schedule("static"), Schedule("static", 128),
         Schedule("dynamic", 64), Schedule("guided", 16)],
        ids=str,
    )
    def test_schedule_invariance(self, data, hp_words, schedule):
        r = procpool_reduce(
            data, HPSuperaccMethod(PARAMS), 3, schedule=schedule
        )
        assert superacc_words(r.partial) == hp_words

    def test_chunk_cap_invariance(self, data, hp_words):
        r = procpool_reduce(data, HPSuperaccMethod(PARAMS), 2, chunk=700)
        assert r.tasks >= N // 700
        assert superacc_words(r.partial) == hp_words

    def test_hp_words_partials_cross_processes(self, data, hp_words):
        """The word-matrix adapter ships N-word tuples instead of bins;
        same words either way."""
        r = procpool_reduce(data, HPMethod(PARAMS), 3)
        assert tuple(r.partial) == hp_words

    def test_permutation_invariance(self, data, hp_words):
        shuffled = np.random.default_rng(99).permutation(data)
        r = procpool_reduce(shuffled, HPSuperaccMethod(PARAMS), 3)
        assert superacc_words(r.partial) == hp_words

    def test_spawn_matches_fork(self, data, hp_words):
        """Start methods must not leak into the answer (spawn workers
        re-import everything; fork workers inherit pages)."""
        words = {
            superacc_words(
                procpool_reduce(
                    data, HPSuperaccMethod(PARAMS), 2, start_method=sm
                ).partial
            )
            for sm in ("fork", "spawn")
            if sm == "spawn" or sm == default_start_method()
        }
        assert words == {hp_words}

    def test_small_n_many_workers(self, hp_words):
        """p > n: most workers see empty or tiny slices."""
        xs = np.array([1.5, -0.25, 4096.0])
        serial = HPMethod(PARAMS).local_reduce(xs)
        r = procpool_reduce(xs, HPSuperaccMethod(PARAMS), 8)
        assert superacc_words(r.partial) == serial

    def test_empty_input(self):
        r = procpool_reduce(np.empty(0), HPSuperaccMethod(PARAMS), 4)
        assert r.value == 0.0 and r.tasks == 0

    def test_hallberg_partials_cross_processes(self, data):
        from repro.hallberg.params import HallbergParams

        m = HallbergMethod(HallbergParams(10, 38))
        r = procpool_reduce(data, m, 3)
        digits, count = r.partial
        assert count == N
        assert r.value == m.finalize(m.local_reduce(data))


class TestDoubleDeterminism:
    def test_fixed_chunking_is_deterministic(self, data):
        """Worker arrival order varies; combine order must not — the
        double result is a function of (n, schedule, chunk)."""
        kwargs = dict(schedule=Schedule("dynamic", 64), chunk=256)
        a = procpool_reduce(data, DoubleMethod(), 4, **kwargs).value
        b = procpool_reduce(data, DoubleMethod(), 4, **kwargs).value
        assert a == b


class TestProcPoolLifecycle:
    def test_rejects_bad_pes(self):
        with pytest.raises(ValueError):
            ProcPool(pes=0)

    def test_rejects_2d_data(self):
        with pytest.raises(ValueError):
            ProcPool(data=np.zeros((2, 2)))

    def test_reduce_without_load(self):
        with ProcPool(pes=1) as pool:
            with pytest.raises(RuntimeError):
                pool.reduce(HPSuperaccMethod(PARAMS))

    def test_pool_reuse_across_methods_and_loads(self, data, hp_words):
        """One persistent pool serves repeated reductions — the
        benchmark usage pattern."""
        with ProcPool(data=data, pes=2) as pool:
            pool.warmup()
            r1 = pool.reduce(HPSuperaccMethod(PARAMS))
            r2 = pool.reduce(HPMethod(PARAMS))
            assert superacc_words(r1.partial) == hp_words
            assert tuple(r2.partial) == hp_words
            # load() swaps the shared segment and restarts the workers
            pool.load(data[: N // 2])
            r3 = pool.reduce(HPSuperaccMethod(PARAMS))
            assert superacc_words(r3.partial) == HPMethod(
                PARAMS
            ).local_reduce(data[: N // 2])


class TestOutOfCore:
    def test_memmap_matches_incore(self, tmp_path, data, hp_words):
        path = tmp_path / "summands.npy"
        np.save(path, data)
        with ProcPool(pes=2) as pool:
            r = pool.reduce_memmap(path, HPSuperaccMethod(PARAMS), chunk=700)
        assert r.source == "memmap"
        assert r.tasks >= N // 700
        assert superacc_words(r.partial) == hp_words

    def test_memmap_rejects_2d(self, tmp_path):
        path = tmp_path / "grid.npy"
        np.save(path, np.zeros((4, 4)))
        with ProcPool(pes=1) as pool:
            with pytest.raises(ValueError):
                pool.reduce_memmap(path, HPSuperaccMethod(PARAMS))

    def test_path_source_routes_to_memmap(self, tmp_path, data, hp_words):
        path = tmp_path / "summands.npy"
        np.save(path, data)
        r = procpool_reduce(str(path), HPSuperaccMethod(PARAMS), 2)
        assert r.source == "memmap"
        assert superacc_words(r.partial) == hp_words

    def test_ooc_threshold_spills(self, data, hp_words):
        """Arrays above the threshold stream via a temp .npy instead of
        a shared segment — still bit-identical."""
        r = procpool_reduce(
            data, HPSuperaccMethod(PARAMS), 2, ooc_threshold=1024
        )
        assert r.source == "memmap"
        assert superacc_words(r.partial) == hp_words

    def test_below_threshold_stays_shm(self, data):
        r = procpool_reduce(
            data, HPSuperaccMethod(PARAMS), 2, ooc_threshold=1 << 30
        )
        assert r.source == "shm"


class TestDriverIntegration:
    def test_global_sum_procs_substrate(self, data, hp_words):
        serial = global_sum(data, method="hp-superacc", substrate="serial")
        r = global_sum(data, method="hp-superacc", substrate="procs", pes=4)
        assert r.words == serial.words == hp_words
        assert r.value == serial.value

    def test_global_sum_procs_kwargs(self, data, hp_words):
        r = global_sum(
            data, method="hp-superacc", substrate="procs", pes=2,
            schedule=Schedule("guided", 32), chunk=900,
        )
        assert r.words == hp_words

    def test_substrates_tuple_lists_procs(self):
        from repro.parallel.drivers import SUBSTRATES

        assert "procs" in SUBSTRATES


class TestObservability:
    @pytest.fixture(autouse=True)
    def clean_observability(self):
        from repro.observability import metrics, tracing

        metrics.disable()
        tracing.disable()
        metrics.REGISTRY.clear()
        tracing.TRACER.reset()
        yield
        metrics.disable()
        tracing.disable()
        metrics.REGISTRY.clear()
        tracing.TRACER.reset()

    def test_metrics_and_worker_spans(self, data):
        from repro.observability import metrics, tracing

        metrics.enable()
        tracing.enable()
        r = procpool_reduce(data, HPSuperaccMethod(PARAMS), 2)
        assert r.tasks == 2

        snap = metrics.REGISTRY.snapshot()
        by_name = {}
        for m in snap["metrics"]:
            by_name.setdefault(m["name"], []).append(m)
        assert sum(m["value"] for m in by_name["procpool.reduces"]) == 1
        assert sum(m["value"] for m in by_name["procpool.tasks"]) == 2
        nbytes = HPSuperaccMethod(PARAMS).partial_nbytes()
        assert sum(
            m["value"] for m in by_name["procpool.partial_bytes"]
        ) == 2 * nbytes
        assert sum(
            m["count"] for m in by_name["procpool.task_seconds"]
        ) == 2
        # worker-side engine counters merged into the master registry
        assert "superacc.scatter_bytes" in by_name

        spans = tracing.TRACER.export()["spans"]
        names = [s["name"] for s in spans]
        assert names.count("procpool.worker") == 2
        reduce_span = next(
            s for s in spans if s["name"] == "procpool.reduce"
        )
        workers = [s for s in spans if s["name"] == "procpool.worker"]
        assert all(
            w["parent_id"] == reduce_span["span_id"] for w in workers
        )
        assert all(w["attrs"]["pid"] != 0 for w in workers)

    def test_disabled_observability_ships_no_meta(self, data):
        from repro.observability import metrics, tracing

        r = procpool_reduce(data, HPSuperaccMethod(PARAMS), 2)
        assert r.value is not None
        assert metrics.REGISTRY.snapshot()["metrics"] == []
        assert tracing.TRACER.export()["spans"] == []
