"""Unit/property tests for OpenMP-style scheduling policies."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.params import HPParams
from repro.parallel.methods import DoubleMethod, HPMethod
from repro.parallel.schedule import (
    Schedule,
    assign_blocks,
    chunk_ranges,
    scheduled_partial,
    scheduled_reduce,
)

HP = HPMethod(HPParams(6, 3))

ALL_SCHEDULES = [
    Schedule("static"),
    Schedule("static", 1),
    Schedule("static", 7),
    Schedule("dynamic", 1),
    Schedule("dynamic", 16),
    Schedule("guided", 1),
    Schedule("guided", 4),
]


class TestScheduleValidation:
    def test_rejects_unknown_kind(self):
        with pytest.raises(ValueError):
            Schedule("stealing")

    def test_rejects_bad_chunk(self):
        with pytest.raises(ValueError):
            Schedule("dynamic", 0)

    def test_str(self):
        assert str(Schedule("static")) == "static"
        assert str(Schedule("dynamic", 8)) == "dynamic,8"


class TestAssignBlocks:
    @pytest.mark.parametrize("schedule", ALL_SCHEDULES, ids=str)
    @pytest.mark.parametrize("n,p", [(100, 4), (7, 3), (0, 2), (5, 8)])
    def test_covers_exactly_once(self, schedule, n, p):
        assignment = assign_blocks(n, p, schedule)
        assert len(assignment) == p
        seen = []
        for blocks in assignment:
            for lo, hi in blocks:
                seen.extend(range(lo, hi))
        assert sorted(seen) == list(range(n))

    def test_static_default_is_block_partition(self):
        assignment = assign_blocks(10, 3, Schedule("static"))
        assert assignment == [[(0, 4)], [(4, 7)], [(7, 10)]]

    def test_static_chunked_round_robin(self):
        assignment = assign_blocks(10, 2, Schedule("static", 2))
        assert assignment[0] == [(0, 2), (4, 6), (8, 10)]
        assert assignment[1] == [(2, 4), (6, 8)]

    def test_guided_chunks_shrink(self):
        assignment = assign_blocks(1000, 4, Schedule("guided", 1))
        sizes = [hi - lo for blocks in assignment for lo, hi in blocks]
        # First claim is remaining/p = 250; later claims shrink.
        assert max(sizes) == 250
        assert min(sizes) >= 1

    def test_dynamic_balances_load(self):
        assignment = assign_blocks(1000, 4, Schedule("dynamic", 10))
        loads = [sum(hi - lo for lo, hi in b) for b in assignment]
        assert max(loads) - min(loads) <= 10

    def test_deterministic(self):
        a = assign_blocks(999, 5, Schedule("dynamic", 7))
        b = assign_blocks(999, 5, Schedule("dynamic", 7))
        assert a == b


class TestChunkRanges:
    @pytest.mark.parametrize("schedule", ALL_SCHEDULES, ids=str)
    @pytest.mark.parametrize("n,p", [(100, 4), (7, 3), (0, 2), (5, 8)])
    def test_covers_exactly_once(self, schedule, n, p):
        seen = []
        for lo, hi in chunk_ranges(n, schedule, p):
            assert lo <= hi
            seen.extend(range(lo, hi))
        assert sorted(seen) == list(range(n))

    def test_rejects_bad_p(self):
        with pytest.raises(ValueError):
            chunk_ranges(10, Schedule("static"), 0)


class TestScheduledPartial:
    """scheduled_reduce = finalize(scheduled_partial): the partial is
    the combined un-finalized result a substrate driver can reuse
    without a second pass over the data."""

    @pytest.mark.parametrize("schedule", ALL_SCHEDULES, ids=str)
    def test_finalize_of_partial_is_reduce(self, rng, schedule):
        data = rng.uniform(-0.5, 0.5, 2000)
        partial = scheduled_partial(data, HP, 4, schedule)
        assert HP.finalize(partial) == scheduled_reduce(data, HP, 4, schedule)

    def test_hp_partial_equals_serial_words(self, rng):
        data = rng.uniform(-0.5, 0.5, 2000)
        partial = scheduled_partial(data, HP, 4, Schedule("dynamic", 64))
        assert partial == HP.local_reduce(data)

    def test_empty_data_is_identity(self):
        assert scheduled_partial(
            np.empty(0), HP, 4, Schedule("static")
        ) == HP.identity()


class TestScheduledReduce:
    @pytest.mark.parametrize("schedule", ALL_SCHEDULES, ids=str)
    def test_hp_schedule_independent(self, rng, schedule):
        """The headline property: the HP result is identical under every
        schedule, i.e. the schedule is no longer part of the answer."""
        data = rng.uniform(-0.5, 0.5, 3000)
        reference = scheduled_reduce(data, HP, 4, Schedule("static"))
        assert scheduled_reduce(data, HP, 4, schedule) == reference
        assert reference == math.fsum(data)

    def test_hp_thread_count_independent(self, rng):
        data = rng.uniform(-0.5, 0.5, 1000)
        values = {
            scheduled_reduce(data, HP, p, Schedule("dynamic", 3))
            for p in (1, 2, 5, 16)
        }
        assert len(values) == 1

    def test_double_schedule_dependent(self, rng):
        """The contrast: double results vary across schedules."""
        data = np.concatenate(
            [rng.uniform(0, 1e-3, 4096), -rng.uniform(0, 1e-3, 4096)]
        )
        method = DoubleMethod(strict_serial=True)
        values = {
            scheduled_reduce(data, method, 4, s) for s in ALL_SCHEDULES
        }
        assert len(values) > 1

    @given(
        st.sampled_from(ALL_SCHEDULES),
        st.integers(min_value=1, max_value=12),
        st.integers(min_value=0, max_value=300),
    )
    @settings(max_examples=40)
    def test_property_schedule_invariance(self, schedule, p, n):
        rng = np.random.default_rng(n)
        data = rng.uniform(-1.0, 1.0, n)
        assert scheduled_reduce(data, HP, p, schedule) == scheduled_reduce(
            data, HP, 1, Schedule("static")
        )
