"""Unit tests for the simulated MPI substrate."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core.params import HPParams
from repro.hallberg.params import HallbergParams
from repro.parallel.methods import DoubleMethod, HallbergMethod, HPMethod
from repro.parallel.simmpi import (
    DoubleType,
    HallbergPartialType,
    HPWordsType,
    SimComm,
    datatype_for_method,
    mpi_allreduce_partials,
    mpi_reduce,
    mpi_reduce_partials,
)

HP = HPMethod(HPParams(6, 3))


class TestSimComm:
    def test_fifo_per_channel(self):
        comm = SimComm(3)
        comm.send(0, 1, b"first")
        comm.send(0, 1, b"second")
        assert comm.recv(1, 0) == b"first"
        assert comm.recv(1, 0) == b"second"

    def test_recv_without_message_deadlocks(self):
        comm = SimComm(2)
        with pytest.raises(RuntimeError, match="deadlock"):
            comm.recv(0, 1)

    def test_rejects_self_send(self):
        comm = SimComm(2)
        with pytest.raises(ValueError):
            comm.send(1, 1, b"loop")

    def test_rank_bounds(self):
        comm = SimComm(2)
        with pytest.raises(ValueError):
            comm.send(0, 2, b"x")

    def test_only_bytes_travel(self):
        comm = SimComm(2)
        with pytest.raises(TypeError):
            comm.send(0, 1, (1, 2, 3))  # type: ignore[arg-type]

    def test_traffic_accounting(self):
        comm = SimComm(2)
        comm.send(0, 1, b"12345")
        assert comm.stats.messages == 1 and comm.stats.bytes == 5
        assert comm.pending() == 1
        comm.recv(1, 0)
        assert comm.pending() == 0


class TestDatatypes:
    def test_double_roundtrip(self):
        dt = DoubleType()
        assert dt.unpack(dt.pack(3.14159)) == 3.14159

    def test_hp_words_roundtrip(self):
        dt = HPWordsType(HPParams(3, 2))
        words = (2**64 - 1, 5, 1 << 63)
        assert dt.unpack(dt.pack(words)) == words
        assert dt.nbytes == 24

    def test_hallberg_partial_roundtrip(self):
        dt = HallbergPartialType(HallbergParams(10, 38))
        partial = (tuple(range(-5, 5)), 42)
        assert dt.unpack(dt.pack(partial)) == partial
        assert dt.nbytes == 88

    def test_size_check(self):
        dt = DoubleType()
        with pytest.raises(ValueError):
            dt.unpack(b"123")

    def test_datatype_dispatch(self):
        assert isinstance(datatype_for_method(HP), HPWordsType)
        assert isinstance(datatype_for_method(DoubleMethod()), DoubleType)
        with pytest.raises(TypeError):
            datatype_for_method(object())


class TestReduce:
    @pytest.mark.parametrize("size", [1, 2, 3, 5, 8, 16, 33])
    def test_invariant_across_communicator_sizes(self, rng, size):
        data = rng.uniform(-0.5, 0.5, 999)
        assert mpi_reduce(data, HP, size).partial == mpi_reduce(
            data, HP, 1
        ).partial

    def test_value_exact(self, rng):
        data = rng.uniform(-0.5, 0.5, 512)
        assert mpi_reduce(data, HP, 8).value == math.fsum(data)

    def test_binomial_message_count(self, rng):
        data = rng.uniform(-0.5, 0.5, 256)
        result = mpi_reduce(data, HP, 16)
        assert result.traffic.messages == 15
        assert result.traffic.rounds == 4

    def test_nonroot_reduction(self, rng):
        data = rng.uniform(-0.5, 0.5, 100)
        comm = SimComm(5)
        from repro.parallel.partition import block_ranges

        partials = [
            HP.local_reduce(data[lo:hi]) for lo, hi in block_ranges(100, 5)
        ]
        at3 = mpi_reduce_partials(comm, partials, HP, root=3)
        assert at3 == mpi_reduce(data, HP, 5).partial

    def test_hallberg_budget_travels(self):
        tight = HallbergParams(2, 61)  # budget 3
        method = HallbergMethod(tight)
        data = np.full(4, 0.25)
        from repro.errors import SummandLimitError

        with pytest.raises(SummandLimitError):
            mpi_reduce(data, method, 2)

    def test_partial_count_mismatch(self):
        comm = SimComm(3)
        with pytest.raises(ValueError):
            mpi_reduce_partials(comm, [HP.identity()] * 2, HP)


class TestAllreduce:
    def test_every_rank_gets_identical_bytes(self, rng):
        data = rng.uniform(-0.5, 0.5, 128)
        comm = SimComm(8)
        from repro.parallel.partition import block_ranges

        partials = [
            HP.local_reduce(data[lo:hi]) for lo, hi in block_ranges(128, 8)
        ]
        results = mpi_allreduce_partials(comm, partials, HP)
        assert len(results) == 8
        assert all(r == results[0] for r in results)
        assert HP.finalize(results[0]) == math.fsum(data)

    def test_single_rank(self):
        comm = SimComm(1)
        out = mpi_allreduce_partials(comm, [HP.identity()], HP)
        assert out == [HP.identity()]


class TestRecursiveDoubling:
    @pytest.mark.parametrize("size", [1, 2, 3, 4, 5, 8, 11, 16, 21])
    def test_matches_tree_allreduce(self, rng, size):
        from repro.parallel.simmpi import mpi_allreduce_recursive_doubling

        data = rng.uniform(-0.5, 0.5, 300)
        from repro.parallel.partition import block_ranges

        partials = [
            HP.local_reduce(data[lo:hi])
            for lo, hi in block_ranges(300, size)
        ]
        tree = mpi_allreduce_partials(SimComm(size), list(partials), HP)
        doubling = mpi_allreduce_recursive_doubling(
            SimComm(size), list(partials), HP
        )
        assert len(doubling) == size
        assert all(r == tree[0] for r in doubling)

    def test_hallberg_counts_travel(self, rng):
        from repro.hallberg.params import HallbergParams
        from repro.parallel.methods import HallbergMethod
        from repro.parallel.partition import block_ranges
        from repro.parallel.simmpi import mpi_allreduce_recursive_doubling

        method = HallbergMethod(HallbergParams(10, 38))
        data = rng.uniform(-0.5, 0.5, 120)
        partials = [
            method.local_reduce(data[lo:hi])
            for lo, hi in block_ranges(120, 6)
        ]
        out = mpi_allreduce_recursive_doubling(SimComm(6), partials, method)
        assert all(part[1] == 120 for part in out)  # full count everywhere

    def test_quiescent(self, rng):
        from repro.parallel.partition import block_ranges
        from repro.parallel.simmpi import mpi_allreduce_recursive_doubling

        comm = SimComm(7)
        data = rng.uniform(-0.5, 0.5, 70)
        partials = [
            HP.local_reduce(data[lo:hi]) for lo, hi in block_ranges(70, 7)
        ]
        mpi_allreduce_recursive_doubling(comm, partials, HP)
        assert comm.pending() == 0

    def test_partial_count_check(self):
        from repro.parallel.simmpi import mpi_allreduce_recursive_doubling

        with pytest.raises(ValueError):
            mpi_allreduce_recursive_doubling(
                SimComm(3), [HP.identity()] * 2, HP
            )
