"""hp-small across the substrates: flat chunk partials, any schedule.

The small engine's partials are one int64 chunk array — no side carry —
so the combine is plain elementwise addition.  These tests pin the same
architecture-invariance contract as the superacc suite: words must be
bit-identical to the hp adapter on every substrate and PE count, and the
wire codec must round-trip chunk partials exactly.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.params import HPParams
from repro.parallel.drivers import global_sum, make_method
from repro.parallel.methods import HPMethod, HPSmallaccMethod
from repro.parallel.simmpi import datatype_for_method
from repro.parallel.simmpi.datatypes import SmallaccChunksType, SuperaccBinsType
from repro.util.rng import default_rng

PARAMS = HPParams(6, 3)
N = 700


@pytest.fixture(scope="module")
def data() -> np.ndarray:
    rng = default_rng(424242)
    exps = rng.uniform(-40.0, 40.0, N)
    return rng.choice([-1.0, 1.0], N) * np.exp2(exps)


@pytest.fixture(scope="module")
def hp_words(data) -> tuple:
    return global_sum(data, method="hp", params=PARAMS).words


class TestDriverIntegration:
    def test_make_method_resolves(self):
        m = make_method("hp-small")
        assert isinstance(m, HPSmallaccMethod)
        assert m.params == HPParams(6, 3)

    def test_make_method_rejects_wrong_params(self):
        from repro.hallberg.params import HallbergParams

        with pytest.raises(TypeError):
            make_method("hp-small", HallbergParams(10, 38))

    @pytest.mark.parametrize("substrate,pes", [
        ("serial", 1),
        ("threads", 4),
        ("threads", 7),
        ("mpi", 8),
        ("mpi-scatter", 5),
        ("phi", 6),
    ])
    def test_words_match_hp_everywhere(self, data, hp_words, substrate, pes):
        r = global_sum(
            data, method="hp-small", substrate=substrate, pes=pes,
            params=PARAMS,
        )
        assert r.words == hp_words
        assert r.value == global_sum(data, method="hp", params=PARAMS).value

    def test_gpu_has_no_small_kernel(self, data):
        with pytest.raises(ValueError, match="no hp-small kernel"):
            global_sum(
                data, method="hp-small", substrate="gpu", pes=8,
                params=PARAMS,
            )

    def test_pe_count_invariance(self, data):
        results = {
            global_sum(
                data, method="hp-small", substrate="threads", pes=p,
                params=PARAMS,
            ).words
            for p in (1, 2, 3, 5, 8)
        }
        assert len(results) == 1

    def test_bitwise_equal_across_methods(self, data):
        a = global_sum(data, method="hp-small", params=PARAMS)
        b = global_sum(data, method="hp-superacc", substrate="threads",
                       pes=4, params=PARAMS)
        assert a.bitwise_equal(b)


class TestMethodAlgebra:
    def test_identity_is_neutral(self, data):
        m = HPSmallaccMethod(PARAMS)
        partial = m.local_reduce(data)
        assert m.combine(partial, m.identity()) == partial
        assert m.combine(m.identity(), partial) == partial

    def test_identity_merge_is_idempotent(self):
        m = HPSmallaccMethod(PARAMS)
        assert m.combine(m.identity(), m.identity()) == m.identity()

    def test_combine_matches_concatenation(self, data):
        m = HPSmallaccMethod(PARAMS)
        a, b = np.array_split(data, 2)
        combined = m.combine(m.local_reduce(a), m.local_reduce(b))
        assert m.words(combined) == m.words(m.local_reduce(data))

    def test_empty_block_is_identity(self):
        m = HPSmallaccMethod(PARAMS)
        assert m.local_reduce(np.array([], dtype=np.float64)) == m.identity()

    def test_finalize_matches_hp(self, data):
        m = HPSmallaccMethod(PARAMS)
        hp = HPMethod(PARAMS)
        assert m.finalize(m.local_reduce(data)) == hp.finalize(
            hp.local_reduce(data)
        )

    def test_partials_are_canonical(self, data):
        """local_reduce ships the canonical (fully propagated) chunk
        form — the transport contract merge_chunks assumes."""
        from repro.core.smallacc import canonical_chunks, chunk_count
        from repro.core.superacc import fold_bins

        m = HPSmallaccMethod(PARAMS)
        partial = m.local_reduce(data)
        assert partial == canonical_chunks(
            fold_bins(partial), chunk_count(PARAMS)
        )

    def test_is_exact(self):
        assert HPSmallaccMethod(PARAMS).is_exact()


class TestWireCodec:
    def test_datatype_dispatch(self):
        dt = datatype_for_method(HPSmallaccMethod(PARAMS))
        assert isinstance(dt, SmallaccChunksType)
        # hp-small must dispatch before the superacc base class and must
        # not shadow hp's word codec.
        from repro.parallel.methods import HPSuperaccMethod
        from repro.parallel.simmpi import HPWordsType

        assert not isinstance(
            datatype_for_method(HPSuperaccMethod(PARAMS)), SmallaccChunksType
        )
        assert isinstance(datatype_for_method(HPMethod(PARAMS)), HPWordsType)

    def test_nbytes_matches_method(self):
        m = HPSmallaccMethod(PARAMS)
        dt = SmallaccChunksType(PARAMS)
        assert dt.nbytes == m.partial_nbytes()

    def test_roundtrip_negative_chunks(self, data):
        m = HPSmallaccMethod(PARAMS)
        dt = SmallaccChunksType(PARAMS)
        partial = m.local_reduce(-np.abs(data))
        assert any(v != 0 for v in partial)
        assert dt.unpack(dt.pack(partial)) == partial

    def test_shares_superacc_wire_format(self):
        """Same 16-byte signed slots as the bins codec: a chunk partial
        and a bin partial of the same params are interchangeable on the
        wire even though the dispatch types differ."""
        dt_small = SmallaccChunksType(PARAMS)
        dt_bins = SuperaccBinsType(PARAMS)
        assert dt_small.nbytes == dt_bins.nbytes
        partial = tuple(range(-3, dt_small.nbytes // 16 - 3))
        assert dt_bins.unpack(dt_small.pack(partial)) == partial

    def test_cancellation_over_the_wire(self):
        rng = default_rng(7)
        xs = rng.uniform(-1.0, 1.0, 256)
        both = np.concatenate([xs, -xs])
        r = global_sum(both, method="hp-small", substrate="mpi", pes=8,
                       params=PARAMS)
        assert r.value == 0.0
        assert r.words == (0,) * PARAMS.n
