"""hp-superacc across every substrate: same words as hp, any schedule.

The binned method ships different partials (signed bins instead of HP
words) through the same reduction skeletons; these tests pin the
architecture-invariance contract — the folded words must be
bit-identical to the word-carrying hp adapter on every substrate, at
every PE count, and the wire codec must round-trip partials exactly.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.params import HPParams
from repro.parallel.drivers import global_sum, make_method
from repro.parallel.methods import HPMethod, HPSuperaccMethod
from repro.parallel.simmpi import SuperaccBinsType, datatype_for_method
from repro.util.rng import default_rng

PARAMS = HPParams(6, 3)
N = 700


@pytest.fixture(scope="module")
def data() -> np.ndarray:
    rng = default_rng(424242)
    exps = rng.uniform(-40.0, 40.0, N)
    return rng.choice([-1.0, 1.0], N) * np.exp2(exps)


@pytest.fixture(scope="module")
def hp_words(data) -> tuple:
    return global_sum(data, method="hp", params=PARAMS).words


class TestDriverIntegration:
    def test_make_method_resolves(self):
        m = make_method("hp-superacc")
        assert isinstance(m, HPSuperaccMethod)
        assert m.params == HPParams(6, 3)

    def test_make_method_rejects_wrong_params(self):
        from repro.hallberg.params import HallbergParams

        with pytest.raises(TypeError):
            make_method("hp-superacc", HallbergParams(10, 38))

    @pytest.mark.parametrize("substrate,pes", [
        ("serial", 1),
        ("threads", 4),
        ("threads", 7),
        ("mpi", 8),
        ("mpi-scatter", 5),
        ("phi", 6),
    ])
    def test_words_match_hp_everywhere(self, data, hp_words, substrate, pes):
        r = global_sum(
            data, method="hp-superacc", substrate=substrate, pes=pes,
            params=PARAMS,
        )
        assert r.words == hp_words
        assert r.value == global_sum(data, method="hp", params=PARAMS).value

    def test_gpu_block_path(self, data, hp_words):
        r = global_sum(
            data, method="hp-superacc", substrate="gpu", pes=8,
            params=PARAMS,
        )
        assert r.words == hp_words

    def test_pe_count_invariance(self, data):
        results = {
            global_sum(
                data, method="hp-superacc", substrate="threads", pes=p,
                params=PARAMS,
            ).words
            for p in (1, 2, 3, 5, 8)
        }
        assert len(results) == 1

    def test_bitwise_equal_across_methods(self, data):
        a = global_sum(data, method="hp-superacc", params=PARAMS)
        b = global_sum(data, method="hp", substrate="threads", pes=4,
                       params=PARAMS)
        assert a.bitwise_equal(b)


class TestMethodAlgebra:
    def test_identity_is_neutral(self, data):
        m = HPSuperaccMethod(PARAMS)
        partial = m.local_reduce(data)
        assert m.combine(partial, m.identity()) == partial
        assert m.combine(m.identity(), partial) == partial

    def test_combine_matches_concatenation(self, data):
        m = HPSuperaccMethod(PARAMS)
        a, b = np.array_split(data, 2)
        combined = m.combine(m.local_reduce(a), m.local_reduce(b))
        assert m.words(combined) == m.words(m.local_reduce(data))

    def test_finalize_matches_hp(self, data):
        m = HPSuperaccMethod(PARAMS)
        hp = HPMethod(PARAMS)
        assert m.finalize(m.local_reduce(data)) == hp.finalize(
            hp.local_reduce(data)
        )

    def test_is_exact(self):
        assert HPSuperaccMethod(PARAMS).is_exact()


class TestWireCodec:
    def test_datatype_dispatch(self):
        dt = datatype_for_method(HPSuperaccMethod(PARAMS))
        assert isinstance(dt, SuperaccBinsType)
        # dispatch must not confuse the subclassless HPMethod codec
        from repro.parallel.simmpi import HPWordsType

        assert isinstance(datatype_for_method(HPMethod(PARAMS)), HPWordsType)

    def test_nbytes_matches_method(self):
        m = HPSuperaccMethod(PARAMS)
        dt = SuperaccBinsType(PARAMS)
        assert dt.nbytes == m.partial_nbytes()

    def test_roundtrip_negative_bins(self, data):
        m = HPSuperaccMethod(PARAMS)
        dt = SuperaccBinsType(PARAMS)
        partial = m.local_reduce(-np.abs(data))
        assert any(v < 0 for v in partial)
        assert dt.unpack(dt.pack(partial)) == partial

    def test_pack_rejects_wrong_arity(self):
        dt = SuperaccBinsType(PARAMS)
        with pytest.raises(ValueError):
            dt.pack((1, 2, 3))

    def test_unpack_rejects_wrong_size(self):
        dt = SuperaccBinsType(PARAMS)
        with pytest.raises(ValueError):
            dt.unpack(b"\x00" * (dt.nbytes - 1))

    def test_cancellation_over_the_wire(self):
        """A zero-sum dataset reduced over MPI must land on exact zero."""
        rng = default_rng(7)
        xs = rng.uniform(-1.0, 1.0, 256)
        both = np.concatenate([xs, -xs])
        r = global_sum(both, method="hp-superacc", substrate="mpi", pes=8,
                       params=PARAMS)
        assert r.value == 0.0
        assert r.words == (0,) * PARAMS.n
