"""Unit tests for the OpenMP-analog thread substrate."""

from __future__ import annotations

import math

import pytest

from repro.core.params import HPParams
from repro.parallel.methods import DoubleMethod, HPMethod
from repro.parallel.threads import thread_reduce

HP = HPMethod(HPParams(6, 3))


class TestThreadReduce:
    def test_single_thread_matches_fsum(self, rng):
        data = rng.uniform(-0.5, 0.5, 1000)
        assert thread_reduce(data, HP, 1).value == math.fsum(data)

    @pytest.mark.parametrize("p", [1, 2, 3, 4, 8, 17, 64])
    def test_hp_invariant_across_team_sizes(self, rng, p):
        data = rng.uniform(-0.5, 0.5, 1000)
        assert thread_reduce(data, HP, p).partial == thread_reduce(
            data, HP, 1
        ).partial

    def test_team_larger_than_data(self, rng):
        data = rng.uniform(-0.5, 0.5, 5)
        r = thread_reduce(data, HP, 16)
        assert r.value == math.fsum(data)
        assert sum(r.block_sizes) == 5

    def test_empty_data(self):
        import numpy as np

        r = thread_reduce(np.array([], dtype=np.float64), HP, 4)
        assert r.value == 0.0

    def test_native_engine_bit_identical(self, rng):
        data = rng.uniform(-0.5, 0.5, 2000)
        sim = thread_reduce(data, HP, 8, engine="simulated")
        nat = thread_reduce(data, HP, 8, engine="native")
        assert sim.partial == nat.partial
        assert nat.engine == "native"

    def test_unknown_engine(self, rng):
        with pytest.raises(ValueError):
            thread_reduce(rng.uniform(size=4), HP, 2, engine="cuda")

    def test_double_depends_on_partition(self, rng):
        """The non-reproducibility being studied: the double result is a
        function of the team size."""
        data = rng.uniform(-0.5, 0.5, 100_000)
        method = DoubleMethod(strict_serial=False)
        values = {thread_reduce(data, method, p).value for p in (1, 3, 7, 31)}
        assert len(values) > 1

    def test_block_sizes_recorded(self, rng):
        r = thread_reduce(rng.uniform(size=10), HP, 3)
        assert r.block_sizes == [4, 3, 3]
