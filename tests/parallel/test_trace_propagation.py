"""Cross-boundary trace propagation: one request = one trace_id across
threads, worker processes, and simmpi message headers — with worker
spans and journal events adopted verbatim (no post-hoc re-homing)."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.observability import journal, metrics, tracing
from repro.observability.journal import JOURNAL
from repro.observability.tracing import ID_BLOCK, TRACER, TraceContext
from repro.parallel.drivers import global_sum


@pytest.fixture(autouse=True)
def observability_on():
    metrics.enable()
    tracing.enable()
    journal.enable()
    yield
    metrics.disable()
    tracing.disable()
    journal.disable()
    metrics.REGISTRY.clear()
    TRACER.reset()
    JOURNAL.reset()


def _xs(n=512):
    rng = np.random.default_rng(7)
    return rng.standard_normal(n)


class TestRequestEvents:
    def test_every_request_brackets_with_start_finish(self):
        xs = _xs()
        result = global_sum(xs, method="hp", substrate="serial")
        assert result.value == pytest.approx(math.fsum(xs))
        starts = JOURNAL.events(event="request.start")
        finishes = JOURNAL.events(event="request.finish")
        assert len(starts) == 1
        assert len(finishes) == 1
        assert finishes[0]["ok"] is True
        assert finishes[0]["trace_id"] == starts[0]["trace_id"]
        assert isinstance(finishes[0]["duration_s"], float)

    def test_failed_request_journals_the_error(self):
        with pytest.raises(ValueError):
            global_sum(_xs(), substrate="no-such-substrate")
        finishes = JOURNAL.events(event="request.finish")
        assert len(finishes) == 1
        assert finishes[0]["ok"] is False
        assert "ValueError" in finishes[0]["error"]

    def test_caller_context_is_reused_when_nested(self):
        ctx = TraceContext.new()
        with tracing.activate_context(ctx):
            global_sum(_xs(), method="hp", substrate="serial")
        start = JOURNAL.events(event="request.start")[0]
        assert start["trace_id"] == ctx.trace_id


class TestThreadsPropagation:
    def test_single_trace_across_worker_threads(self):
        global_sum(_xs(4096), method="hp", substrate="threads", pes=4)
        root = TRACER.spans("global_sum")[0]
        trace_id = root.attrs["trace"]
        start = JOURNAL.events(event="request.start")[0]
        assert start["trace_id"] == trace_id
        # Thread spans hang somewhere under the request root.
        by_id = {s.span_id: s for s in TRACER.spans()}

        def has_root(span):
            while span.parent_id is not None:
                span = by_id[span.parent_id]
            return span is root

        workers = [s for s in TRACER.spans() if s.name.startswith("thread")]
        assert all(has_root(s) for s in workers)


class TestProcsPropagation:
    def test_one_trace_spans_master_and_workers(self):
        xs = _xs(4096)
        result = global_sum(
            xs, method="hp", substrate="procs", pes=2, chunk=1024
        )
        assert result.value == pytest.approx(math.fsum(xs))

        start = JOURNAL.events(event="request.start")[0]
        trace_id = start["trace_id"]

        # Worker journal events were absorbed verbatim: same trace_id,
        # origin pids differ from the master's.
        import os

        tasks = JOURNAL.events(event="worker.task", trace_id=trace_id)
        assert tasks, "worker journal events were not shipped back"
        assert all(t["pid"] != os.getpid() for t in tasks)

        # The merge event closes the story on the master side.
        merges = JOURNAL.events(event="merge", trace_id=trace_id)
        assert len(merges) == 1

        # Worker spans were adopted with their block-allocated ids and
        # link under the master's reduce span — one connected trace.
        worker_spans = TRACER.spans("procpool.worker")
        assert worker_spans
        reduce_ids = {s.span_id for s in TRACER.spans("procpool.reduce")}
        for sp in worker_spans:
            assert sp.span_id >= ID_BLOCK
            assert sp.parent_id in reduce_ids
            assert sp.attrs.get("trace") == trace_id

    def test_worker_ids_never_collide(self):
        global_sum(_xs(4096), method="hp", substrate="procs", pes=2,
                   chunk=512)
        ids = [s.span_id for s in TRACER.spans()]
        assert len(ids) == len(set(ids))


class TestSimmpiPropagation:
    def test_messages_carry_the_context_in_band(self):
        from repro.parallel.simmpi import SimComm

        ctx = TraceContext.new()
        comm = SimComm(2)
        with tracing.activate_context(ctx):
            comm.send(0, 1, b"payload-bytes")
            body = comm.recv(1, 0)
        # The peer sees exactly the bytes that were sent...
        assert body == b"payload-bytes"
        # ...and both hops were journaled under the request's trace.
        sends = JOURNAL.events(event="message.send", trace_id=ctx.trace_id)
        recvs = JOURNAL.events(event="message.recv", trace_id=ctx.trace_id)
        assert len(sends) == 1 and len(recvs) == 1
        assert sends[0]["nbytes"] == recvs[0]["nbytes"] == 13

    def test_traffic_stats_charge_payload_not_header(self):
        from repro.parallel.simmpi import mpi_reduce
        from repro.core.params import HPParams
        from repro.parallel.methods import HPMethod

        xs = _xs(256)
        method = HPMethod(HPParams(6, 3))
        bare = mpi_reduce(xs, method, 8)
        with tracing.activate_context(TraceContext.new()):
            framed = mpi_reduce(xs, method, 8)
        assert framed.value == bare.value == pytest.approx(math.fsum(xs))
        # Header framing must be invisible to the performance model.
        assert framed.traffic.bytes == bare.traffic.bytes
        assert framed.traffic.messages == bare.traffic.messages

    def test_header_framing_is_lossless_for_byte_payloads(self):
        ctx = TraceContext("abcdef0123456789", span_id=5)
        for body in (b"", b"\x00" * 8, b"RTC1-lookalike-body"):
            back, rest = TraceContext.from_header(ctx.to_header() + body)
            assert rest == body
            assert back.trace_id == ctx.trace_id
            assert back.span_id == 5
