"""Partial-transport correctness: what actually crosses a process
boundary.

The procs substrate ships partials by pickle and input by shared
memory; the simulated-MPI substrate ships partials as packed bytes.
These tests pin that every transport round-trip is value-preserving —
a partial that crosses a boundary combines to the same words as one
that never left the process.
"""

from __future__ import annotations

import pickle
from multiprocessing import shared_memory

import numpy as np
import pytest

from repro.core.params import HPParams
from repro.hallberg.params import HallbergParams
from repro.parallel.methods import (
    DoubleMethod,
    HallbergMethod,
    HPMethod,
    HPSuperaccMethod,
)
from repro.parallel.simmpi.datatypes import (
    SuperaccBinsType,
    datatype_for_method,
)

PARAMS = HPParams(6, 3)

METHODS = [
    DoubleMethod(),
    HPMethod(PARAMS),
    HPSuperaccMethod(PARAMS),
    HallbergMethod(HallbergParams(10, 38)),
]


@pytest.fixture(scope="module")
def data() -> np.ndarray:
    rng = np.random.default_rng(4242)
    return rng.uniform(-1.0, 1.0, 2000) * np.exp2(
        rng.uniform(-20.0, 20.0, 2000)
    )


class TestPickleRoundTrip:
    """multiprocessing moves partials (and the method objects) by
    pickle; both must survive unchanged."""

    @pytest.mark.parametrize("method", METHODS, ids=lambda m: m.name)
    def test_partial_survives_pickle(self, method, data):
        part = method.local_reduce(data)
        assert pickle.loads(pickle.dumps(part)) == part

    @pytest.mark.parametrize("method", METHODS, ids=lambda m: m.name)
    def test_combine_of_pickled_partials(self, method, data):
        a = pickle.loads(pickle.dumps(method.local_reduce(data[:1000])))
        b = pickle.loads(pickle.dumps(method.local_reduce(data[1000:])))
        direct = method.combine(
            method.local_reduce(data[:1000]), method.local_reduce(data[1000:])
        )
        assert method.combine(a, b) == direct

    @pytest.mark.parametrize("method", METHODS, ids=lambda m: m.name)
    def test_method_object_survives_pickle(self, method, data):
        clone = pickle.loads(pickle.dumps(method))
        assert clone.local_reduce(data) == method.local_reduce(data)


class TestWireRoundTrip:
    """The byte codecs must agree with the adapters on size and value —
    the wire is an alternative transport for the same partials."""

    @pytest.mark.parametrize("method", METHODS, ids=lambda m: m.name)
    def test_nbytes_consistency(self, method):
        assert datatype_for_method(method).nbytes == method.partial_nbytes()

    @pytest.mark.parametrize("method", METHODS, ids=lambda m: m.name)
    def test_pack_unpack_identity(self, method, data):
        dt = datatype_for_method(method)
        part = method.local_reduce(data)
        buf = dt.pack(part)
        assert len(buf) == dt.nbytes
        assert dt.unpack(buf) == part

    def test_superacc_bins_survive_negative_values(self):
        """Bin partials are signed; negative-heavy data must round-trip."""
        m = HPSuperaccMethod(PARAMS)
        xs = -np.abs(np.random.default_rng(7).uniform(0.5, 1.0, 500))
        part = m.local_reduce(xs)
        assert any(b < 0 for b in part)
        dt = SuperaccBinsType(PARAMS)
        assert dt.unpack(dt.pack(part)) == part

    def test_superacc_bins_reject_wrong_arity(self):
        dt = SuperaccBinsType(PARAMS)
        with pytest.raises(ValueError):
            dt.pack((1, 2, 3))


class TestSharedMemoryRoundTrip:
    """A packed partial written into a shared_memory segment and read
    back must decode to the identical partial — the byte path a
    shared-memory result mailbox would take."""

    @pytest.mark.parametrize("method", METHODS, ids=lambda m: m.name)
    def test_partial_bytes_through_shm(self, method, data):
        dt = datatype_for_method(method)
        part = method.local_reduce(data)
        buf = dt.pack(part)
        seg = shared_memory.SharedMemory(create=True, size=len(buf))
        try:
            seg.buf[: len(buf)] = buf
            echoed = dt.unpack(bytes(seg.buf[: len(buf)]))
        finally:
            seg.close()
            seg.unlink()
        assert echoed == part
        assert method.finalize(echoed) == method.finalize(part)

    def test_summands_through_shm_are_bitwise(self, data):
        """The input-side transport: a float64 view over a shared
        segment reduces to the same words as the original array."""
        seg = shared_memory.SharedMemory(create=True, size=data.nbytes)
        try:
            view = np.ndarray(data.shape, dtype=np.float64, buffer=seg.buf)
            view[:] = data
            m = HPSuperaccMethod(PARAMS)
            assert m.local_reduce(view) == m.local_reduce(data)
        finally:
            del view
            seg.close()
            seg.unlink()
