"""Tests for the calibration audit."""

from __future__ import annotations

from repro.perfmodel.calibration import (
    Anchor,
    calibration_anchors,
    render_calibration,
)


class TestAnchors:
    def test_all_within_paper_bands(self):
        for anchor in calibration_anchors():
            assert anchor.within_band, (
                f"{anchor.name}: model {anchor.model_value} outside "
                f"[{anchor.paper_low}, {anchor.paper_high}]"
            )

    def test_anchor_count_is_small(self):
        """The model's honesty budget: a handful of fitted anchors,
        everything else predicted."""
        assert len(calibration_anchors()) <= 8

    def test_band_logic(self):
        assert Anchor("x", 0.0, 1.0, 0.5).within_band
        assert not Anchor("x", 0.0, 1.0, 1.5).within_band

    def test_render(self):
        text = render_calibration()
        assert "X5650" in text and "K20m" in text
        assert "OUT OF BAND" not in text
