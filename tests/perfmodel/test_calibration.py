"""Tests for the calibration audit."""

from __future__ import annotations

from repro.perfmodel.calibration import (
    Anchor,
    MeasuredAnchor,
    calibration_anchors,
    measured_anchors,
    render_calibration,
    render_measured,
)


class TestAnchors:
    def test_all_within_paper_bands(self):
        for anchor in calibration_anchors():
            assert anchor.within_band, (
                f"{anchor.name}: model {anchor.model_value} outside "
                f"[{anchor.paper_low}, {anchor.paper_high}]"
            )

    def test_anchor_count_is_small(self):
        """The model's honesty budget: a handful of fitted anchors,
        everything else predicted."""
        assert len(calibration_anchors()) <= 8

    def test_band_logic(self):
        assert Anchor("x", 0.0, 1.0, 0.5).within_band
        assert not Anchor("x", 0.0, 1.0, 1.5).within_band

    def test_render(self):
        text = render_calibration()
        assert "X5650" in text and "K20m" in text
        assert "OUT OF BAND" not in text


class TestMeasuredAnchors:
    MEASURED = {"double": 1e-3, "hp-superacc": 0.35, "hallberg": 0.4}

    def test_residual_is_measured_over_model(self):
        a = MeasuredAnchor("x", model_value=2.0, measured_value=3.0)
        assert a.residual == 1.5
        assert MeasuredAnchor("x", 0.0, 1.0).residual == float("inf")

    def test_builds_one_anchor_per_measured_quantity(self):
        anchors = measured_anchors(self.MEASURED, n=1 << 20)
        assert len(anchors) == 3
        names = [a.name for a in anchors]
        assert any("double" in n for n in names)
        assert any("superacc / double" in n for n in names)
        assert any("Hallberg" in n for n in names)

    def test_ratio_anchors_cancel_the_host_clock(self):
        # Same machine measured twice as fast: the absolute anchor's
        # measurement halves, but the ratio anchors must not move.
        fast = {k: v / 2 for k, v in self.MEASURED.items()}
        slow = measured_anchors(self.MEASURED, n=1 << 20)
        quick = measured_anchors(fast, n=1 << 20)
        assert quick[1].measured_value == slow[1].measured_value
        assert quick[2].measured_value == slow[2].measured_value
        assert quick[0].measured_value == slow[0].measured_value / 2

    def test_partial_measurements_build_partial_tables(self):
        anchors = measured_anchors({"double": 1e-3}, n=1 << 20)
        assert len(anchors) == 1
        assert measured_anchors({}, n=1 << 20) == []

    def test_render_measured(self):
        text = render_measured(self.MEASURED, n=1 << 20)
        assert "measured/model" in text
        assert "X5650" in text
        lines = [ln for ln in text.splitlines() if ln.strip()]
        assert len(lines) >= 5  # header + table head + rule + 3 rows
