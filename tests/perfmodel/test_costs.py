"""Unit tests for the Sec. IV.A operation counts."""

from __future__ import annotations

from repro.core.params import HPParams
from repro.hallberg.params import HallbergParams
from repro.perfmodel.costs import (
    double_mem,
    double_ops,
    hallberg_mem,
    hallberg_ops,
    hp_mem,
    hp_ops,
)


class TestOpCounts:
    def test_hp_counts_match_paper(self):
        """Sec. IV.A: N FP mult + N FP add to convert, 3N ALU worst case,
        4(N-1) ALU to add."""
        ops = hp_ops(HPParams(8, 4))
        assert ops.fp_mul == 8
        assert ops.fp_add == 8
        assert ops.alu == 3 * 8 + 4 * 7

    def test_hallberg_counts_match_paper(self):
        """Sec. IV.A (quoting [11]): 2N FP mult + N FP add to convert,
        N integer adds to accumulate."""
        ops = hallberg_ops(HallbergParams(10, 52))
        assert ops.fp_mul == 20
        assert ops.fp_add == 10
        assert ops.alu == 10

    def test_hp_halves_the_multiplications(self):
        """The paper's point: HP factors one multiply out of the loop."""
        hp = hp_ops(HPParams(8, 4))
        hb = hallberg_ops(HallbergParams(8, 52))
        assert hp.fp_mul * 2 == hb.fp_mul

    def test_double_is_one_add(self):
        ops = double_ops()
        assert (ops.fp_mul, ops.fp_add, ops.alu) == (0, 1, 0)

    def test_addition(self):
        total = hp_ops(HPParams(2, 1)) + double_ops()
        assert total.fp_add == 3


class TestMemTraffic:
    def test_paper_quoted_minimums(self):
        """Sec. IV.B: HP(6,3): 7 reads + 6 writes; Hallberg(10,38):
        11 reads + 10 writes; double: 2 reads + 1 write."""
        hp = hp_mem(HPParams(6, 3))
        assert (hp.reads, hp.writes) == (7, 6)
        hb = hallberg_mem(HallbergParams(10, 38))
        assert (hb.reads, hb.writes) == (11, 10)
        d = double_mem()
        assert (d.reads, d.writes) == (2, 1)

    def test_memory_bound_ratio(self):
        """The >= 4.3x prediction: 13 HP ops vs 3 double ops."""
        ratio = hp_mem(HPParams(6, 3)).total / double_mem().total
        assert abs(ratio - 13 / 3) < 1e-12
        assert 4.3 < ratio < 4.4
