"""Tests for the machine descriptions."""

from __future__ import annotations

import dataclasses

import pytest

from repro.perfmodel.machines import (
    Coprocessor,
    GPU,
    Machine,
    TESLA_K20M,
    XEON_PHI_5110P,
    XEON_X5650,
)


class TestMachineDescriptions:
    def test_frozen(self):
        with pytest.raises(dataclasses.FrozenInstanceError):
            XEON_X5650.clock_ghz = 3.0  # type: ignore[misc]

    def test_x5650_shape(self):
        m = XEON_X5650
        assert m.sockets == 2 and m.cores_per_socket == 6  # dual hex-core
        assert m.clock_ghz == 2.67
        assert m.ns_per_cycle == pytest.approx(1 / 2.67)

    def test_k20m_residency(self):
        """The paper: 'the Tesla K20m supports a maximum of 2496
        concurrent threads'."""
        assert TESLA_K20M.max_concurrent_threads == 2496

    def test_phi_shape(self):
        phi = XEON_PHI_5110P
        assert phi.max_threads == 240
        assert phi.machine.clock_ghz == pytest.approx(1.053)
        # The vectorization story: Phi double loop is far cheaper per
        # element than its scalar fixed-point word cost.
        assert phi.machine.hp_word_cycles > phi.machine.double_cycles

    def test_custom_machine(self):
        m = Machine(name="toy", clock_ghz=1.0, double_cycles=1.0,
                    hp_word_cycles=10.0, hb_word_cycles=8.0)
        assert m.ns_per_cycle == 1.0

    def test_gpu_defaults(self):
        g = GPU(name="toy", max_concurrent_threads=128, step_ns=10.0)
        assert g.contention_slope == 0.05
        assert g.kernel_launch_us == 10.0

    def test_coprocessor_composition(self):
        assert isinstance(XEON_PHI_5110P, Coprocessor)
        assert isinstance(XEON_PHI_5110P.machine, Machine)
