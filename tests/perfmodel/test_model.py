"""Unit tests for the eqs. (3)-(6) analytic model."""

from __future__ import annotations

import pytest

from repro.core.params import HPParams
from repro.hallberg.params import HallbergParams
from repro.perfmodel.machines import XEON_X5650
from repro.perfmodel.model import (
    fig4_model_sweep,
    hallberg_blocks,
    hallberg_time,
    hp_blocks,
    hp_time,
    per_summand_seconds,
    speedup_bound_eq5,
    speedup_bound_eq6,
    speedup_eq4,
)


class TestBlockCounts:
    def test_hp_blocks(self):
        """Eq. (3): N_p = ceil((b+1)/64)."""
        assert hp_blocks(511) == 8
        assert hp_blocks(512) == 9  # 513 bits with sign
        assert hp_blocks(64) == 2
        assert hp_blocks(63) == 1

    def test_hallberg_blocks(self):
        """Eq. (3): N_b = ceil(b/M)."""
        assert hallberg_blocks(512, 52) == 10
        assert hallberg_blocks(512, 43) == 12
        assert hallberg_blocks(512, 37) == 14

    def test_input_validation(self):
        with pytest.raises(ValueError):
            hp_blocks(0)
        with pytest.raises(ValueError):
            hallberg_blocks(512, 63)


class TestPerSummand:
    def test_linear_in_words(self):
        m = XEON_X5650
        assert per_summand_seconds("hp", 8, m) == pytest.approx(
            2 * per_summand_seconds("hp", 4, m)
        )

    def test_single_pe_ratio_is_papers(self):
        """The calibration anchor: HP(6,3) ~ 37-38x double on the X5650."""
        m = XEON_X5650
        ratio = per_summand_seconds("hp", 6, m) / per_summand_seconds(
            "double", 1, m
        )
        assert 36.0 < ratio < 39.0

    def test_unknown_method(self):
        with pytest.raises(ValueError):
            per_summand_seconds("quad", 4, XEON_X5650)

    def test_absolute_scale(self):
        """32M doubles in ~47 ms on one core (Fig. 5's anchor point)."""
        t = (1 << 25) * per_summand_seconds("double", 1, XEON_X5650)
        assert 0.04 < t < 0.06


class TestSpeedupEquations:
    def test_eq4_at_table2_points(self):
        """Eq. (4) with the fitted costs: Hallberg ahead at M=52, HP
        ahead at M=37 — the Fig. 4 story."""
        assert speedup_eq4(512, 52) < 1.0
        assert speedup_eq4(512, 37) > 1.0

    def test_eq5_bounds_eq4(self):
        for b in (128, 512, 2048):
            for m in (20, 37, 52):
                assert speedup_eq4(b, m) >= speedup_bound_eq5(b, m) - 1e-12

    def test_eq6_bounds_eq5_for_b_over_64(self):
        for b in (65, 128, 512):
            for m in (20, 37, 52):
                assert speedup_bound_eq5(b, m) >= speedup_bound_eq6(m) - 1e-12

    def test_eq6_scales_inversely_with_m(self):
        assert speedup_bound_eq6(26) == pytest.approx(
            2 * speedup_bound_eq6(52)
        )


class TestFig4Sweep:
    def test_times_scale_linearly_with_n(self):
        p = HPParams(8, 4)
        assert hp_time(2000, p) == pytest.approx(2 * hp_time(1000, p))
        hb = HallbergParams(12, 43)
        assert hallberg_time(3000, hb) == pytest.approx(
            3 * hallberg_time(1000, hb)
        )

    def test_crossover_in_paper_region(self):
        """HP overtakes 'in excess of 1M summands' — the modeled curve
        must cross 1.0 between 64K and 4M."""
        points = fig4_model_sweep([2**i for i in range(7, 25)])
        crossing = min(pt.n for pt in points if pt.speedup >= 1.0)
        assert 2**16 <= crossing <= 2**22

    def test_hallberg_word_count_grows(self):
        points = fig4_model_sweep([1000, 10**6, 10**7])
        ns = [pt.hallberg_params.n for pt in points]
        assert ns[0] < ns[-1]

    def test_speedup_band_matches_paper(self):
        """Right panel of Fig. 4 spans ~0.7-1.3; the model stays in it."""
        points = fig4_model_sweep([2**i for i in range(7, 25)])
        for pt in points:
            assert 0.7 <= pt.speedup <= 1.3
