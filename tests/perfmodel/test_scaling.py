"""Unit tests for the Figs. 5-8 strong-scaling models."""

from __future__ import annotations

import pytest

from repro.core.params import HPParams
from repro.hallberg.params import HallbergParams
from repro.perfmodel.machines import TESLA_K20M, XEON_PHI_5110P
from repro.perfmodel.scaling import (
    MethodSpec,
    cuda_time,
    efficiency,
    mpi_time,
    openmp_time,
    phi_time,
    scaling_series,
    standard_specs,
)

N = 1 << 25
SPECS = {s.name: s for s in standard_specs()}


class TestMethodSpec:
    def test_standard_trio(self):
        assert list(SPECS) == ["double", "hp", "hallberg"]
        assert SPECS["hp"].words == 6
        assert SPECS["hallberg"].words == 10
        assert SPECS["double"].traffic.total == 3


class TestOpenMPModel:
    def test_fixed_point_scales_nearly_perfectly(self):
        times = [openmp_time(N, p, SPECS["hp"]) for p in (1, 2, 4, 8)]
        effs = efficiency(times, [1, 2, 4, 8])
        assert all(e > 0.95 for e in effs)

    def test_double_hits_bandwidth_wall(self):
        times = [openmp_time(N, p, SPECS["double"]) for p in (1, 2, 4, 8)]
        effs = efficiency(times, [1, 2, 4, 8])
        assert effs[-1] < 0.6  # the Fig. 5 collapse

    def test_monotone_in_threads(self):
        for spec in SPECS.values():
            times = [openmp_time(N, p, spec) for p in (1, 2, 4, 8)]
            assert all(b <= a * 1.001 for a, b in zip(times, times[1:]))

    def test_rejects_bad_p(self):
        with pytest.raises(ValueError):
            openmp_time(N, 0, SPECS["hp"])


class TestMPIModel:
    def test_exact_methods_hold_efficiency_at_128(self):
        pes = [1, 2, 4, 8, 16, 32, 64, 128]
        for name in ("hp", "hallberg"):
            times = [mpi_time(N, p, SPECS[name]) for p in pes]
            assert efficiency(times, pes)[-1] > 0.9

    def test_double_efficiency_decays(self):
        pes = [1, 2, 4, 8, 16, 32, 64, 128]
        times = [mpi_time(N, p, SPECS["double"]) for p in pes]
        effs = efficiency(times, pes)
        assert effs[-1] < 0.5

    def test_comm_rounds_cost_log_p(self):
        """Beyond the compute floor, doubling p adds one round's cost."""
        t64 = mpi_time(0, 64, SPECS["double"])   # n=0: pure comm
        t128 = mpi_time(0, 128, SPECS["double"])
        assert t128 > t64


class TestCUDAModel:
    def test_plateau_at_residency_ceiling(self):
        t_cap = cuda_time(N, TESLA_K20M.max_concurrent_threads, SPECS["hp"])
        assert cuda_time(N, 32768, SPECS["hp"]) == pytest.approx(t_cap)

    def test_hp_ratio_in_paper_band(self):
        """At most ~5.6x, never below the 4.0 vicinity of the memory-op
        bound (Sec. IV.B)."""
        for t in (256, 1024, 4096, 32768):
            ratio = cuda_time(N, t, SPECS["hp"]) / cuda_time(
                N, t, SPECS["double"]
            )
            assert 4.0 <= ratio <= 5.6

    def test_hallberg_much_slower_than_hp(self):
        assert cuda_time(N, 2048, SPECS["hallberg"]) > 1.4 * cuda_time(
            N, 2048, SPECS["hp"]
        )

    def test_contention_grows_with_threads_per_cell(self):
        """More resident threads per partial cell => relatively slower."""
        free = cuda_time(N, 256, SPECS["double"], num_partials=4096)
        contended = cuda_time(N, 256, SPECS["double"], num_partials=1)
        assert contended > free


class TestPhiModel:
    def test_transfer_floor_at_high_threads(self):
        floor = (
            XEON_PHI_5110P.offload_latency_ms * 1e-3
            + N * 8 / (XEON_PHI_5110P.transfer_gbps * 1e9)
        )
        for name in ("double", "hp", "hallberg"):
            assert phi_time(N, 240, SPECS[name]) >= floor

    def test_methods_converge_at_high_threads(self):
        times = [phi_time(N, 240, SPECS[n]) for n in SPECS]
        assert max(times) / min(times) < 2.0

    def test_single_thread_gap_exceeds_host(self):
        """Vectorized double makes the 1-thread gap larger than the
        X5650's 37x."""
        gap = phi_time(N, 1, SPECS["hp"]) / phi_time(N, 1, SPECS["double"])
        assert gap > 10.0

    def test_thread_bounds(self):
        with pytest.raises(ValueError):
            phi_time(N, 0, SPECS["hp"])
        with pytest.raises(ValueError):
            phi_time(N, 241, SPECS["hp"])


class TestHelpers:
    def test_efficiency_definition(self):
        assert efficiency([1.0, 0.5], [1, 2]) == [1.0, 1.0]
        assert efficiency([1.0, 1.0], [1, 2]) == [1.0, 0.5]

    def test_efficiency_validation(self):
        with pytest.raises(ValueError):
            efficiency([1.0], [1, 2])
        with pytest.raises(ValueError):
            efficiency([], [])

    def test_scaling_series_shape(self):
        out = scaling_series(openmp_time, N, [1, 2, 4], list(SPECS.values()))
        assert set(out) == {"double", "hp", "hallberg"}
        times, effs = out["hp"]
        assert len(times) == len(effs) == 3
