"""Unit tests for compensated summation baselines."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, strategies as st

from repro.summation.compensated import (
    fast_two_sum,
    kahan_sum,
    klein_sum,
    neumaier_sum,
    two_sum,
)

moderate = st.floats(min_value=-1e15, max_value=1e15,
                     allow_nan=False, allow_infinity=False)


class TestTwoSum:
    @given(moderate, moderate)
    def test_error_free_transformation(self, a, b):
        s, err = two_sum(a, b)
        assert s == a + b
        # The defining identity, checked exactly in rationals.
        from fractions import Fraction

        assert Fraction(a) + Fraction(b) == Fraction(s) + Fraction(err)

    def test_captures_lost_bits(self):
        s, err = two_sum(1e16, 1.0)
        assert s == 1e16 and err == 1.0

    @given(moderate, moderate)
    def test_fast_two_sum_matches_when_ordered(self, a, b):
        if abs(a) < abs(b):
            a, b = b, a
        assert fast_two_sum(a, b) == two_sum(a, b)


class TestKahanFamily:
    def test_kahan_beats_naive(self):
        # 1e16 + many tiny values: naive drops them all, Kahan keeps them.
        values = [1e16] + [0.5] * 1000
        assert kahan_sum(values) == 1e16 + 500.0

    def test_neumaier_survives_kahan_counterexample(self):
        # Classic case where Kahan fails: a huge term arriving late.
        values = [1.0, 1e100, 1.0, -1e100]
        assert kahan_sum(values) != 2.0
        assert neumaier_sum(values) == 2.0
        assert klein_sum(values) == 2.0

    def test_empty(self):
        assert kahan_sum([]) == 0.0
        assert neumaier_sum([]) == 0.0
        assert klein_sum([]) == 0.0

    @pytest.mark.parametrize("summer", [kahan_sum, neumaier_sum, klein_sum])
    def test_close_to_fsum(self, summer, rng):
        values = rng.uniform(-1.0, 1.0, 5000).tolist()
        assert summer(values) == pytest.approx(math.fsum(values), abs=1e-13)

    def test_still_order_sensitive(self, rng):
        """The limitation the paper notes: compensation reduces error but
        does not make the sum order-invariant in general."""
        values = (rng.uniform(0, 1e-3, 512).tolist()
                  + (-rng.uniform(0, 1e-3, 512)).tolist())
        results = set()
        for _ in range(50):
            rng.shuffle(values)
            results.add(kahan_sum(values))
        assert len(results) > 1
