"""Unit/property tests for the double-double (He-Ding) baseline."""

from __future__ import annotations

import math
from fractions import Fraction

import pytest
from hypothesis import given, settings, strategies as st

from repro.summation.doubledouble import (
    DoubleDouble,
    dd_add,
    dd_add_double,
    dd_sum,
)

moderate = st.floats(min_value=-1e12, max_value=1e12, allow_nan=False)


class TestDoubleDouble:
    def test_normalization(self):
        x = DoubleDouble(1.0, 1e20)  # deliberately unnormalized input
        assert x.hi == 1e20  # renormalized: hi carries the magnitude
        assert x.to_fraction() == Fraction(1.0) + Fraction(1e20)

    def test_retains_rounding_error(self):
        x = DoubleDouble.from_double(0.1) + 0.2
        assert x.to_fraction() == Fraction(0.1) + Fraction(0.2)
        assert x.lo != 0.0  # the double add alone would have lost this

    def test_add_sub_roundtrip(self):
        x = DoubleDouble.from_double(1e16) + 3.14159 - 1e16
        assert x.to_double() == 3.14159

    def test_operators(self):
        a = DoubleDouble.from_double(2.0)
        assert (a + 1.0).to_double() == 3.0
        assert (1.0 + a).to_double() == 3.0
        assert (a - 0.5).to_double() == 1.5
        assert (-a).to_double() == -2.0

    @given(moderate, moderate)
    def test_dd_add_double_is_exact_for_two_terms(self, a, b):
        x = dd_add_double(DoubleDouble.from_double(a), b)
        assert x.to_fraction() == Fraction(a) + Fraction(b)

    @given(moderate, moderate, moderate)
    @settings(max_examples=60)
    def test_three_term_error_tiny(self, a, b, c):
        x = dd_add(dd_add_double(DoubleDouble.from_double(a), b),
                   DoubleDouble.from_double(c))
        exact = Fraction(a) + Fraction(b) + Fraction(c)
        if exact == 0:
            assert abs(x.to_fraction()) <= Fraction(2) ** -1000 or (
                x.to_fraction() == 0
            )
        else:
            rel = abs((x.to_fraction() - exact) / exact)
            assert rel < Fraction(2) ** -90


class TestDdSum:
    def test_empty(self):
        assert dd_sum([]) == 0.0

    def test_beats_naive_on_absorption(self):
        values = [1e16] + [1.0] * 1000
        assert dd_sum(values) == 1e16 + 1000.0

    def test_matches_fsum_on_moderate_data(self, rng):
        values = rng.uniform(-1.0, 1.0, 5000)
        assert dd_sum(values) == math.fsum(values)

    def test_order_sensitivity_remains_in_principle(self):
        """The class limitation: pick a stream whose exact sum needs
        >106 bits across the adds; orders then disagree."""
        values = [1.0, 2.0**-110, -1.0, 2.0**-110]
        a = dd_sum(values)
        b = dd_sum(sorted(values))
        exact = float(2 * Fraction(2) ** -110)
        # At least one order misses the exact answer.
        assert a != exact or b != exact or a == b
