"""Unit tests for exact reference summation."""

from __future__ import annotations

import math
from fractions import Fraction

from repro.summation.exact import (
    exact_sum_scaled,
    fraction_sum,
    fsum,
    is_exactly_representable,
)


class TestFractionSum:
    def test_exact_cancellation(self):
        values = [0.1, 0.2, -0.1, -0.2]
        assert fraction_sum(values) == 0

    def test_matches_fsum_rounding(self, rng):
        values = rng.uniform(-1.0, 1.0, 500)
        assert float(fraction_sum(values)) == fsum(values)

    def test_exposes_fp_error(self):
        assert fraction_sum([0.1, 0.2]) != Fraction(3, 10)


class TestExactSumScaled:
    def test_exact_inputs(self):
        # 0.5 and 0.25 in 8 fractional bits: 128 + 64 = 192.
        assert exact_sum_scaled([0.5, 0.25], 8) == 192

    def test_truncation_toward_zero_each_term(self):
        # 0.3 truncates down, -0.3 truncates up: they cancel to 0.
        assert exact_sum_scaled([0.3, -0.3], 4) == 0

    def test_matches_hp_semantics(self, rng):
        from repro.core.params import HPParams
        from repro.core.scalar import from_double, to_int_scaled, add_words

        p = HPParams(3, 2)
        values = rng.uniform(-100.0, 100.0, 100)
        total = (0, 0, 0)
        for x in values:
            total = add_words(total, from_double(float(x), p))
        assert to_int_scaled(total) == exact_sum_scaled(
            values.tolist(), p.frac_bits
        )


class TestIsExactlyRepresentable:
    def test_dyadic_values(self):
        assert is_exactly_representable([0.5, 0.25, 3.0], 2)

    def test_requires_enough_bits(self):
        assert not is_exactly_representable([2.0**-10], 4)
        assert is_exactly_representable([2.0**-10], 10)

    def test_decimal_fractions_need_many_bits(self):
        # 0.1 in binary is infinite; it is exact only once all 52+ of its
        # double-mantissa bits fit.
        assert not is_exactly_representable([0.1], 20)
        assert is_exactly_representable([0.1], 60)
