"""Unit tests for ordered summation baselines."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.summation.naive import naive_sum, pairwise_sum, reverse_sum, sorted_sum


class TestNaiveSum:
    def test_empty(self):
        assert naive_sum([]) == 0.0

    def test_left_to_right_semantics(self):
        # Classic absorption: 1e16 + 1 + ... + 1 loses the ones,
        # whereas summing the ones first keeps them.
        values = [1e16] + [1.0] * 64
        assert naive_sum(values) == 1e16
        assert naive_sum(list(reversed(values))) == 1e16 + 64

    def test_exact_when_no_rounding(self):
        assert naive_sum([0.5, 0.25, 0.125]) == 0.875

    def test_order_sensitivity(self, rng):
        values = rng.uniform(-1.0, 1.0, 2000)
        fwd = naive_sum(values)
        rev = reverse_sum(values)
        # Usually different; never off by more than accumulated epsilon.
        assert abs(fwd - rev) < 1e-10


class TestPairwiseSum:
    def test_empty_and_single(self):
        assert pairwise_sum([]) == 0.0
        assert pairwise_sum([3.5]) == 3.5

    def test_matches_fsum_closely(self, rng):
        values = rng.uniform(-1.0, 1.0, 4097)
        exact = math.fsum(values)
        assert abs(pairwise_sum(values) - exact) <= 1e-13
        # ... and is more accurate than the naive loop on hard inputs.

    def test_block_parameter(self, rng):
        values = rng.uniform(-1.0, 1.0, 1000)
        # Different blocks give (potentially) different roundings but all
        # near the exact value.
        results = {pairwise_sum(values, block=b) for b in (1, 2, 8, 64)}
        for r in results:
            assert r == pytest.approx(math.fsum(values), abs=1e-12)

    def test_rejects_bad_block(self):
        with pytest.raises(ValueError):
            pairwise_sum([1.0], block=0)


class TestSortedSum:
    def test_orders_by_magnitude(self):
        # Summing small-first retains the small terms against a big one.
        values = [1e16] + [1.0] * 64
        assert sorted_sum(values) == 1e16 + 64

    def test_not_exact_in_general(self, rng):
        values = rng.uniform(-1.0, 1.0, 500)
        assert sorted_sum(values) == pytest.approx(math.fsum(values), abs=1e-12)
