"""Unit tests for residual statistics and ulp distance."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.summation.naive import naive_sum
from repro.summation.stats import (
    residual_stats,
    shuffled_trials,
    ulp_distance,
)


class TestResidualStats:
    def test_moments(self):
        stats = residual_stats([1.0, -1.0, 1.0, -1.0])
        assert stats.mean == 0.0
        assert stats.stdev == 1.0
        assert (stats.min, stats.max) == (-1.0, 1.0)

    def test_exact_zero_counting(self):
        stats = residual_stats([0.0, 0.0, 1e-300])
        assert stats.n_exact_zero == 2
        assert not stats.all_exact
        assert residual_stats([0.0, 0.0]).all_exact

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            residual_stats([])


class TestShuffledTrials:
    def test_trial_count(self, rng):
        values = rng.uniform(-1.0, 1.0, 64)
        results = shuffled_trials(values, naive_sum, 17, rng)
        assert len(results) == 17

    def test_deterministic_given_seed(self):
        values = np.arange(32, dtype=np.float64) / 7.0
        a = shuffled_trials(values, naive_sum, 5, np.random.default_rng(3))
        b = shuffled_trials(values, naive_sum, 5, np.random.default_rng(3))
        assert a == b

    def test_input_not_mutated(self, rng):
        values = rng.uniform(-1.0, 1.0, 32)
        copy = values.copy()
        shuffled_trials(values, naive_sum, 3, rng)
        assert np.array_equal(values, copy)

    def test_rejects_bad_trials(self, rng):
        with pytest.raises(ValueError):
            shuffled_trials(np.zeros(4), naive_sum, 0, rng)


class TestUlpDistance:
    def test_zero_for_equal(self):
        assert ulp_distance(1.5, 1.5) == 0

    def test_adjacent_doubles(self):
        assert ulp_distance(1.0, math.nextafter(1.0, 2.0)) == 1
        assert ulp_distance(-1.0, math.nextafter(-1.0, -2.0)) == 1

    def test_across_zero(self):
        tiny = 5e-324
        assert ulp_distance(-tiny, tiny) == 2
        assert ulp_distance(0.0, tiny) == 1

    def test_signed_zeros_coincide(self):
        assert ulp_distance(0.0, -0.0) == 0

    def test_symmetric(self):
        assert ulp_distance(1.0, 2.0) == ulp_distance(2.0, 1.0)

    def test_rejects_nan(self):
        with pytest.raises(ValueError):
            ulp_distance(float("nan"), 1.0)
