"""Tests for the summation error-theory module, validated against the
actual Fig. 1 measurements."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.experiments.datasets import zero_sum_set
from repro.summation.naive import naive_sum, pairwise_sum
from repro.summation.compensated import kahan_sum
from repro.summation.stats import residual_stats, shuffled_trials
from repro.summation.theory import (
    compensated_error_bound,
    condition_number,
    expected_stdev_fixed_sum,
    expected_stdev_random_walk,
    expected_stdev_zero_sum,
    pairwise_error_bound,
    recursive_error_bound,
)
from repro.util.rng import default_rng


class TestExpectedStdev:
    def test_matches_measured_fig1(self):
        """The Brownian-bridge model predicts the measured Fig. 1 sigma
        within a factor of 2 at every set size."""
        rng = default_rng(31)
        for n in (128, 512, 1024):
            values = zero_sum_set(n, rng)
            measured = residual_stats(
                shuffled_trials(values, naive_sum, 400, rng)
            ).stdev
            predicted = expected_stdev_zero_sum(n, 1e-3)
            assert predicted / 2 < measured < predicted * 2, (n, measured,
                                                              predicted)

    def test_linear_growth(self):
        """The model explains the paper's linear (not sqrt) growth."""
        s1 = expected_stdev_zero_sum(256, 1e-3)
        s4 = expected_stdev_zero_sum(1024, 1e-3)
        assert 3.0 < s4 / s1 < 5.0  # ~4x for 4x the summands

    def test_sqrt_model_contrast(self):
        """The fixed-sum (sqrt) model under-predicts the measured growth
        — the paper's point about the pairing bias."""
        f1 = expected_stdev_fixed_sum(256, 1e-3)
        f4 = expected_stdev_fixed_sum(1024, 1e-3)
        assert f4 / f1 == pytest.approx(2.0)

    def test_random_walk_also_linear(self):
        w1 = expected_stdev_random_walk(256, 1e-3)
        w4 = expected_stdev_random_walk(1024, 1e-3)
        assert w4 / w1 > 3.0

    def test_degenerate_sizes(self):
        assert expected_stdev_zero_sum(1, 1.0) == 0.0
        assert expected_stdev_random_walk(0, 1.0) == 0.0


class TestConditionNumber:
    def test_benign_sum(self):
        assert condition_number([1.0, 2.0, 3.0]) == 1.0

    def test_cancellation_raises_condition(self):
        assert condition_number([1.0, -0.999999]) > 1e5

    def test_exact_zero_sum_is_infinite(self):
        assert condition_number([0.5, -0.5]) == math.inf

    def test_all_zero(self):
        assert condition_number([0.0, 0.0]) == 1.0


class TestDeterministicBounds:
    @pytest.fixture
    def values(self, rng):
        return rng.uniform(-1.0, 1.0, 2000).tolist()

    def test_recursive_bound_holds(self, values):
        err = abs(naive_sum(values) - math.fsum(values))
        assert err <= recursive_error_bound(values)

    def test_pairwise_bound_holds_and_is_tighter(self, values):
        err = abs(pairwise_sum(values) - math.fsum(values))
        bound = pairwise_error_bound(values)
        assert err <= bound
        assert bound < recursive_error_bound(values)

    def test_compensated_bound_holds(self, values):
        err = abs(kahan_sum(values) - math.fsum(values))
        bound = compensated_error_bound(values)
        assert err <= bound
        assert bound < pairwise_error_bound(values)

    def test_bounds_zero_for_trivial_inputs(self):
        assert recursive_error_bound([1.0]) == 0.0
        assert pairwise_error_bound([]) == 0.0

    def test_gamma_divergence_guard(self):
        from repro.summation.theory import _gamma

        with pytest.raises(ValueError):
            _gamma(2**53)  # k*u >= 1: the bound is meaningless
