"""Unit tests for 64-bit word helpers."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.util.bits import (
    MASK64,
    join32,
    mask64,
    sign_bit,
    signed_int_to_words,
    split32,
    twos_complement_words,
    unsigned_int_to_words,
    words_to_signed_int,
    words_to_unsigned_int,
)

words_strategy = st.lists(
    st.integers(min_value=0, max_value=MASK64), min_size=1, max_size=8
).map(tuple)


class TestMask64:
    def test_identity_in_range(self):
        assert mask64(42) == 42
        assert mask64(MASK64) == MASK64

    def test_wraps_overflow(self):
        assert mask64(1 << 64) == 0
        assert mask64((1 << 64) + 7) == 7

    def test_wraps_negative_like_c(self):
        assert mask64(-1) == MASK64
        assert mask64(-2) == MASK64 - 1


class TestSignBit:
    def test_clear(self):
        assert sign_bit(0) == 0
        assert sign_bit((1 << 63) - 1) == 0

    def test_set(self):
        assert sign_bit(1 << 63) == 1
        assert sign_bit(MASK64) == 1


class TestTwosComplement:
    def test_zero_is_fixed_point(self):
        assert twos_complement_words((0, 0, 0)) == (0, 0, 0)

    def test_one(self):
        assert twos_complement_words((0, 0, 1)) == (MASK64, MASK64, MASK64)

    def test_carry_ripples_through_words(self):
        # -(0x...0001_00000000...) requires the +1 carry to stop mid-way.
        assert twos_complement_words((0, 1, 0)) == (MASK64, MASK64 - 1 + 1, 0)

    def test_most_negative_maps_to_itself(self):
        most_negative = (1 << 63, 0)
        assert twos_complement_words(most_negative) == most_negative

    @given(words_strategy)
    def test_involution(self, words):
        assert twos_complement_words(twos_complement_words(words)) == words

    @given(words_strategy)
    def test_matches_integer_negation(self, words):
        n = len(words)
        value = words_to_signed_int(words)
        if value == -(1 << (64 * n - 1)):  # most negative: no positive image
            return
        assert words_to_signed_int(twos_complement_words(words)) == -value


class TestIntWordRoundtrip:
    @given(words_strategy)
    def test_unsigned_roundtrip(self, words):
        n = len(words)
        assert unsigned_int_to_words(words_to_unsigned_int(words), n) == words

    @given(words_strategy)
    def test_signed_roundtrip(self, words):
        n = len(words)
        assert signed_int_to_words(words_to_signed_int(words), n) == words

    def test_signed_range_check(self):
        with pytest.raises(ValueError):
            signed_int_to_words(1 << 63, 1)
        assert signed_int_to_words(-(1 << 63), 1) == (1 << 63,)

    def test_unsigned_range_check(self):
        with pytest.raises(ValueError):
            unsigned_int_to_words(-1, 2)
        with pytest.raises(ValueError):
            unsigned_int_to_words(1 << 128, 2)

    def test_word_value_check(self):
        with pytest.raises(ValueError):
            words_to_unsigned_int((MASK64 + 1,))


class TestSplit32:
    def test_split_and_join(self):
        hi, lo = split32(0x0123456789ABCDEF)
        assert hi == 0x01234567 and lo == 0x89ABCDEF
        assert join32(hi, lo) == 0x0123456789ABCDEF

    @given(st.integers(min_value=0, max_value=MASK64))
    def test_roundtrip(self, w):
        assert join32(*split32(w)) == w
