"""Unit tests for seeded RNG helpers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.util.rng import DEFAULT_SEED, default_rng, spawn_rngs


class TestDefaultRng:
    def test_deterministic_default(self):
        a = default_rng().uniform(size=8)
        b = default_rng().uniform(size=8)
        assert np.array_equal(a, b)

    def test_explicit_seed(self):
        a = default_rng(1).uniform(size=8)
        b = default_rng(2).uniform(size=8)
        assert not np.array_equal(a, b)

    def test_default_seed_is_fixed(self):
        assert np.array_equal(
            default_rng().uniform(size=4),
            default_rng(DEFAULT_SEED).uniform(size=4),
        )


class TestSpawnRngs:
    def test_independent_streams(self):
        streams = spawn_rngs(4, seed=9)
        draws = [s.uniform(size=16) for s in streams]
        for i in range(4):
            for j in range(i + 1, 4):
                assert not np.array_equal(draws[i], draws[j])

    def test_reproducible(self):
        a = [s.uniform(size=4) for s in spawn_rngs(3, seed=5)]
        b = [s.uniform(size=4) for s in spawn_rngs(3, seed=5)]
        for x, y in zip(a, b):
            assert np.array_equal(x, y)

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            spawn_rngs(0)
