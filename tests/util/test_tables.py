"""Unit tests for ASCII table rendering."""

from __future__ import annotations

import pytest

from repro.util.tables import format_cell, render_table


class TestFormatCell:
    def test_int_passthrough(self):
        assert format_cell(42) == "42"

    def test_zero_float(self):
        assert format_cell(0.0) == "0"

    def test_moderate_float_positional(self):
        assert "e" not in format_cell(3.125)

    def test_extreme_float_scientific(self):
        assert "e" in format_cell(9.223372e18)
        assert "e" in format_cell(2.9e-39)

    def test_bool_not_treated_as_number(self):
        assert format_cell(True) == "True"

    def test_string_passthrough(self):
        assert format_cell("HP(N=3, k=2)") == "HP(N=3, k=2)"


class TestRenderTable:
    def test_alignment_and_rule(self):
        out = render_table(["a", "bb"], [[1, 2], [333, 4]])
        lines = out.splitlines()
        assert lines[0].split() == ["a", "bb"]
        assert set(lines[1]) <= {"-", " "}
        assert lines[2].startswith("1")
        assert lines[3].startswith("333")

    def test_title(self):
        out = render_table(["x"], [[1]], title="Table 9")
        assert out.splitlines()[0] == "Table 9"

    def test_column_count_mismatch(self):
        with pytest.raises(ValueError):
            render_table(["a", "b"], [[1]])

    def test_wide_cells_stretch_columns(self):
        out = render_table(["h"], [["wide-content"]])
        header = out.splitlines()[0]
        assert len(header) >= len("wide-content") or "wide" in out
