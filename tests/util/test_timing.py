"""Unit tests for the timing helpers."""

from __future__ import annotations

import pytest

from repro.util.timing import Timer, repeat_timeit


class TestTimer:
    def test_measures_nonnegative(self):
        with Timer() as t:
            sum(range(100))
        assert t.elapsed >= 0.0

    def test_reusable(self):
        t = Timer()
        with t:
            pass
        first = t.elapsed
        with t:
            sum(range(10000))
        assert t.elapsed >= 0.0 and t.elapsed is not first


class TestRepeatTimeit:
    def test_counts_trials(self):
        result = repeat_timeit(lambda: None, trials=5, warmup=0)
        assert len(result.times) == 5

    def test_statistics(self):
        result = repeat_timeit(lambda: sum(range(500)), trials=4)
        assert result.best <= result.mean
        assert result.stdev >= 0.0

    def test_single_trial_stdev(self):
        result = repeat_timeit(lambda: None, trials=1, warmup=0)
        assert result.stdev == 0.0

    def test_warmup_excluded(self):
        calls = []
        repeat_timeit(lambda: calls.append(1), trials=2, warmup=3)
        assert len(calls) == 5  # warmup runs happen but are not timed

    def test_default_warmup_is_one_discarded_iteration(self):
        # Pin the default: one warmup call runs before the timed trials
        # so first-call costs (allocator, caches, imports) never skew
        # the samples.  trials=2 + the discarded warmup = 3 calls.
        calls = []
        repeat_timeit(lambda: calls.append(1), trials=2)
        assert len(calls) == 3

    def test_default_warmup_absorbs_cold_first_call(self):
        import time

        state = {"first": True}

        def fn():
            if state["first"]:
                state["first"] = False
                time.sleep(0.05)  # one-time setup cost

        result = repeat_timeit(fn, trials=3)
        # The cold call landed in the warmup, not the samples.
        assert max(result.times) < 0.05

    def test_rejects_bad_trials(self):
        with pytest.raises(ValueError):
            repeat_timeit(lambda: None, trials=0)
